"""Terminal view of a run in flight: ``repro watch RUN_DIR``.

A journaled run leaves everything a monitor needs inside its run
directory -- ``meta.json`` (command line, target, start time), the
write-ahead ``journal.jsonl`` (engine progress: BMC depths, Houdini
rounds, UPDR frames, discharged obligations), and, since the live-
monitoring work, a ``trace.jsonl`` tee (query verdicts, cache/ledger
hits, dispatch faults).  :class:`WatchView` tails both files
**incrementally** -- it remembers its byte offsets between refreshes and
only parses what was appended -- so watching a long run costs O(new
events) per tick, and a torn final line (the run is writing while we
read) is simply left for the next tick.

The watcher is read-only and crash-agnostic: it never locks the journal,
works on a run directory whose process already died, and renders from
whatever prefix of the files exists.  ``repro watch`` polls at
``--interval`` seconds (clearing the screen between refreshes when
stdout is a terminal) or renders one snapshot with ``--once``.
"""

from __future__ import annotations

import json
import os
import time

#: journal kinds that mark engine progress, in display order
_PROGRESS_KINDS = (
    "bmc.depth", "bmc.probe", "houdini.init", "houdini.round",
    "updr.frames", "updr.clause", "obligation",
)


class _Tail:
    """Incremental reader of a JSONL file that may still be growing."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.offset = 0

    def lines(self) -> list[dict]:
        """Complete records appended since the last call."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return []
        if size <= self.offset:
            return []
        with open(self.path, "rb") as handle:
            handle.seek(self.offset)
            blob = handle.read()
        # Only consume whole lines; a torn tail stays for the next tick.
        cut = blob.rfind(b"\n")
        if cut < 0:
            return []
        self.offset += cut + 1
        records: list[dict] = []
        for line in blob[: cut + 1].splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # a corrupt line is the writer's problem, not ours
            if isinstance(record, dict):
                records.append(record)
        return records


class WatchView:
    """Aggregated live state of one run directory."""

    def __init__(self, run_dir: str) -> None:
        self.run_dir = run_dir
        self.meta: dict = {}
        self._journal = _Tail(os.path.join(run_dir, "journal.jsonl"))
        self._trace = _Tail(os.path.join(run_dir, "trace.jsonl"))
        # journal-derived
        self.journal_kinds: dict[str, int] = {}
        self.bmc_depth: int | None = None
        self.houdini_round: int | None = None
        self.updr_frames: int | None = None
        self.obligations = 0
        # trace-derived
        self.run_id: str | None = None
        self.engines: set[str] = set()
        self.queries = 0
        self.cached = 0
        self.verdicts: dict[str, int] = {}
        self.ledger_hits = 0
        self.ledger_misses = 0
        self.faults: dict[str, int] = {}
        self.last_ts = 0.0
        self._load_meta()

    def _load_meta(self) -> None:
        try:
            with open(os.path.join(self.run_dir, "meta.json")) as handle:
                document = json.load(handle)
            self.meta = dict(document.get("meta", {}))
        except (OSError, json.JSONDecodeError, AttributeError):
            self.meta = {}

    # ------------------------------------------------------------ refresh

    def refresh(self) -> None:
        """Fold newly appended journal/trace records into the view."""
        if not self.meta:
            self._load_meta()
        for record in self._journal.lines():
            kind = record.get("kind")
            if not isinstance(kind, str) or kind == "header":
                continue
            self.journal_kinds[kind] = self.journal_kinds.get(kind, 0) + 1
            data = record.get("data") or {}
            if kind == "bmc.depth":
                # Depths are journaled in order, one record each.
                self.bmc_depth = self.journal_kinds[kind] - 1
            elif kind == "houdini.round":
                self.houdini_round = self.journal_kinds[kind]
            elif kind == "updr.frames":
                frames = data.get("frames")
                if isinstance(frames, (list, tuple)):
                    self.updr_frames = len(frames)
            elif kind == "obligation":
                self.obligations += 1
        for event in self._trace.lines():
            e = event.get("e")
            ts = event.get("ts")
            if isinstance(ts, (int, float)):
                self.last_ts = max(self.last_ts, ts)
            if e == "run":
                self.run_id = event.get("run")
            elif e == "start":
                if event.get("name") in (
                    "bmc", "houdini", "updr", "induction", "analysis",
                ):
                    self.engines.add(event["name"])
            elif e == "end":
                attrs = event.get("attrs") or {}
                if "verdict" in attrs:
                    self.queries += 1
                    verdict = str(attrs["verdict"])
                    self.verdicts[verdict] = self.verdicts.get(verdict, 0) + 1
                    if attrs.get("cached"):
                        self.cached += 1
            elif e == "point":
                name = event.get("name", "")
                attrs = event.get("attrs") or {}
                if name == "ledger.split":
                    self.ledger_hits += int(attrs.get("hits", 0) or 0)
                    self.ledger_misses += int(attrs.get("misses", 0) or 0)
                elif name.startswith("dispatch.") and name != "dispatch.batch":
                    self.faults[name] = self.faults.get(name, 0) + 1

    # ------------------------------------------------------------- render

    def _elapsed(self) -> float | None:
        if self.last_ts:
            return self.last_ts
        created = self.meta.get("created_unix")
        if isinstance(created, (int, float)):
            return max(0.0, time.time() - created)
        return None

    def _eta(self) -> str | None:
        """Crude ETA for BMC-shaped runs: depths done vs the -k bound."""
        if self.bmc_depth is None:
            return None
        bound = None
        argv = self.meta.get("argv") or []
        for index, arg in enumerate(argv):
            if arg in ("-k", "--bound") and index + 1 < len(argv):
                try:
                    bound = int(argv[index + 1])
                except ValueError:
                    pass
            elif arg.startswith("--bound="):
                try:
                    bound = int(arg.split("=", 1)[1])
                except ValueError:
                    pass
        elapsed = self._elapsed()
        done = self.bmc_depth + 1
        if bound is None or elapsed is None or done <= 0:
            return None
        if done >= bound + 1:
            return "depths complete"
        # Depth cost grows; linear extrapolation is a *floor*, say so.
        remaining = elapsed / done * (bound + 1 - done)
        return f">= {remaining:.0f}s to depth {bound}"

    def render(self) -> str:
        lines: list[str] = []
        command = self.meta.get("command", "?")
        target = self.meta.get("target", "?")
        header = f"watching {self.run_dir}  [{command} {target}]"
        if self.run_id:
            header += f"  run {self.run_id}"
        lines.append(header)
        elapsed = self._elapsed()
        if elapsed is not None:
            lines.append(f"  elapsed: {elapsed:.1f}s")
        progress = [
            f"{kind} x{self.journal_kinds[kind]}"
            for kind in _PROGRESS_KINDS
            if kind in self.journal_kinds
        ]
        if progress:
            lines.append("  journal: " + "  ".join(progress))
        state = []
        if self.bmc_depth is not None:
            state.append(f"bmc depth {self.bmc_depth}")
        if self.houdini_round is not None:
            state.append(f"houdini round {self.houdini_round}")
        if self.updr_frames is not None:
            state.append(f"updr frames {self.updr_frames}")
        if self.obligations:
            state.append(f"{self.obligations} obligation(s) journaled")
        if state:
            lines.append("  engines: " + ", ".join(state))
        elif self.engines:
            lines.append("  engines: " + ", ".join(sorted(self.engines)))
        if self.queries:
            verdicts = " ".join(
                f"{name}={count}" for name, count in sorted(self.verdicts.items())
            )
            rate = self.cached / self.queries
            lines.append(
                f"  queries: {self.queries} ({verdicts})  "
                f"cache hit rate {rate:.1%}"
            )
        ledger_total = self.ledger_hits + self.ledger_misses
        if ledger_total:
            lines.append(
                f"  ledger: {self.ledger_hits}/{ledger_total} obligations "
                f"answered from the proven-lemma ledger "
                f"({self.ledger_hits / ledger_total:.1%})"
            )
        if self.faults:
            fault_text = "  ".join(
                f"{name.split('.', 1)[1]} x{count}"
                for name, count in sorted(self.faults.items())
            )
            lines.append(f"  dispatch: {fault_text}")
        eta = self._eta()
        if eta is not None:
            lines.append(f"  eta: {eta}")
        if len(lines) == 1:
            lines.append("  (no journal or trace data yet)")
        return "\n".join(lines)


def watch(run_dir: str, interval: float = 2.0, once: bool = False) -> int:
    """The ``repro watch`` loop; returns a process exit code."""
    import sys

    if not os.path.isdir(run_dir):
        print(f"{run_dir}: not a directory", file=sys.stderr)
        return 1
    view = WatchView(run_dir)
    is_tty = sys.stdout.isatty()
    try:
        while True:
            view.refresh()
            if is_tty and not once:
                print("\x1b[2J\x1b[H", end="")
            print(view.render(), flush=True)
            if once:
                return 0
            time.sleep(max(0.1, interval))
    except KeyboardInterrupt:
        return 0
