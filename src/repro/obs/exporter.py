"""Live metrics endpoint: Prometheus text exposition over HTTP.

``repro verify --metrics-port 9095`` (or ``REPRO_METRICS_PORT``) starts a
:class:`MetricsServer` -- a daemon-threaded :class:`ThreadingHTTPServer`
that renders the installed :class:`~repro.obs.metrics.MetricsRegistry` on
demand:

* ``GET /metrics``       -- Prometheus text exposition (version 0.0.4);
* ``GET /metrics.json``  -- the registry's ``to_dict()`` snapshot;
* ``GET /healthz``       -- ``ok``, for liveness probes.

Rendering happens per-request from the live registry, so a scrape during
a run sees up-to-the-moment totals -- including pool-worker work, which
dispatch merges into the parent registry as each result arrives.  Port 0
asks the OS for a free port; :meth:`MetricsServer.start` returns the one
actually bound.  The server binds loopback by default: this is a local
run monitor, not a service.

The exposition maps the registry's types directly: counters and gauges
emit a single sample; histograms emit Prometheus's *cumulative*
``_bucket{le="..."}`` series plus ``_sum`` and ``_count``.  Registry keys
(``name{k=v,...}``) are parsed back into labels and re-quoted, since
Prometheus label values require double quotes.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .metrics import MetricsRegistry, parse_key

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _fmt(value: float) -> str:
    """A sample value: integers bare, floats as repr (Prometheus-legal)."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _series(name: str, labels: dict[str, str], value: float) -> str:
    if labels:
        inner = ",".join(
            f'{k}="{v}"' for k, v in sorted(labels.items())
        )
        return f"{name}{{{inner}}} {_fmt(value)}"
    return f"{name} {_fmt(value)}"


def render_exposition(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition format 0.0.4."""
    snapshot = registry.to_dict()
    lines: list[str] = []
    typed: set[str] = set()

    def declare(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key, value in snapshot["counters"].items():
        name, labels = parse_key(key)
        declare(name, "counter")
        lines.append(_series(name, labels, value))
    for key, value in snapshot["gauges"].items():
        name, labels = parse_key(key)
        declare(name, "gauge")
        lines.append(_series(name, labels, value))
    for key, snap in snapshot["histograms"].items():
        name, labels = parse_key(key)
        declare(name, "histogram")
        cumulative = 0
        for bound, count in snap["buckets"]:
            cumulative += count
            le = "+Inf" if bound == "inf" else _fmt(bound)
            lines.append(
                _series(f"{name}_bucket", {**labels, "le": le}, cumulative)
            )
        if not snap["buckets"] or snap["buckets"][-1][0] != "inf":
            # The snapshot elides empty buckets; Prometheus requires the
            # +Inf bucket (== count) to always be present.
            lines.append(
                _series(
                    f"{name}_bucket", {**labels, "le": "+Inf"}, snap["count"]
                )
            )
        lines.append(_series(f"{name}_sum", labels, snap["sum"]))
        lines.append(_series(f"{name}_count", labels, snap["count"]))
    for key, value in snapshot["derived"].items():
        name, labels = parse_key(key)
        declare(f"repro_derived_{name}", "gauge")
        lines.append(_series(f"repro_derived_{name}", labels, value))
    return "\n".join(lines) + "\n"


class MetricsServer:
    """Serves the registry over HTTP from a daemon thread.

    The handler closes over the *server* (not a registry snapshot), so a
    long-lived endpoint follows ``install_metrics`` swaps transparently
    via the callable passed in.
    """

    def __init__(
        self,
        registry_of=None,
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        from . import metrics as current_registry  # the accessor function

        #: zero-arg callable returning the live registry (or None)
        self.registry_of = registry_of or current_registry
        self.host = host
        self.port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> int:
        """Bind and begin serving; returns the bound port."""
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                registry = server.registry_of()
                if self.path.rstrip("/") in ("", "/healthz".rstrip("/")):
                    body, ctype = b"ok\n", "text/plain"
                elif registry is None:
                    self.send_error(503, "no metrics registry installed")
                    return
                elif self.path.startswith("/metrics.json"):
                    import json

                    body = json.dumps(registry.to_dict(), indent=2).encode()
                    ctype = "application/json"
                elif self.path.startswith("/metrics"):
                    body = render_exposition(registry).encode()
                    ctype = CONTENT_TYPE
                else:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:
                pass  # scrapes are not run output

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
