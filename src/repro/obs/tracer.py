"""Span-based tracing: JSONL events with nested span IDs.

Zero-dependency, contextvars-backed.  A :class:`Tracer` writes one JSON
object per line to its sink; spans carry monotonic timestamps relative to
the tracer's clock origin, a parent span ID (so the file re-parents into a
single tree regardless of write order), and a run-level correlation ID
emitted once in a ``run`` header event.

Tracing is **off by default** and guarded on the hot path: with no tracer
installed, :func:`span` returns a shared null object and :func:`point` is
a single global read -- engines and the solver can instrument
unconditionally without perturbing untraced runs.

Event schema (``v`` = schema version, in the header only)::

    {"e": "run",   "ts": 0.0, "run": "<id>", "v": 1, "pid": ..., "argv": [...]}
    {"e": "start", "ts": t, "id": "7", "parent": "3" | null,
     "name": "epr.solve", "attrs": {...}?}
    {"e": "end",   "ts": t, "id": "7", "dur": seconds, "attrs": {...}?,
     "error": "ExcName"?}
    {"e": "point", "ts": t, "id": "9", "parent": "3" | null,
     "name": "dispatch.retry", "attrs": {...}?}

``start`` and ``end`` attrs are disjoint: attributes known up front ride
the start event, attributes computed during the span (verdicts, counters)
are attached with :meth:`Span.set` and ride the end event.  Consumers
(:mod:`repro.obs.report`) merge both.

Worker processes forked by :mod:`repro.solver.dispatch` must not write to
the parent's file descriptor (interleaved writes tear JSON lines).
Instead, :func:`enter_worker` -- called right after the fork -- swaps the
inherited tracer for one buffering into a list with process-unique span
IDs (``w<pid>.<n>``) and a cleared current-span context; the worker ships
the buffer back over its result pipe and the dispatch parent re-parents
the buffer's root events onto the per-attempt dispatch span with
:func:`forward_events`.  Timestamps stay comparable because workers keep
the parent's monotonic clock origin (``CLOCK_MONOTONIC`` is system-wide
on the platforms where fork is available).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
import uuid
from contextvars import ContextVar
from dataclasses import dataclass

SCHEMA_VERSION = 1

#: maximum span depth echoed to stderr by ``--progress``
_PROGRESS_DEPTH = 3

_current: ContextVar[str | None] = ContextVar("repro_obs_span", default=None)

#: the installed tracer; ``None`` (the default) disables tracing entirely.
_tracer: "Tracer | None" = None


class Tracer:
    """Emits trace events to a sink (file-like object or list).

    ``sink=None`` with ``progress=True`` gives progress echo without a
    trace file.  ``clock_origin`` lets forked workers share the parent's
    timebase; ``id_prefix`` keeps their span IDs globally unique.
    """

    def __init__(
        self,
        sink=None,
        progress: bool = False,
        run_id: str | None = None,
        id_prefix: str = "",
        clock_origin: float | None = None,
    ) -> None:
        self.run_id = run_id or uuid.uuid4().hex[:12]
        self.sink = sink
        self.progress = progress
        self.origin = time.monotonic() if clock_origin is None else clock_origin
        self.id_prefix = id_prefix
        self.events = 0
        self._next = 0
        self._depth: dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------- plumbing

    def now(self) -> float:
        return time.monotonic() - self.origin

    def new_id(self) -> str:
        with self._lock:
            self._next += 1
            return f"{self.id_prefix}{self._next}"

    def emit(self, event: dict) -> None:
        with self._lock:
            self.events += 1
            if isinstance(self.sink, list):
                self.sink.append(event)
            elif self.sink is not None:
                self.sink.write(json.dumps(event, separators=(",", ":")) + "\n")
        if self.progress:
            self._echo(event)

    def emit_header(self, argv: list[str] | None = None) -> None:
        header = {
            "e": "run",
            "ts": 0.0,
            "run": self.run_id,
            "v": SCHEMA_VERSION,
            "pid": os.getpid(),
        }
        if argv:
            header["argv"] = list(argv)
        self.emit(header)

    def flush(self) -> None:
        if self.sink is not None and hasattr(self.sink, "flush"):
            self.sink.flush()

    # ------------------------------------------------------------- progress

    def _echo(self, event: dict) -> None:
        kind = event.get("e")
        if kind == "start":
            parent = event.get("parent")
            depth = self._depth.get(parent, 0) + 1 if parent else 1
            self._depth[event["id"]] = depth
            if depth > _PROGRESS_DEPTH:
                return
            attrs = event.get("attrs") or {}
            detail = " ".join(f"{k}={v}" for k, v in attrs.items())
            indent = "  " * (depth - 1)
            print(
                f"[{event['ts']:8.2f}s] {indent}> {event['name']}"
                + (f" {detail}" if detail else ""),
                file=sys.stderr,
            )
        elif kind == "end":
            depth = self._depth.pop(event["id"], 1)
            if depth > _PROGRESS_DEPTH:
                return
            attrs = event.get("attrs") or {}
            detail = " ".join(f"{k}={v}" for k, v in attrs.items())
            indent = "  " * (depth - 1)
            print(
                f"[{event['ts']:8.2f}s] {indent}< done in {event['dur']:.3f}s"
                + (f" ({detail})" if detail else ""),
                file=sys.stderr,
            )


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()
    id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Span:
    """A context-managed span: start/end events plus end-time attributes."""

    __slots__ = ("_tracer", "name", "id", "_start", "_token", "_attrs", "_end_attrs")

    def __init__(self, tracer: Tracer, name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self._attrs = attrs
        self._end_attrs: dict | None = None
        self.id = ""

    def set(self, **attrs) -> None:
        """Attach attributes computed during the span (ride the end event)."""
        if self._end_attrs is None:
            self._end_attrs = attrs
        else:
            self._end_attrs.update(attrs)

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.id = tracer.new_id()
        parent = _current.get()
        self._token = _current.set(self.id)
        self._start = tracer.now()
        event = {
            "e": "start",
            "ts": round(self._start, 6),
            "id": self.id,
            "parent": parent,
            "name": self.name,
        }
        if self._attrs:
            event["attrs"] = self._attrs
        tracer.emit(event)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        _current.reset(self._token)
        end = self._tracer.now()
        event = {
            "e": "end",
            "ts": round(end, 6),
            "id": self.id,
            "dur": round(end - self._start, 6),
        }
        if self._end_attrs:
            event["attrs"] = self._end_attrs
        if exc_type is not None:
            event["error"] = exc_type.__name__
        self._tracer.emit(event)
        return False


@dataclass(frozen=True)
class SpanRef:
    """Handle for a manually managed span (see :func:`begin_span`)."""

    id: str
    start: float


# ----------------------------------------------------------------- module API


def install_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install (or with ``None`` remove) the process-global tracer."""
    global _tracer
    old = _tracer
    _tracer = tracer
    return old


def active_tracer() -> Tracer | None:
    return _tracer


def enabled() -> bool:
    """Fast hot-path check: is tracing on?"""
    return _tracer is not None


def span(name: str, /, **attrs):
    """A context-managed span, or the shared null object when tracing is off."""
    tracer = _tracer
    if tracer is None:
        return _NULL_SPAN
    return Span(tracer, name, attrs)


def point(name: str, /, **attrs) -> None:
    """A point event under the current span; no-op when tracing is off."""
    tracer = _tracer
    if tracer is None:
        return
    event = {
        "e": "point",
        "ts": round(tracer.now(), 6),
        "id": tracer.new_id(),
        "parent": _current.get(),
        "name": name,
    }
    if attrs:
        event["attrs"] = attrs
    tracer.emit(event)


def current_span_id() -> str | None:
    """The enclosing span's ID, or None (also None when tracing is off)."""
    if _tracer is None:
        return None
    return _current.get()


def begin_span(name: str, /, **attrs) -> SpanRef | None:
    """Start a span *without* touching the current-span context.

    For spans whose lifetime does not nest lexically -- the dispatch
    parent opens one per worker attempt inside its event loop and closes
    it whenever the result (or corpse) comes back.  The span's parent is
    whatever span is current at begin time.  Returns None when tracing is
    off; :func:`finish_span` accepts that None.
    """
    tracer = _tracer
    if tracer is None:
        return None
    ref = SpanRef(tracer.new_id(), tracer.now())
    event = {
        "e": "start",
        "ts": round(ref.start, 6),
        "id": ref.id,
        "parent": _current.get(),
        "name": name,
    }
    if attrs:
        event["attrs"] = attrs
    tracer.emit(event)
    return ref


def finish_span(ref: SpanRef | None, **attrs) -> None:
    """End a span started with :func:`begin_span` (no-op on ``ref=None``)."""
    tracer = _tracer
    if tracer is None or ref is None:
        return
    end = tracer.now()
    event = {
        "e": "end",
        "ts": round(end, 6),
        "id": ref.id,
        "dur": round(end - ref.start, 6),
    }
    if attrs:
        event["attrs"] = attrs
    tracer.emit(event)


# ------------------------------------------------------- worker forwarding


def enter_worker(
    run_id: str | None = None, clock_origin: float | None = None
) -> None:
    """Swap the (fork-inherited) tracer for a buffering one.

    Called in a dispatch worker before any solver work.  Span IDs get a
    ``w<pid>.`` prefix so they stay unique when merged into the parent
    trace; the current-span context is cleared so worker spans root at
    ``parent: null`` -- :func:`forward_events` re-parents exactly those
    roots onto the dispatch attempt span.

    With no arguments (fork-per-query workers, tests) the run ID and
    clock origin are taken from the fork-inherited tracer; a no-op when
    tracing is off.  Long-lived pool workers instead receive
    ``(run_id, clock_origin)`` with each task -- the parent may have
    installed its tracer *after* the worker forked -- and re-entering for
    a run the worker is already buffering keeps the existing buffer (and
    its monotonically increasing span IDs).
    """
    global _tracer
    parent = _tracer
    if run_id is None:
        if parent is None:
            return
        run_id, clock_origin = parent.run_id, parent.origin
    elif (
        parent is not None
        and isinstance(parent.sink, list)
        and parent.run_id == run_id
    ):
        return  # already buffering for this run
    _tracer = Tracer(
        sink=[],
        progress=False,
        run_id=run_id,
        id_prefix=f"w{os.getpid()}.",
        clock_origin=clock_origin,
    )
    _current.set(None)


def exit_worker() -> None:
    """Disable tracing in a pool worker whose parent run is untraced.

    The complement of :func:`enter_worker` for long-lived workers: a
    worker may outlive the parent's tracer (installed per CLI run or per
    test), so each task ships whether tracing is on and the worker
    toggles accordingly.  Dropping the tracer also drops any buffered
    events from a run nobody will collect.
    """
    global _tracer
    _tracer = None
    _current.set(None)


def drain_worker() -> list[dict] | None:
    """The worker's buffered events (picklable dicts), or None."""
    tracer = _tracer
    if tracer is None or not isinstance(tracer.sink, list):
        return None
    events, tracer.sink = tracer.sink, []
    return events


def forward_events(events: list[dict] | None, parent_id: str | None) -> None:
    """Merge a worker's buffered events into the parent trace.

    Root events (``parent: null`` -- possible only for spans/points opened
    at the worker's top level, thanks to :func:`enter_worker` clearing the
    context) are re-parented onto ``parent_id``; nested events keep their
    worker-local parents, whose IDs are already globally unique.
    """
    tracer = _tracer
    if tracer is None or not events:
        return
    for event in events:
        if event.get("e") in ("start", "point") and event.get("parent") is None:
            event = dict(event, parent=parent_id)
        tracer.emit(event)
