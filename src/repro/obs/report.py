"""Render a per-phase / per-query breakdown from a JSONL trace.

``repro report TRACE`` loads the events written by
:mod:`repro.obs.tracer`, re-parents them into a single tree, and prints
the evaluation-table shape of the paper's Figure 14: one row per
(protocol, engine) with query counts, verdicts, cache hits, and wall
time, followed by a per-span-name phase breakdown, the slowest
individual queries, and the dispatch fault summary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: span names that count as engine layers in the breakdown table
ENGINE_SPANS = ("analysis", "bmc", "houdini", "updr", "induction")

#: the span name every EPR query solve emits (:mod:`repro.solver.epr`)
QUERY_SPAN = "epr.solve"


@dataclass
class SpanNode:
    """One reconstructed span (or point event) of the trace tree."""

    id: str
    name: str
    parent: "SpanNode | None" = None
    start: float = 0.0
    dur: float | None = None
    attrs: dict = field(default_factory=dict)
    children: list = field(default_factory=list)
    kind: str = "span"  # "span" or "point"
    error: str | None = None

    @property
    def depth(self) -> int:
        node, depth = self, 0
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    def ancestors(self):
        node = self.parent
        while node is not None:
            yield node
            node = node.parent


class TraceParseError(ValueError):
    """The trace file contains a line that is not a valid event."""


def load_trace(path: str) -> list[dict]:
    """Parse a JSONL trace file into a list of event dicts."""
    events: list[dict] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceParseError(f"{path}:{lineno}: {error}") from error
            if not isinstance(event, dict) or "e" not in event:
                raise TraceParseError(f"{path}:{lineno}: not a trace event")
            events.append(event)
    return events


def build_tree(events: list[dict]) -> tuple[list[SpanNode], dict[str, SpanNode], dict]:
    """Reconstruct the span forest: (roots, nodes-by-id, run header).

    Spans whose parent never appears (a worker killed before its parent
    span closed, a truncated file) are adopted as roots rather than
    dropped, so the report always covers every event.
    """
    header: dict = {}
    nodes: dict[str, SpanNode] = {}
    parent_of: dict[str, str | None] = {}
    for event in events:
        kind = event.get("e")
        if kind == "run":
            header = event
        elif kind in ("start", "point"):
            node = SpanNode(
                id=event["id"],
                name=event.get("name", "?"),
                start=event.get("ts", 0.0),
                attrs=dict(event.get("attrs") or {}),
                kind="span" if kind == "start" else "point",
            )
            if kind == "point":
                node.dur = 0.0
            nodes[node.id] = node
            parent_of[node.id] = event.get("parent")
        elif kind == "end":
            node = nodes.get(event["id"])
            if node is None:  # end without start: synthesize
                node = SpanNode(id=event["id"], name="?")
                nodes[node.id] = node
                parent_of[node.id] = None
            node.dur = event.get("dur")
            node.attrs.update(event.get("attrs") or {})
            node.error = event.get("error")
    roots: list[SpanNode] = []
    for span_id, parent_id in parent_of.items():
        node = nodes[span_id]
        parent = nodes.get(parent_id) if parent_id is not None else None
        if parent is None:
            roots.append(node)
        else:
            node.parent = parent
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: child.start)
    roots.sort(key=lambda node: node.start)
    return roots, nodes, header


def tree_depth(roots: list[SpanNode]) -> int:
    """Maximum node count on any root-to-leaf path."""

    def walk(node: SpanNode) -> int:
        if not node.children:
            return 1
        return 1 + max(walk(child) for child in node.children)

    return max((walk(root) for root in roots), default=0)


def _enclosing(node: SpanNode, names: tuple[str, ...]) -> str | None:
    for ancestor in node.ancestors():
        if ancestor.name in names:
            return ancestor.name
    return None


def _protocol_of(node: SpanNode) -> str:
    for candidate in (node, *node.ancestors()):
        protocol = candidate.attrs.get("protocol") or candidate.attrs.get("file")
        if protocol:
            return str(protocol)
    return "-"


def _fmt_seconds(value: float | None) -> str:
    return f"{value:.3f}s" if value is not None else "-"


def _quantiles(values: list[float]) -> tuple[float, float, float]:
    """Exact (p50, p95, p99) by nearest-rank over the sorted values."""
    ordered = sorted(values)
    last = len(ordered) - 1

    def pick(q: float) -> float:
        return ordered[min(last, int(round(q * last)))]

    return pick(0.50), pick(0.95), pick(0.99)


def render_report(events: list[dict]) -> str:
    """The full human-readable breakdown for ``repro report``."""
    roots, nodes, header = build_tree(events)
    spans = [node for node in nodes.values() if node.kind == "span"]
    points = [node for node in nodes.values() if node.kind == "point"]
    total = max((node.start + (node.dur or 0.0) for node in spans), default=0.0)
    lines = []
    run = header.get("run", "?")
    lines.append(
        f"trace report: run {run}  ({len(events)} events, {len(spans)} spans, "
        f"{_fmt_seconds(total)} wall, tree depth {tree_depth(roots)})"
    )

    # ------------------------------------------------ protocol x engine table
    queries = [node for node in spans if node.name == QUERY_SPAN]
    rows: dict[tuple[str, str], dict] = {}
    for query in queries:
        engine = _enclosing(query, ENGINE_SPANS) or "-"
        protocol = _protocol_of(query)
        row = rows.setdefault(
            (protocol, engine),
            {"queries": 0, "sat": 0, "unsat": 0, "unknown": 0, "cached": 0,
             "time": 0.0},
        )
        row["queries"] += 1
        verdict = query.attrs.get("verdict")
        if verdict in ("sat", "unsat", "unknown"):
            row[verdict] += 1
        if query.attrs.get("cached"):
            row["cached"] += 1
        row["time"] += query.dur or 0.0
    lines.append("")
    lines.append("per-protocol query breakdown (the Fig. 14 shape):")
    lines.append(
        f"  {'protocol':22s} {'engine':10s} {'queries':>7s} {'sat':>5s} "
        f"{'unsat':>5s} {'unk':>4s} {'cached':>6s} {'time':>9s}"
    )
    if not rows:
        lines.append("  (no query spans in this trace)")
    for (protocol, engine), row in sorted(rows.items()):
        lines.append(
            f"  {protocol:22s} {engine:10s} {row['queries']:7d} {row['sat']:5d} "
            f"{row['unsat']:5d} {row['unknown']:4d} {row['cached']:6d} "
            f"{row['time']:8.3f}s"
        )

    # --------------------------------------------- latency / unknown rates
    solved_ms = [
        q.dur * 1000.0
        for q in queries
        if q.dur is not None and not q.attrs.get("cached")
    ]
    if solved_ms:
        p50, p95, p99 = _quantiles(solved_ms)
        lines.append("")
        lines.append(
            f"query latency (non-cached, {len(solved_ms)} solves): "
            f"p50 {p50:.1f}ms  p95 {p95:.1f}ms  p99 {p99:.1f}ms"
        )
    engine_totals: dict[str, list[int]] = {}
    for query in queries:
        engine = _enclosing(query, ENGINE_SPANS) or "-"
        totals = engine_totals.setdefault(engine, [0, 0])
        totals[0] += 1
        if query.attrs.get("verdict") == "unknown":
            totals[1] += 1
    unknown_parts = [
        f"{engine} {unknowns}/{total} ({unknowns / total:.1%})"
        for engine, (total, unknowns) in sorted(engine_totals.items())
        if total
    ]
    if unknown_parts:
        lines.append("per-engine unknown rate: " + "  ".join(unknown_parts))

    # ------------------------------------------------------- phase breakdown
    by_name: dict[str, list[SpanNode]] = {}
    for node in spans:
        if node.dur is not None:
            by_name.setdefault(node.name, []).append(node)
    lines.append("")
    lines.append("per-phase breakdown (by span name):")
    lines.append(
        f"  {'span':26s} {'count':>6s} {'total':>9s} {'mean':>9s} {'max':>9s}"
    )
    for name, group in sorted(
        by_name.items(), key=lambda item: -sum(n.dur for n in item[1])
    ):
        durations = [node.dur for node in group]
        lines.append(
            f"  {name:26s} {len(group):6d} {sum(durations):8.3f}s "
            f"{sum(durations) / len(durations):8.3f}s {max(durations):8.3f}s"
        )

    # -------------------------------------------------------- slowest queries
    slowest = sorted(
        (q for q in queries if q.dur is not None), key=lambda q: -q.dur
    )[:5]
    if slowest:
        lines.append("")
        lines.append("slowest queries:")
        for query in slowest:
            engine = _enclosing(query, ENGINE_SPANS) or "-"
            attrs = {
                key: query.attrs[key]
                for key in ("verdict", "cached", "instances", "cegar_rounds")
                if key in query.attrs
            }
            detail = " ".join(f"{k}={v}" for k, v in attrs.items())
            lines.append(
                f"  {query.dur:8.3f}s  {engine:10s} {detail}"
            )

    # ------------------------------------------------------ dispatch summary
    attempts = [node for node in spans if node.name == "dispatch.attempt"]
    workers = [node for node in spans if node.name == "worker"]
    faults = {}
    for node in points:
        if node.name.startswith("dispatch."):
            faults[node.name] = faults.get(node.name, 0) + 1
    if attempts or workers or faults:
        lines.append("")
        outcomes: dict[str, int] = {}
        for attempt in attempts:
            outcome = str(attempt.attrs.get("outcome", "?"))
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
        outcome_text = ", ".join(
            f"{count} {name}" for name, count in sorted(outcomes.items())
        )
        lines.append(
            f"dispatch: {len(attempts)} worker attempts"
            + (f" ({outcome_text})" if outcome_text else "")
            + f", {len(workers)} worker traces forwarded"
        )
        for name, count in sorted(faults.items()):
            lines.append(f"  {name:26s} {count}")
        lost = faults.get("dispatch.events-lost", 0)
        if lost:
            lines.append(
                f"  WARNING: incomplete trace -- {lost} worker death(s) took "
                "their task's buffered spans and metric samples with them; "
                "query counts and phase totals undercount accordingly."
            )

    # ---------------------------------------------------- durability summary
    appends = [node for node in points if node.name == "journal.append"]
    loads = [node for node in spans if node.name == "journal.load"]
    retries = [node for node in points if node.name == "store.retry"]
    wedged = [node for node in points if node.name == "dispatch.wedged"]
    if appends or loads or retries or wedged:
        lines.append("")
        lines.append("durability (journal resume, worker supervision, stores):")
        replayed = sum(int(n.attrs.get("events", 0) or 0) for n in loads)
        if loads:
            lines.append(
                f"  journal loads: {len(loads)} "
                f"({replayed} event(s) replayed)"
            )
        if appends:
            by_kind: dict[str, int] = {}
            for node in appends:
                kind = str(node.attrs.get("kind", "?"))
                by_kind[kind] = by_kind.get(kind, 0) + 1
            kinds = ", ".join(
                f"{count} {kind}" for kind, count in sorted(by_kind.items())
            )
            lines.append(f"  journal appends: {len(appends)} ({kinds})")
        if replayed or appends:
            # The trace-side estimate of the resume_reused_ratio gauge:
            # events replayed from the journal over all events seen.
            ratio = replayed / (replayed + len(appends))
            lines.append(f"  resume_reused_ratio: {ratio:.3f}")
        lines.append(f"  worker_wedged_total: {len(wedged)}")
        lines.append(f"  store_retries_total: {len(retries)}")
        if retries:
            by_op: dict[str, int] = {}
            for node in retries:
                op = str(node.attrs.get("op", "?"))
                by_op[op] = by_op.get(op, 0) + 1
            ops = ", ".join(
                f"{count} x {op}" for op, count in sorted(by_op.items())
            )
            lines.append(f"  transient I/O retries by op: {ops}")
    return "\n".join(lines)


# ------------------------------------------------------------------ hotspots


def _phase_ms(node: SpanNode) -> dict[str, float]:
    """``{phase: wall_ms}`` from a span's ``phase_*_ms`` attributes."""
    from .profile import ATTR_PREFIX

    out: dict[str, float] = {}
    for key, value in node.attrs.items():
        if not key.startswith(ATTR_PREFIX) or key.endswith("_cpu_ms"):
            continue
        if not key.endswith("_ms"):
            continue
        try:
            out[key[len(ATTR_PREFIX) : -len("_ms")]] = float(value)
        except (TypeError, ValueError):
            continue
    return out


def render_hotspots(events: list[dict], top: int = 10) -> str:
    """Per-phase decomposition of query wall time (``report --hotspots``).

    Total query wall is the summed duration of every ``epr.solve`` *and*
    ``epr.prepare`` span (grounding happens once per query, outside the
    per-obligation solves); coverage is how much of it the named phase
    timers account for -- the profiler's acceptance bar is >= 95%.
    ``transit`` (pickle/pipe time to pool workers) is reported separately:
    it is dispatch overhead around queries, not inside them.
    """
    from .profile import PHASES

    roots, nodes, header = build_tree(events)
    spans = [node for node in nodes.values() if node.kind == "span"]
    query_spans = [
        node
        for node in spans
        if node.name in (QUERY_SPAN, "epr.prepare") and node.dur is not None
    ]
    solves = [node for node in spans if node.name == QUERY_SPAN]
    lines: list[str] = []
    run = header.get("run", "?")
    total_wall_ms = sum(node.dur for node in query_spans) * 1000.0
    lines.append(
        f"query hotspots: run {run}  ({len(solves)} solves, "
        f"{len(query_spans)} query spans, {total_wall_ms / 1000:.3f}s "
        "query wall)"
    )

    # ----------------------------------------------------- phase totals
    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    for node in query_spans:
        for phase, ms in _phase_ms(node).items():
            totals[phase] = totals.get(phase, 0.0) + ms
            counts[phase] = counts.get(phase, 0) + 1
    covered_ms = sum(totals.values())
    lines.append("")
    lines.append("phase totals (share of query wall):")
    lines.append(f"  {'phase':12s} {'spans':>6s} {'total':>10s} {'share':>7s}")
    order = {phase: index for index, phase in enumerate(PHASES)}
    for phase, ms in sorted(
        totals.items(), key=lambda item: order.get(item[0], 99)
    ):
        share = ms / total_wall_ms if total_wall_ms else 0.0
        lines.append(
            f"  {phase:12s} {counts[phase]:6d} {ms / 1000:9.3f}s {share:6.1%}"
        )
    coverage = covered_ms / total_wall_ms if total_wall_ms else 0.0
    lines.append(
        f"  coverage: {covered_ms / 1000:.3f}s of {total_wall_ms / 1000:.3f}s "
        f"query wall decomposed into named phases ({coverage:.1%})"
    )

    # ------------------------------------- per-engine phase percentiles
    per_engine: dict[tuple[str, str], list[float]] = {}
    for node in query_spans:
        engine = _enclosing(node, ENGINE_SPANS) or "-"
        for phase, ms in _phase_ms(node).items():
            per_engine.setdefault((engine, phase), []).append(ms)
    if per_engine:
        lines.append("")
        lines.append("per-engine phase latency (ms per span):")
        lines.append(
            f"  {'engine':10s} {'phase':12s} {'n':>5s} "
            f"{'p50':>8s} {'p95':>8s} {'p99':>8s}"
        )
        for (engine, phase), values in sorted(
            per_engine.items(),
            key=lambda item: (item[0][0], order.get(item[0][1], 99)),
        ):
            p50, p95, p99 = _quantiles(values)
            lines.append(
                f"  {engine:10s} {phase:12s} {len(values):5d} "
                f"{p50:8.1f} {p95:8.1f} {p99:8.1f}"
            )

    # ------------------------------------------------- slowest queries
    slowest = sorted(
        (node for node in solves if node.dur is not None),
        key=lambda node: -node.dur,
    )[:top]
    if slowest:
        lines.append("")
        lines.append(f"top {len(slowest)} queries by wall time:")
        for node in slowest:
            engine = _enclosing(node, ENGINE_SPANS) or "-"
            phases = _phase_ms(node)
            decomposition = " ".join(
                f"{phase}={phases[phase]:.0f}ms"
                for phase in PHASES
                if phase in phases
            )
            verdict = node.attrs.get("verdict", "?")
            cached = " cached" if node.attrs.get("cached") else ""
            lines.append(
                f"  {node.dur:8.3f}s  {engine:10s} {verdict}{cached}"
                + (f"  [{decomposition}]" if decomposition else "")
            )

    # ------------------------------------------------- transit overhead
    transit_ms = [
        float(node.attrs["transit_ms"])
        for node in spans
        if node.name == "dispatch.attempt" and "transit_ms" in node.attrs
    ]
    if transit_ms:
        p50, p95, p99 = _quantiles(transit_ms)
        lines.append("")
        lines.append(
            f"worker transit (pickle/pipe, outside query wall): "
            f"{len(transit_ms)} round trips, total "
            f"{sum(transit_ms) / 1000:.3f}s, p50 {p50:.1f}ms p95 {p95:.1f}ms "
            f"p99 {p99:.1f}ms"
        )
    lost = sum(
        1
        for node in nodes.values()
        if node.kind == "point" and node.name == "dispatch.events-lost"
    )
    if lost:
        lines.append(
            f"WARNING: incomplete trace -- {lost} worker death(s) lost "
            "phase samples; totals undercount."
        )
    return "\n".join(lines)
