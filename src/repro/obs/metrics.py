"""A process-local metrics registry: counters, gauges, histograms.

Subsumes the ad-hoc counters that used to live only inside
:class:`~repro.solver.stats.SolverStats`: the solver and engine layers
publish into the registry unconditionally through the guarded module
helpers (:func:`inc`, :func:`observe`, :func:`set_gauge`), which are
single-global-read no-ops until a registry is installed -- exactly the
same off-by-default contract as :mod:`repro.obs.tracer`.  ``SolverStats``
keeps its public API and is still what ``--stats`` prints; the registry
is the machine-readable superset behind ``--metrics FILE``.

Metrics are identified by a name plus optional labels, rendered
Prometheus-style (``queries_total{verdict=sat}``) in the JSON snapshot.
Key series:

* ``queries_total{verdict=...}`` -- every EPR solve, by verdict;
* ``cache_hits_total`` / ``cache_misses_total`` / ``cache_evictions_total``;
* ``query_latency_ms`` -- histogram over actual (non-cached) solves;
* ``grounded_instances`` -- histogram over per-query grounding sizes;
* ``dispatched_total``, ``worker_crashes_total``, ``worker_kills_total``,
  ``dispatch_retries_total``, ``serial_fallbacks_total``;
* ``engine_queries_total{engine=...}`` / ``engine_unknown_total{engine=...}``
  -- per-engine query volume and budget-exhaustion counts, from which
  :meth:`MetricsRegistry.to_dict` derives the per-engine unknown rate;
* ``phase_seconds{phase=...}`` -- histogram fed by ``SolverStats.phase``.

Like the tracer, the registry is per-process: dispatch workers fork with
a copy, so each worker publishes into a *fresh per-task registry* and
ships its :meth:`MetricsRegistry.to_dict` delta back over the result
pipe; the parent folds it in with :meth:`MetricsRegistry.merge`
(:mod:`repro.solver.dispatch`), keeping parent-side totals -- and the
live :mod:`repro.obs.exporter` endpoint -- complete across the pool.
"""

from __future__ import annotations

import threading
import time
from typing import Mapping

#: default histogram bucket upper bounds -- generic log-ish scale that
#: covers milliseconds, seconds, and instance counts alike.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500,
    1_000, 5_000, 10_000, 50_000, 100_000, 1_000_000,
)


class Counter:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max."""

    __slots__ = ("bounds", "buckets", "count", "sum", "min", "max")

    def __init__(self, bounds: tuple = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)  # +inf overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0..1) by linear bucket interpolation.

        Exact only up to bucket resolution; the estimate is clamped into
        ``[min, max]`` so tiny histograms never report a quantile outside
        the observed range (the overflow bucket has no upper bound, and
        a single-sample bucket would otherwise interpolate to its edge).
        """
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        lower = 0.0
        for index, upper in enumerate(self.bounds + (self.max,)):
            in_bucket = self.buckets[index]
            if in_bucket and seen + in_bucket >= rank:
                fraction = (rank - seen) / in_bucket
                value = lower + (upper - lower) * fraction
                break
            seen += in_bucket
            lower = upper
        else:  # pragma: no cover - rank <= count always lands in a bucket
            value = self.max
        if self.min is not None:
            value = max(value, self.min)
        if self.max is not None:
            value = min(value, self.max)
        return value

    def merge_snapshot(self, snap: Mapping) -> None:
        """Fold a :meth:`snapshot` dict (e.g. a worker's delta) into self.

        Buckets are matched by bound; a bound this histogram does not
        have (shouldn't happen -- both sides use ``DEFAULT_BUCKETS`` --
        but deltas cross a pickle/pipe boundary) folds into the first
        bucket that covers it rather than being dropped.
        """
        count = int(snap.get("count", 0))
        if not count:
            return
        self.count += count
        self.sum += float(snap.get("sum", 0.0))
        for edge in ("min", "max"):
            value = snap.get(edge)
            if value is None:
                continue
            mine = getattr(self, edge)
            if mine is None or (value < mine if edge == "min" else value > mine):
                setattr(self, edge, value)
        for bound, bucket_count in snap.get("buckets", ()):
            if bound == "inf":
                self.buckets[-1] += bucket_count
                continue
            for index, mine in enumerate(self.bounds):
                if bound <= mine:
                    self.buckets[index] += bucket_count
                    break
            else:
                self.buckets[-1] += bucket_count

    def snapshot(self) -> dict:
        mean = self.sum / self.count if self.count else 0.0
        snap = {
            "count": self.count,
            "sum": round(self.sum, 6),
            "mean": round(mean, 6),
            "min": self.min,
            "max": self.max,
            "buckets": [
                [bound, count]
                for bound, count in zip(self.bounds + ("inf",), self.buckets)
                if count
            ],
        }
        if self.count:
            snap["p50"] = round(self.quantile(0.50), 6)
            snap["p95"] = round(self.quantile(0.95), 6)
            snap["p99"] = round(self.quantile(0.99), 6)
        return snap


def _key(name: str, labels: Mapping[str, object]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`_key`: ``"a{x=1,y=2}"`` -> ``("a", {"x": "1", ...})``.

    Label *values* produced by this codebase never contain ``,`` or ``=``
    (they are verdicts, engine names, phase names, op names), so a plain
    split is faithful.
    """
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key[:-1].partition("{")
    labels: dict[str, str] = {}
    for item in inner.split(","):
        k, _, v = item.partition("=")
        labels[k] = v
    return name, labels


class MetricsRegistry:
    """Creates-on-first-use registry of named, labeled metrics."""

    def __init__(self) -> None:
        self.created_unix = time.time()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, **labels) -> Counter:
        key = _key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(key, Counter())
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = _key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(key, Gauge())
        return metric

    def histogram(self, name: str, bounds: tuple = DEFAULT_BUCKETS, **labels) -> Histogram:
        key = _key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(key, Histogram(bounds))
        return metric

    # --------------------------------------------------- delta merging

    def counter_by_key(self, key: str) -> Counter:
        metric = self._counters.get(key)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(key, Counter())
        return metric

    def gauge_by_key(self, key: str) -> Gauge:
        metric = self._gauges.get(key)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(key, Gauge())
        return metric

    def histogram_by_key(self, key: str) -> Histogram:
        metric = self._histograms.get(key)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(key, Histogram())
        return metric

    def merge(self, delta: Mapping) -> None:
        """Fold another registry's :meth:`to_dict` snapshot into this one.

        This is how pool-worker metrics reach the parent: each worker
        publishes into a fresh per-task registry and ships its
        ``to_dict()`` back with the result; the parent merges, so the
        exporter endpoint reflects the whole pool.  Counters and
        histogram contents add; gauges last-write-win (workers rarely
        set them).  ``derived`` rates are recomputed from the merged
        counters at the next :meth:`to_dict`, never merged.
        """
        for key, value in delta.get("counters", {}).items():
            if value:
                self.counter_by_key(key).inc(value)
        for key, value in delta.get("gauges", {}).items():
            self.gauge_by_key(key).set(value)
        for key, snap in delta.get("histograms", {}).items():
            self.histogram_by_key(key).merge_snapshot(snap)

    # ------------------------------------------------------------ reporting

    def to_dict(self) -> dict:
        """A JSON-able snapshot, with a few derived convenience rates."""
        counters = {key: c.value for key, c in sorted(self._counters.items())}
        derived: dict[str, float] = {}
        hits = counters.get("cache_hits_total", 0)
        misses = counters.get("cache_misses_total", 0)
        if hits + misses:
            derived["cache_hit_rate"] = round(hits / (hits + misses), 4)
        for key, total in counters.items():
            if not key.startswith("engine_queries_total{") or not total:
                continue
            engine = key[len("engine_queries_total") :]
            unknowns = counters.get(f"engine_unknown_total{engine}", 0)
            derived[f"unknown_rate{engine}"] = round(unknowns / total, 4)
        return {
            "schema": 1,
            "created_unix": self.created_unix,
            "counters": counters,
            "gauges": {key: g.value for key, g in sorted(self._gauges.items())},
            "histograms": {
                key: h.snapshot() for key, h in sorted(self._histograms.items())
            },
            "derived": derived,
        }


#: the installed registry; ``None`` (the default) disables metrics entirely.
_registry: MetricsRegistry | None = None


def install_metrics(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install (or with ``None`` remove) the process-global registry."""
    global _registry
    old = _registry
    _registry = registry
    return old


def metrics() -> MetricsRegistry | None:
    return _registry


def metrics_enabled() -> bool:
    return _registry is not None


def inc(name: str, amount: int = 1, **labels) -> None:
    """Increment a counter; no-op until a registry is installed."""
    registry = _registry
    if registry is None:
        return
    registry.counter(name, **labels).inc(amount)


def observe(name: str, value: float, **labels) -> None:
    """Record a histogram observation; no-op until a registry is installed."""
    registry = _registry
    if registry is None:
        return
    registry.histogram(name, **labels).observe(value)


def set_gauge(name: str, value: float, **labels) -> None:
    """Set a gauge; no-op until a registry is installed."""
    registry = _registry
    if registry is None:
        return
    registry.gauge(name, **labels).set(value)


def count_engine_queries(engine: str, results) -> None:
    """Record an engine's query volume and unknown count in one shot.

    ``results`` is any iterable of objects with an ``unknown`` attribute
    (:class:`~repro.solver.epr.EprResult`); feeds the per-engine
    ``unknown_rate`` derived metric.  No-op until a registry is installed.
    """
    registry = _registry
    if registry is None:
        return
    total = unknowns = 0
    for result in results:
        total += 1
        if getattr(result, "unknown", False):
            unknowns += 1
    if total:
        registry.counter("engine_queries_total", engine=engine).inc(total)
    if unknowns:
        registry.counter("engine_unknown_total", engine=engine).inc(unknowns)
