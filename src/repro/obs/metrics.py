"""A process-local metrics registry: counters, gauges, histograms.

Subsumes the ad-hoc counters that used to live only inside
:class:`~repro.solver.stats.SolverStats`: the solver and engine layers
publish into the registry unconditionally through the guarded module
helpers (:func:`inc`, :func:`observe`, :func:`set_gauge`), which are
single-global-read no-ops until a registry is installed -- exactly the
same off-by-default contract as :mod:`repro.obs.tracer`.  ``SolverStats``
keeps its public API and is still what ``--stats`` prints; the registry
is the machine-readable superset behind ``--metrics FILE``.

Metrics are identified by a name plus optional labels, rendered
Prometheus-style (``queries_total{verdict=sat}``) in the JSON snapshot.
Key series:

* ``queries_total{verdict=...}`` -- every EPR solve, by verdict;
* ``cache_hits_total`` / ``cache_misses_total`` / ``cache_evictions_total``;
* ``query_latency_ms`` -- histogram over actual (non-cached) solves;
* ``grounded_instances`` -- histogram over per-query grounding sizes;
* ``dispatched_total``, ``worker_crashes_total``, ``worker_kills_total``,
  ``dispatch_retries_total``, ``serial_fallbacks_total``;
* ``engine_queries_total{engine=...}`` / ``engine_unknown_total{engine=...}``
  -- per-engine query volume and budget-exhaustion counts, from which
  :meth:`MetricsRegistry.to_dict` derives the per-engine unknown rate;
* ``phase_seconds{phase=...}`` -- histogram fed by ``SolverStats.phase``.

Like the tracer, the registry is per-process: dispatch workers fork with
a copy and their increments die with them, so the dispatch *parent*
records worker-solved queries from the results it receives
(:mod:`repro.solver.dispatch`), keeping parent-side totals complete.
"""

from __future__ import annotations

import threading
import time
from typing import Mapping

#: default histogram bucket upper bounds -- generic log-ish scale that
#: covers milliseconds, seconds, and instance counts alike.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 50, 100, 500,
    1_000, 5_000, 10_000, 50_000, 100_000, 1_000_000,
)


class Counter:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max."""

    __slots__ = ("bounds", "buckets", "count", "sum", "min", "max")

    def __init__(self, bounds: tuple = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.buckets = [0] * (len(self.bounds) + 1)  # +inf overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    def snapshot(self) -> dict:
        mean = self.sum / self.count if self.count else 0.0
        return {
            "count": self.count,
            "sum": round(self.sum, 6),
            "mean": round(mean, 6),
            "min": self.min,
            "max": self.max,
            "buckets": [
                [bound, count]
                for bound, count in zip(self.bounds + ("inf",), self.buckets)
                if count
            ],
        }


def _key(name: str, labels: Mapping[str, object]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Creates-on-first-use registry of named, labeled metrics."""

    def __init__(self) -> None:
        self.created_unix = time.time()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, **labels) -> Counter:
        key = _key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(key, Counter())
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        key = _key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(key, Gauge())
        return metric

    def histogram(self, name: str, bounds: tuple = DEFAULT_BUCKETS, **labels) -> Histogram:
        key = _key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(key, Histogram(bounds))
        return metric

    # ------------------------------------------------------------ reporting

    def to_dict(self) -> dict:
        """A JSON-able snapshot, with a few derived convenience rates."""
        counters = {key: c.value for key, c in sorted(self._counters.items())}
        derived: dict[str, float] = {}
        hits = counters.get("cache_hits_total", 0)
        misses = counters.get("cache_misses_total", 0)
        if hits + misses:
            derived["cache_hit_rate"] = round(hits / (hits + misses), 4)
        for key, total in counters.items():
            if not key.startswith("engine_queries_total{") or not total:
                continue
            engine = key[len("engine_queries_total") :]
            unknowns = counters.get(f"engine_unknown_total{engine}", 0)
            derived[f"unknown_rate{engine}"] = round(unknowns / total, 4)
        return {
            "schema": 1,
            "created_unix": self.created_unix,
            "counters": counters,
            "gauges": {key: g.value for key, g in sorted(self._gauges.items())},
            "histograms": {
                key: h.snapshot() for key, h in sorted(self._histograms.items())
            },
            "derived": derived,
        }


#: the installed registry; ``None`` (the default) disables metrics entirely.
_registry: MetricsRegistry | None = None


def install_metrics(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install (or with ``None`` remove) the process-global registry."""
    global _registry
    old = _registry
    _registry = registry
    return old


def metrics() -> MetricsRegistry | None:
    return _registry


def metrics_enabled() -> bool:
    return _registry is not None


def inc(name: str, amount: int = 1, **labels) -> None:
    """Increment a counter; no-op until a registry is installed."""
    registry = _registry
    if registry is None:
        return
    registry.counter(name, **labels).inc(amount)


def observe(name: str, value: float, **labels) -> None:
    """Record a histogram observation; no-op until a registry is installed."""
    registry = _registry
    if registry is None:
        return
    registry.histogram(name, **labels).observe(value)


def set_gauge(name: str, value: float, **labels) -> None:
    """Set a gauge; no-op until a registry is installed."""
    registry = _registry
    if registry is None:
        return
    registry.gauge(name, **labels).set(value)


def count_engine_queries(engine: str, results) -> None:
    """Record an engine's query volume and unknown count in one shot.

    ``results`` is any iterable of objects with an ``unknown`` attribute
    (:class:`~repro.solver.epr.EprResult`); feeds the per-engine
    ``unknown_rate`` derived metric.  No-op until a registry is installed.
    """
    registry = _registry
    if registry is None:
        return
    total = unknowns = 0
    for result in results:
        total += 1
        if getattr(result, "unknown", False):
            unknowns += 1
    if total:
        registry.counter("engine_queries_total", engine=engine).inc(total)
    if unknowns:
        registry.counter("engine_unknown_total", engine=engine).inc(unknowns)
