"""Observability: tracing, metrics, profiling, live monitoring, reporting.

The layers, all zero-dependency:

* :mod:`repro.obs.tracer` -- span-based JSONL tracing with nested span
  IDs, a run-level correlation ID, and dispatch-worker event forwarding
  (off by default);
* :mod:`repro.obs.metrics` -- a counters/gauges/histograms registry the
  solver layers publish into (query latency, verdicts, cache and fault
  counters, per-engine unknown rates), with worker-delta merging and
  bucket-interpolated p50/p95/p99 (off by default);
* :mod:`repro.obs.profile` -- per-phase wall/CPU timers decomposing
  every query's latency into grounding, CNF build, CDCL search, theory,
  cache, and transit time (on by default; ``REPRO_PROFILE=0`` disables);
* :mod:`repro.obs.exporter` -- a Prometheus-style ``/metrics`` HTTP
  endpoint over the live registry (``--metrics-port``);
* :mod:`repro.obs.watch` -- the ``repro watch RUN_DIR`` terminal view,
  tailing a run's journal and trace tee;
* :mod:`repro.obs.report` -- offline rendering of a trace into the
  per-protocol / per-phase / per-query breakdown (``repro report``) and
  the phase-decomposition hotspot view (``--hotspots``);
* :mod:`repro.obs.benchcmp` -- the noise-aware BENCH_*.json regression
  gate (``repro bench diff``, ``benchmarks/compare.py``).

Engines and solvers instrument through the guarded helpers re-exported
here (``obs.span``, ``obs.point``, ``obs.inc``, ``obs.observe``): with no
tracer or registry installed each call is a single global read, so
untraced runs pay effectively nothing.  The CLI installs the layers from
``--trace`` / ``--metrics`` / ``--metrics-port`` / ``--progress``.
"""

from . import benchcmp, exporter, profile, watch
from .exporter import MetricsServer, render_exposition
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    count_engine_queries,
    inc,
    install_metrics,
    metrics,
    metrics_enabled,
    observe,
    set_gauge,
)
from .report import (
    ENGINE_SPANS,
    QUERY_SPAN,
    SpanNode,
    TraceParseError,
    build_tree,
    load_trace,
    render_hotspots,
    render_report,
    tree_depth,
)
from .tracer import (
    SCHEMA_VERSION,
    Span,
    SpanRef,
    Tracer,
    active_tracer,
    begin_span,
    current_span_id,
    drain_worker,
    enabled,
    enter_worker,
    exit_worker,
    finish_span,
    forward_events,
    install_tracer,
    point,
    span,
)

__all__ = [
    "Counter",
    "ENGINE_SPANS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsServer",
    "QUERY_SPAN",
    "SCHEMA_VERSION",
    "Span",
    "SpanNode",
    "SpanRef",
    "TraceParseError",
    "Tracer",
    "active_tracer",
    "begin_span",
    "benchcmp",
    "build_tree",
    "count_engine_queries",
    "current_span_id",
    "drain_worker",
    "enabled",
    "enter_worker",
    "exit_worker",
    "exporter",
    "finish_span",
    "forward_events",
    "inc",
    "install_metrics",
    "install_tracer",
    "load_trace",
    "metrics",
    "metrics_enabled",
    "observe",
    "point",
    "profile",
    "render_exposition",
    "render_hotspots",
    "render_report",
    "set_gauge",
    "span",
    "tree_depth",
    "watch",
]
