"""Observability: span tracing, metrics, and trace reporting.

Three layers, all zero-dependency and **off by default**:

* :mod:`repro.obs.tracer` -- span-based JSONL tracing with nested span
  IDs, a run-level correlation ID, and dispatch-worker event forwarding;
* :mod:`repro.obs.metrics` -- a counters/gauges/histograms registry the
  solver layers publish into (query latency, verdicts, cache and fault
  counters, per-engine unknown rates);
* :mod:`repro.obs.report` -- offline rendering of a trace into the
  per-protocol / per-phase / per-query breakdown (``repro report``).

Engines and solvers instrument through the guarded helpers re-exported
here (``obs.span``, ``obs.point``, ``obs.inc``, ``obs.observe``): with no
tracer or registry installed each call is a single global read, so
untraced runs pay effectively nothing.  The CLI installs both layers from
``--trace`` / ``--metrics`` / ``--progress``.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    count_engine_queries,
    inc,
    install_metrics,
    metrics,
    metrics_enabled,
    observe,
    set_gauge,
)
from .report import (
    ENGINE_SPANS,
    QUERY_SPAN,
    SpanNode,
    TraceParseError,
    build_tree,
    load_trace,
    render_report,
    tree_depth,
)
from .tracer import (
    SCHEMA_VERSION,
    Span,
    SpanRef,
    Tracer,
    active_tracer,
    begin_span,
    current_span_id,
    drain_worker,
    enabled,
    enter_worker,
    exit_worker,
    finish_span,
    forward_events,
    install_tracer,
    point,
    span,
)

__all__ = [
    "Counter",
    "ENGINE_SPANS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QUERY_SPAN",
    "SCHEMA_VERSION",
    "Span",
    "SpanNode",
    "SpanRef",
    "TraceParseError",
    "Tracer",
    "active_tracer",
    "begin_span",
    "build_tree",
    "count_engine_queries",
    "current_span_id",
    "drain_worker",
    "enabled",
    "enter_worker",
    "exit_worker",
    "finish_span",
    "forward_events",
    "inc",
    "install_metrics",
    "install_tracer",
    "load_trace",
    "metrics",
    "metrics_enabled",
    "observe",
    "point",
    "render_report",
    "set_gauge",
    "span",
    "tree_depth",
]
