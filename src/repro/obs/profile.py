"""Per-phase query profiling: wall/CPU timers for solver hot paths.

Every ``query_latency_ms`` sample should decompose into *phases* -- the
named stages a query's wall time actually goes to:

* ``normalize`` -- NNF/ite-elimination/skolemization (:mod:`..solver.epr`);
* ``ground``    -- the ground-term universe closure (:mod:`..solver.grounding`);
* ``cnf``       -- exhaustive instantiation + Tseitin encoding;
* ``cache``     -- query-cache lookups and stores (:mod:`..solver.cache`);
* ``sat``       -- CDCL search (:mod:`..solver.sat`);
* ``theory``    -- congruence closure and MBQI refinement;
* ``extract``   -- finite-model extraction on SAT;
* ``ledger``    -- proven-lemma ledger splits (:mod:`..core.induction`);
* ``transit``   -- pickle/pipe time to and from pool workers, measured by
  the dispatch parent (:mod:`..solver.dispatch`) as observed round-trip
  minus worker-reported wall.

The machinery mirrors the tracer/metrics contract: timers are guarded by
a module flag (default **on**; ``REPRO_PROFILE=0`` or
:func:`set_profiling` turns them off) and each :func:`phase` block costs
two ``perf_counter`` + two ``thread_time`` reads -- coarse placement (one
block per CDCL call, per grounding, per instantiation loop) keeps the
overhead under the 5% budget the dispatch benchmark pins.

Collection has two modes:

* inside a :func:`collect` scope (``EprSolver.prepare`` and
  ``PreparedEpr.solve`` each open one), phases accumulate into a
  :class:`PhaseProfile` that the scope owner attaches to its trace span
  (``phase_<name>_ms`` attributes), to the result ``statistics`` (so
  :class:`~repro.solver.stats.SolverStats` and the benchmark telemetry
  aggregate them for free), and to the ``query_phase_ms{phase=...}``
  metrics histogram;
* outside any scope (e.g. the ledger split, which runs at the engine
  layer rather than inside a query), a finished phase publishes straight
  to the metrics histogram.

Phases must not nest: a nested block would double-count its interval and
break the "phases sum to <= total wall" invariant the profiler tests pin.
Placement keeps them disjoint (the ``cache`` timer lives inside
:mod:`..solver.cache`, not around it in the EPR layer, for exactly this
reason).

:func:`engine` tags the ambient engine (bmc / houdini / updr /
induction) through a contextvar so phase metrics carry an ``engine``
label; dispatch ships the tag to pool workers with each task.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from contextvars import ContextVar

# Import the helpers straight from the module: the ``repro.obs`` package
# re-exports a *function* named ``metrics``, shadowing the submodule as a
# package attribute.
from .metrics import metrics_enabled as _metrics_enabled
from .metrics import observe as _observe

#: canonical phase order, used by reports for stable column layout
PHASES = (
    "normalize", "ground", "cnf", "cache", "sat", "theory", "extract",
    "ledger", "transit",
)

#: statistics/span-attribute prefix phase timings are published under
ATTR_PREFIX = "phase_"


def _env_enabled() -> bool:
    return os.environ.get("REPRO_PROFILE", "").strip().lower() not in (
        "0", "false", "no", "off",
    )


_enabled = _env_enabled()

_active: ContextVar["PhaseProfile | None"] = ContextVar(
    "repro_profile", default=None
)
_engine: ContextVar[str | None] = ContextVar("repro_profile_engine", default=None)


def profiling_enabled() -> bool:
    return _enabled


def set_profiling(on: bool) -> bool:
    """Turn the phase timers on/off; returns the previous setting."""
    global _enabled
    old = _enabled
    _enabled = bool(on)
    return old


class PhaseProfile:
    """Accumulated wall/CPU seconds per phase for one collection scope."""

    __slots__ = ("wall", "cpu", "counts")

    def __init__(self) -> None:
        self.wall: dict[str, float] = {}
        self.cpu: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    def add(self, name: str, wall_s: float, cpu_s: float) -> None:
        self.wall[name] = self.wall.get(name, 0.0) + wall_s
        self.cpu[name] = self.cpu.get(name, 0.0) + cpu_s
        self.counts[name] = self.counts.get(name, 0) + 1

    def total_wall(self) -> float:
        return sum(self.wall.values())

    def attrs_ms(self) -> dict[str, float]:
        """``phase_<name>_ms`` values for span attributes / statistics.

        Milliseconds keep microsecond precision (three decimals): queries
        here run in the hundreds-of-microseconds range, and truncating to
        whole milliseconds would throw away most of the decomposition --
        the hotspot report's "phases cover >= 95% of query wall" property
        only holds with sub-millisecond attributes.
        """
        out: dict[str, float] = {}
        for name, wall in self.wall.items():
            out[f"{ATTR_PREFIX}{name}_ms"] = round(wall * 1000, 3)
            out[f"{ATTR_PREFIX}{name}_cpu_ms"] = round(self.cpu[name] * 1000, 3)
        return out


@contextmanager
def collect():
    """Open a collection scope; yields the profile (None when disabled)."""
    if not _enabled:
        yield None
        return
    profile = PhaseProfile()
    token = _active.set(profile)
    try:
        yield profile
    finally:
        _active.reset(token)


@contextmanager
def phase(name: str):
    """Time one disjoint phase of the active scope (or publish directly)."""
    if not _enabled:
        yield
        return
    profile = _active.get()
    wall0 = time.perf_counter()
    cpu0 = time.thread_time()
    try:
        yield
    finally:
        wall_s = time.perf_counter() - wall0
        cpu_s = time.thread_time() - cpu0
        if profile is not None:
            profile.add(name, wall_s, cpu_s)
        elif _metrics_enabled():
            _observe_phase(name, wall_s)


@contextmanager
def engine(name: str):
    """Tag the ambient engine for phase metrics (contextvar-scoped)."""
    token = _engine.set(name)
    try:
        yield
    finally:
        _engine.reset(token)


def current_engine() -> str | None:
    return _engine.get()


def set_engine(name: str | None):
    """Non-lexical :func:`engine` for pool workers; returns a reset token."""
    return _engine.set(name)


def _observe_phase(name: str, wall_s: float) -> None:
    labels = {"phase": name}
    tag = _engine.get()
    if tag is not None:
        labels["engine"] = tag
    _observe("query_phase_ms", wall_s * 1000, **labels)


def publish(profile: PhaseProfile | None) -> None:
    """Feed a finished scope's phases into ``query_phase_ms{phase=...}``."""
    if profile is None or not _metrics_enabled():
        return
    for name, wall in profile.wall.items():
        _observe_phase(name, wall)
