"""Noise-aware diffing of two ``BENCH_*.json`` telemetry files.

The regression gate behind ``repro bench diff A B`` and
``benchmarks/compare.py``: load a committed baseline and a freshly
generated BENCH file, walk their shared sections, and classify every
numeric drift.  Three severities:

* **regression** (fatal, exit 1) -- a timing grew past the noise
  envelope, a protocol's ``holds`` flipped to False, or an ``unknown``
  count increased (the solver silently gave up on work it used to
  finish);
* **improvement** (informational) -- a timing shrank past the same
  envelope;
* **info** (informational) -- non-timing counters that moved (query
  counts, cache hit rates): worth a look, not worth failing CI.

Noise model: wall-clock benchmarks on shared CI runners jitter by tens
of percent, so a timing value regresses only when
``new > old * max_ratio + floor_s`` -- both a *relative* threshold
(default 1.6x) and an *absolute* floor (default 0.25s) must be cleared.
The floor keeps microsecond-scale sections (a cache lookup, a warm
ledger rerun) from tripping the relative test on scheduler noise; the
ratio keeps genuinely slow sections honest.  Timing keys are recognized
by suffix: ``_s``/``_ms`` (and the legacy ``wall``/``parallel_s`` style
names all end in ``_s`` already).  ``speedup`` keys are *inverted* --
smaller is worse -- and compared with the ratio alone.

Comparison is structural: sections present on only one side are
reported as info (a new benchmark is not a regression), and nested
dicts recurse with dotted paths.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

#: relative growth a timing may show before it counts as a regression
DEFAULT_MAX_RATIO = 1.6

#: absolute seconds of growth a timing may show before it counts
DEFAULT_FLOOR_S = 0.25

#: keys whose *decrease* is the failure direction
_INVERTED = ("speedup",)

#: non-timing keys whose increase is always fatal
_FATAL_INCREASES = ("unknown",)


@dataclass(frozen=True)
class Finding:
    """One classified drift between baseline and candidate."""

    severity: str  # "regression" | "improvement" | "info"
    path: str  # dotted section path, e.g. "lock_server.wall_s"
    old: object
    new: object
    detail: str

    def render(self) -> str:
        marker = {
            "regression": "REGRESSION",
            "improvement": "improvement",
            "info": "info",
        }[self.severity]
        return f"  [{marker}] {self.path}: {self.old} -> {self.new}  ({self.detail})"


def load_bench(path: str) -> dict:
    """Parse one BENCH_*.json; raises SystemExit with a message on junk."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as error:
        raise SystemExit(f"cannot read {path}: {error}")
    except json.JSONDecodeError as error:
        raise SystemExit(f"{path}: not valid JSON ({error})")
    if not isinstance(payload, dict) or "sections" not in payload:
        raise SystemExit(f"{path}: not a BENCH telemetry file (no sections)")
    return payload


def _is_timing(key: str) -> bool:
    leaf = key.rsplit(".", 1)[-1]
    return leaf.endswith("_s") or leaf.endswith("_ms")


def _timing_seconds(key: str, value: float) -> float:
    return value / 1000.0 if key.rsplit(".", 1)[-1].endswith("_ms") else value


def _leaf(key: str) -> str:
    return key.rsplit(".", 1)[-1]


def compare_values(
    path: str,
    old: object,
    new: object,
    max_ratio: float,
    floor_s: float,
    findings: list[Finding],
) -> None:
    if isinstance(old, dict) and isinstance(new, dict):
        for key in sorted(set(old) | set(new)):
            child = f"{path}.{key}" if path else str(key)
            if key not in old:
                findings.append(
                    Finding("info", child, None, new[key], "new in candidate")
                )
            elif key not in new:
                findings.append(
                    Finding("info", child, old[key], None, "gone in candidate")
                )
            else:
                compare_values(
                    child, old[key], new[key], max_ratio, floor_s, findings
                )
        return
    if isinstance(old, bool) or isinstance(new, bool):
        if old != new:
            severity = (
                "regression"
                if _leaf(path) == "holds" and old and not new
                else "info"
            )
            findings.append(
                Finding(severity, path, old, new, "boolean flipped")
            )
        return
    if not isinstance(old, (int, float)) or not isinstance(new, (int, float)):
        if old != new:
            findings.append(Finding("info", path, old, new, "value changed"))
        return
    leaf = _leaf(path)
    if any(leaf.startswith(name) for name in _INVERTED):
        if old > 0 and new < old / max_ratio:
            findings.append(
                Finding(
                    "regression", path, old, new,
                    f"shrank more than {max_ratio:g}x",
                )
            )
        elif new > old * max_ratio:
            findings.append(
                Finding("improvement", path, old, new, "grew")
            )
        return
    if _is_timing(path):
        old_s = _timing_seconds(path, float(old))
        new_s = _timing_seconds(path, float(new))
        if new_s > old_s * max_ratio + floor_s:
            findings.append(
                Finding(
                    "regression", path, old, new,
                    f"past {max_ratio:g}x + {floor_s:g}s noise envelope",
                )
            )
        elif old_s > new_s * max_ratio + floor_s:
            findings.append(
                Finding("improvement", path, old, new, "faster")
            )
        return
    if leaf in _FATAL_INCREASES and new > old:
        findings.append(
            Finding(
                "regression", path, old, new,
                "solver gave up on work it used to finish",
            )
        )
        return
    if old != new:
        findings.append(Finding("info", path, old, new, "counter moved"))


def compare(
    baseline: dict,
    candidate: dict,
    max_ratio: float = DEFAULT_MAX_RATIO,
    floor_s: float = DEFAULT_FLOOR_S,
) -> list[Finding]:
    """All classified drifts between two loaded BENCH payloads."""
    findings: list[Finding] = []
    compare_values(
        "",
        baseline.get("sections", {}),
        candidate.get("sections", {}),
        max_ratio,
        floor_s,
        findings,
    )
    return findings


def render(
    baseline_path: str,
    candidate_path: str,
    baseline: dict,
    candidate: dict,
    findings: list[Finding],
) -> str:
    lines = [
        f"bench diff: {baseline_path} (rev {baseline.get('git_rev')}) "
        f"-> {candidate_path} (rev {candidate.get('git_rev')})"
    ]
    order = {"regression": 0, "improvement": 1, "info": 2}
    shown = sorted(findings, key=lambda f: (order[f.severity], f.path))
    regressions = [f for f in findings if f.severity == "regression"]
    for finding in shown:
        lines.append(finding.render())
    if not findings:
        lines.append("  (no drift)")
    lines.append(
        f"verdict: {'REGRESSED' if regressions else 'OK'} "
        f"({len(regressions)} regression(s), "
        f"{sum(1 for f in findings if f.severity == 'improvement')} "
        f"improvement(s), "
        f"{sum(1 for f in findings if f.severity == 'info')} info)"
    )
    return "\n".join(lines)


def diff_files(
    baseline_path: str,
    candidate_path: str,
    max_ratio: float = DEFAULT_MAX_RATIO,
    floor_s: float = DEFAULT_FLOOR_S,
    report_only: bool = False,
) -> int:
    """Compare two BENCH files, print the report, return the exit code.

    ``report_only`` prints the same report but always exits 0 -- the
    PR-gate mode, where the diff is advisory and the artifact is what
    reviewers read.
    """
    baseline = load_bench(baseline_path)
    candidate = load_bench(candidate_path)
    findings = compare(baseline, candidate, max_ratio, floor_s)
    print(render(baseline_path, candidate_path, baseline, candidate, findings))
    if report_only:
        return 0
    return 1 if any(f.severity == "regression" for f in findings) else 0
