"""Shared infrastructure for the protocol models of Section 5.

Each protocol module exposes a ``build()`` function returning a
:class:`ProtocolBundle`: the RML program, the initial conjecture set (the
safety property, as derived from the program's assertions), the known full
inductive invariant (the end product of the paper's interactive sessions),
and bookkeeping used by the Figure 14 reproduction (model-size statistics
and recommended bounds/measures).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.induction import Conjecture
from ..logic import syntax as s
from ..rml.ast import Program


@dataclass(frozen=True)
class ProtocolBundle:
    """A modeled protocol plus everything the evaluation needs."""

    program: Program
    safety: tuple[Conjecture, ...]  # initial conjectures (column C of Fig. 14)
    invariant: tuple[Conjecture, ...]  # full inductive invariant (column I)
    bmc_bound: int = 3  # debugging bound used in our runs
    notes: str = ""

    def sort_count(self) -> int:
        """Column S of Figure 14."""
        return len(self.program.vocab.sorts)

    def symbol_count(self) -> int:
        """Column RF of Figure 14: relation plus function symbols.

        Following the paper's counting for its models, program variables
        (nullary functions that only carry havoc scratch values) are not
        counted as state symbols.
        """
        relations = len(self.program.vocab.relations)
        functions = sum(1 for f in self.program.vocab.functions if not f.is_constant)
        return relations + functions

    def literal_count(self, conjectures: tuple[Conjecture, ...]) -> int:
        """Total literal count of a conjecture set (columns C and I)."""
        return sum(_literals(c.formula) for c in conjectures)


def _literals(formula: s.Formula) -> int:
    if isinstance(formula, (s.Rel, s.Eq)):
        return 1
    if isinstance(formula, s.Not):
        return _literals(formula.arg)
    if isinstance(formula, (s.And, s.Or)):
        return sum(_literals(a) for a in formula.args)
    if isinstance(formula, (s.Implies, s.Iff)):
        return _literals(formula.lhs) + _literals(formula.rhs)
    if isinstance(formula, (s.Forall, s.Exists)):
        return _literals(formula.body)
    raise TypeError(f"not a formula: {formula!r}")
