"""The protocols of the paper's evaluation (Section 5, Figure 14).

Each module exposes ``build() -> ProtocolBundle`` with the RML model, the
safety property, and the inductive invariant found interactively:

* :mod:`~repro.protocols.leader_election` -- leader election in a ring;
* :mod:`~repro.protocols.lock_server` -- the Verdi lock server;
* :mod:`~repro.protocols.distributed_lock` -- the IronFleet distributed
  lock protocol;
* :mod:`~repro.protocols.learning_switch` -- network learning switch with
  route transitive closure;
* :mod:`~repro.protocols.db_chain` -- database chain-transaction
  consistency;
* :mod:`~repro.protocols.chord` -- Chord ring maintenance (stable base).
"""

from . import (
    chord,
    db_chain,
    distributed_lock,
    leader_election,
    learning_switch,
    lock_server,
)
from .base import ProtocolBundle

ALL_PROTOCOLS = {
    "leader_election": leader_election,
    "lock_server": lock_server,
    "distributed_lock": distributed_lock,
    "learning_switch": learning_switch,
    "db_chain": db_chain,
    "chord": chord,
}

__all__ = [
    "ALL_PROTOCOLS",
    "ProtocolBundle",
    "chord",
    "db_chain",
    "distributed_lock",
    "leader_election",
    "learning_switch",
    "lock_server",
]
