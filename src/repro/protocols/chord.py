"""Chord ring maintenance with a stable base (paper Section 5.1).

Zave's analysis of Chord asks whether the ring-maintenance operations keep
the ring correct; the paper models it in RML and interactively infers a
*universally quantified* invariant where Zave's proof needed transitive
closure.  Following DESIGN.md, this is the one protocol we reduce: the
paper's model has Zave's full operation set (13 symbols, 46-literal
invariant); ours keeps the structural core -- joins and stabilization over
a stable base, no failures (the strongest form of the paper's "certain
assumptions about failures") -- at the same single-sort granularity.

Identifiers form a ring (the ``btw`` axioms of Figure 2).  The *stable
base* is an initial set of nodes arranged in a correct ring.  New nodes
join as *appendages*: they point at their correct ring successor but are
not yet in the cycle; stabilization lets an appendage retarget to a closer
active node, and integration splices an appendage between two ring members
(the stabilize/rectify pair completing).

Safety: the cycle order is preserved -- **a ring member's successor
pointer never skips over another ring member** (this is the
order-theoretic, universally quantifiable form of "the ring stays
connected": following successors from any member visits every member, in
particular the base).
"""

from __future__ import annotations

from ..core.induction import Conjecture
from ..logic import syntax as s
from ..logic.parser import parse_formula, parse_term
from ..logic.sorts import FuncDecl, RelDecl, Sort, vocabulary
from ..rml.ast import Assume, Axiom, Havoc, Program, UpdateRel, choice, seq
from ..rml.sugar import assert_, insert, remove
from .base import ProtocolBundle

NODE = Sort("node")


def build() -> ProtocolBundle:
    """Build the stable-base Chord model with its ring-order invariant."""
    vocab = vocabulary(
        sorts=[NODE],
        relations=[
            RelDecl("btw", (NODE, NODE, NODE)),  # rigid ring order
            RelDecl("base", (NODE,)),  # rigid stable base
            RelDecl("a", (NODE,)),  # active members
            RelDecl("in_ring", (NODE,)),  # members woven into the cycle
            RelDecl("s", (NODE, NODE)),  # successor pointer
            RelDecl("p", (NODE, NODE)),  # predecessor pointer
        ],
        functions=[
            FuncDecl("x", (), NODE),
            FuncDecl("y", (), NODE),
            FuncDecl("w", (), NODE),
            FuncDecl("z", (), NODE),
        ],
    )

    def fml(source: str, free=None) -> s.Formula:
        return parse_formula(source, vocab, free=free)

    def term(source: str) -> s.Term:
        return parse_term(source, vocab)

    ring_topology = Axiom(
        "ring_topology",
        fml(
            "(forall X, Y, Z. btw(X, Y, Z) -> btw(Y, Z, X))"
            " & (forall W, X, Y, Z. btw(W, X, Y) & btw(W, Y, Z) -> btw(W, X, Z))"
            " & (forall W, X, Y. btw(W, X, Y) -> ~btw(W, Y, X))"
            " & (forall W:node, X:node, Y:node."
            "    W ~= X & X ~= Y & W ~= Y -> btw(W, X, Y) | btw(W, Y, X))"
        ),
    )
    base_nonempty = Axiom("base_nonempty", fml("exists B:node. base(B)"))

    # The base starts as a correct ring: actives = ring members = base,
    # successor edges of base nodes are exact ring edges over the base, and
    # predecessor pointers invert them.
    init = seq(
        Assume(fml("forall X:node. a(X) <-> base(X)")),
        Assume(fml("forall X:node. in_ring(X) <-> base(X)")),
        Assume(
            fml(
                "forall X, Y. s(X, Y) ->"
                " base(X) & base(Y) & (forall Z. base(Z) -> ~btw(X, Z, Y))"
            )
        ),
        Assume(fml("forall X, Y, Z. s(X, Y) & s(X, Z) -> Y = Z")),
        Assume(fml("forall X, Z. s(X, X) & base(Z) -> Z = X")),
        Assume(fml("forall X, Y. p(X, Y) -> s(Y, X)")),
    )

    safety_formula = fml(
        "forall X, Y, Z. in_ring(X) & s(X, Y) & in_ring(Z) -> ~btw(X, Z, Y)"
    )

    a_rel = vocab.relation("a")
    in_ring = vocab.relation("in_ring")
    s_rel = vocab.relation("s")
    p_rel = vocab.relation("p")

    u_var, v_var = s.Var("U", NODE), s.Var("V", NODE)

    def retarget(owner: str, old: str, new: str) -> UpdateRel:
        """``s[owner] := new`` (single-valued pointer swing)."""
        return UpdateRel(
            s_rel,
            (u_var, v_var),
            fml(
                f"(s(U, V) & ~(U = {owner} & V = {old})) | (U = {owner} & V = {new})",
                free={"U": NODE, "V": NODE},
            ),
        )

    # A node joins pointing at its correct successor: the lookup returns an
    # active y with no active node between x and y (Chord's lookup
    # correctness assumption, as in Zave's model).
    join = seq(
        Havoc(vocab.function("x")),
        Havoc(vocab.function("y")),
        Assume(fml("~a(x) & a(y) & x ~= y")),
        Assume(fml("forall Z. a(Z) -> ~btw(x, Z, y)")),
        UpdateRel(
            s_rel,
            (u_var, v_var),
            fml(
                "(s(U, V) & U ~= x) | (U = x & V = y)",
                free={"U": NODE, "V": NODE},
            ),
        ),
        insert(a_rel, term("x")),
    )

    # An appendage retargets to a strictly closer active node (stabilize).
    stabilize = seq(
        Havoc(vocab.function("x")),
        Havoc(vocab.function("y")),
        Havoc(vocab.function("z")),
        Assume(fml("a(x) & ~in_ring(x) & s(x, y)")),
        Assume(fml("a(z) & btw(x, z, y)")),
        retarget("x", "y", "z"),
    )

    # A ring member w whose successor is y adopts the appendage x sitting
    # between them: w -> x -> y, and x enters the ring (stabilize+rectify
    # completing).  Predecessor pointers are corrected along the way.
    integrate = seq(
        Havoc(vocab.function("x")),
        Havoc(vocab.function("y")),
        Havoc(vocab.function("w")),
        Assume(fml("a(x) & ~in_ring(x) & s(x, y) & in_ring(y)")),
        Assume(fml("in_ring(w) & s(w, y) & btw(w, x, y)")),
        retarget("w", "y", "x"),
        insert(in_ring, term("x")),
        remove(p_rel, term("y"), term("w")),
        insert(p_rel, term("y"), term("x")),
        insert(p_rel, term("x"), term("w")),
    )

    # A singleton ring (s(w, w)) adopts its first appendage directly; the
    # btw-based integrate guard cannot fire with fewer than three distinct
    # positions.
    integrate_solo = seq(
        Havoc(vocab.function("x")),
        Havoc(vocab.function("w")),
        Assume(fml("a(x) & ~in_ring(x) & s(x, w) & in_ring(w) & s(w, w) & x ~= w")),
        retarget("w", "w", "x"),
        insert(in_ring, term("x")),
        insert(p_rel, term("x"), term("w")),
        insert(p_rel, term("w"), term("x")),
    )

    body = seq(
        assert_(safety_formula, label="ring order preserved"),
        choice(
            join,
            stabilize,
            integrate,
            integrate_solo,
            labels=("join", "stabilize", "integrate", "integrate_solo"),
        ),
    )

    program = Program(
        name="chord",
        vocab=vocab,
        axioms=(ring_topology, base_nonempty),
        init=init,
        body=body,
    )

    c0 = Conjecture(
        "C0",
        fml("forall X, Y, Z. ~(in_ring(X) & s(X, Y) & in_ring(Z) & btw(X, Z, Y))"),
    )
    pool = [
        # successor pointers are single valued,
        ("C1", "forall X, Y, Z. ~(s(X, Y) & s(X, Z) & Y ~= Z)"),
        # point between active nodes,
        ("C2", "forall X, Y. ~(s(X, Y) & ~a(X))"),
        ("C3", "forall X, Y. ~(s(X, Y) & ~a(Y))"),
        # ring membership implies activity and the base stays woven in,
        ("C4", "forall X:node. ~(in_ring(X) & ~a(X))"),
        ("C5", "forall X:node. ~(base(X) & ~in_ring(X))"),
        # ring members' successors stay in the ring,
        ("C6", "forall X, Y. ~(in_ring(X) & s(X, Y) & ~in_ring(Y))"),
        # self-loops only at ring members (the singleton-ring case),
        ("C7", "forall X:node. ~(s(X, X) & ~in_ring(X))"),
        # a self-loop means the ring is a singleton,
        ("C8", "forall X, Y. ~(s(X, X) & in_ring(Y) & X ~= Y)"),
    ]
    conjectures = tuple(Conjecture(name, fml(source)) for name, source in pool)

    return ProtocolBundle(
        program=program,
        safety=(c0,),
        invariant=(c0, *conjectures),
        bmc_bound=3,
        notes=(
            "Reduced stable-base Chord: joins, appendage stabilization and "
            "ring integration, no failures.  Safety is the order-theoretic "
            "form of ring connectivity, matching the paper's observation "
            "that a universal invariant replaces Zave's transitive-closure "
            "argument."
        ),
    )
