"""The IronFleet distributed lock protocol (paper Section 5.1).

An unbounded set of nodes passes a single lock around with monotonically
increasing epochs; there is no central server.  A node that holds the lock
grants it by sending a ``transfer`` message carrying a fresh higher epoch;
a node receiving a transfer whose epoch beats its own accepts: it moves to
that epoch, takes the lock, and announces with a ``locked`` message.
Messages can be duplicated and reordered (both message kinds are modeled
as persistent relations -- nothing is ever consumed).

Safety (as in IronFleet): all ``locked`` messages for one epoch come from a
single node.

The model matches the paper's Figure 14 row: 2 sorts (node, epoch) and 5
state symbols (``le``, ``transfer``, ``locked``, ``held``, ``ep``).  The
inductive invariant centers on the *pending transfer* notion -- a transfer
message its destination has not yet accepted (``~le(E, ep(N))``): at any
time there is at most one pending transfer, it dominates every node epoch,
and it excludes any current holder.
"""

from __future__ import annotations

from ..core.induction import Conjecture
from ..logic import syntax as s
from ..logic.parser import parse_formula, parse_term
from ..logic.sorts import FuncDecl, RelDecl, Sort, vocabulary
from ..rml.ast import Assume, Axiom, Havoc, Program, choice, seq
from ..rml.sugar import assert_, assign, insert, remove
from .base import ProtocolBundle

NODE = Sort("node")
EPOCH = Sort("epoch")


def build() -> ProtocolBundle:
    """Build the IronFleet distributed lock model with its pending-transfer invariant."""
    vocab = vocabulary(
        sorts=[NODE, EPOCH],
        relations=[
            RelDecl("le", (EPOCH, EPOCH)),
            RelDecl("transfer", (EPOCH, NODE)),
            RelDecl("locked", (EPOCH, NODE)),
            RelDecl("held", (NODE,)),
        ],
        functions=[
            FuncDecl("ep", (NODE,), EPOCH),
            FuncDecl("n", (), NODE),
            FuncDecl("m", (), NODE),
            FuncDecl("e", (), EPOCH),
        ],
    )

    def fml(source: str) -> s.Formula:
        return parse_formula(source, vocab)

    def term(source: str) -> s.Term:
        return parse_term(source, vocab)

    le_total_order = Axiom(
        "le_total_order",
        fml(
            "(forall X:epoch. le(X, X))"
            " & (forall X, Y, Z:epoch. le(X, Y) & le(Y, Z) -> le(X, Z))"
            " & (forall X, Y:epoch. le(X, Y) & le(Y, X) -> X = Y)"
            " & (forall X, Y:epoch. le(X, Y) | le(Y, X))"
        ),
    )

    # One initial holder whose epoch dominates everyone's; no messages yet.
    init = seq(
        Assume(
            fml(
                "exists F:node. forall X:node, N:node."
                " (held(X) <-> X = F) & le(ep(N), ep(F))"
            )
        ),
        Assume(fml("forall E:epoch, N:node. ~transfer(E, N)")),
        Assume(fml("forall E:epoch, N:node. ~locked(E, N)")),
    )

    safety_formula = fml(
        "forall E, N1, N2. locked(E, N1) & locked(E, N2) -> N1 = N2"
    )

    grant = seq(
        Havoc(vocab.function("n")),
        Havoc(vocab.function("m")),
        Havoc(vocab.function("e")),
        Assume(fml("held(n)")),
        # The fresh epoch strictly beats the holder's (IronFleet's e + 1).
        Assume(fml("~le(e, ep(n))")),
        remove(vocab.relation("held"), term("n")),
        insert(vocab.relation("transfer"), term("e"), term("m")),
    )

    accept = seq(
        Havoc(vocab.function("n")),
        Havoc(vocab.function("e")),
        Assume(fml("transfer(e, n)")),
        Assume(fml("~le(e, ep(n))")),
        assign(vocab.function("ep"), (term("n"),), term("e")),
        insert(vocab.relation("held"), term("n")),
        insert(vocab.relation("locked"), term("e"), term("n")),
    )

    body = seq(
        assert_(safety_formula, label="locked agreement"),
        choice(grant, accept, labels=("grant", "accept")),
    )

    program = Program(
        name="distributed_lock",
        vocab=vocab,
        axioms=(le_total_order,),
        init=init,
        body=body,
    )

    c0 = Conjecture(
        "C0", fml("forall E, N1, N2. ~(locked(E, N1) & locked(E, N2) & N1 ~= N2)")
    )
    pool = [
        # locked messages are echoes of transfers.
        ("C1", "forall E, N. ~(locked(E, N) & ~transfer(E, N))"),
        # an epoch is granted to at most one destination.
        ("C2", "forall E, N1, N2. ~(transfer(E, N1) & transfer(E, N2) & N1 ~= N2)"),
        # a holder dominates every transfer in flight.
        ("C3", "forall E, N, M. ~(held(N) & transfer(E, M) & ~le(E, ep(N)))"),
        # at most one holder.
        ("C4", "forall N1, N2. ~(held(N1) & held(N2) & N1 ~= N2)"),
        # at most one pending (unaccepted) transfer.
        (
            "C5",
            "forall E1, N1, E2, N2."
            " ~(transfer(E1, N1) & ~le(E1, ep(N1))"
            "   & transfer(E2, N2) & ~le(E2, ep(N2)) & E1 ~= E2)",
        ),
        # a pending transfer dominates every node's epoch.
        (
            "C6",
            "forall E, N, M."
            " ~(transfer(E, N) & ~le(E, ep(N)) & ~le(ep(M), E))",
        ),
        # a holder's epoch dominates every node's epoch.
        ("C7", "forall N, M. ~(held(N) & ~le(ep(M), ep(N)))"),
        # no pending transfer coexists with a holder.
        (
            "C8",
            "forall E, N, M. ~(transfer(E, N) & ~le(E, ep(N)) & held(M))",
        ),
    ]
    conjectures = tuple(Conjecture(name, fml(source)) for name, source in pool)

    return ProtocolBundle(
        program=program,
        safety=(c0,),
        invariant=(c0, *conjectures),
        bmc_bound=3,
        notes=(
            "IronFleet's toy distributed lock; epochs only grow, and the "
            "single 'lock token' is either a unique holder with maximal "
            "epoch or a unique pending transfer dominating all epochs."
        ),
    )
