"""The learning switch (paper Section 5.1).

Switches learn routes from the packets they see: on receiving a packet, a
switch records that the packet's *source* address is reachable through the
port it arrived on, then forwards toward the destination if it has an entry
for it, and floods otherwise.  The safety property is that no switch's
learning step ever closes a forwarding loop.

Following the paper's modeling:

* the network is a symmetric ``link`` relation over switches;
* ``pending(p, x, y)`` -- packet ``p`` is in flight on the ``x``-``y`` link;
* per-address forwarding edges ``route(a, x, y)`` with their reflexive
  transitive closure ``rstar(a, x, y)`` maintained by the standard
  one-edge-insertion update (the ``route*`` ghost of the paper);
* ``learned(a, x)`` -- switch ``x`` has a table entry for address ``a``
  (initially only ``learned(a, a)``: an address knows itself).

The safety assertion checks that ``rstar`` stays antisymmetric -- i.e. the
forwarding graph of every address remains loop-free.

The invariant: ``rstar`` is a reflexive transitive order whose paths all
lead to the owning address through learned switches, and every pending
packet's current position can already route back to the packet's source.
"""

from __future__ import annotations

from ..core.induction import Conjecture
from ..logic import syntax as s
from ..logic.parser import parse_formula, parse_term
from ..logic.sorts import FuncDecl, RelDecl, Sort, vocabulary
from ..rml.ast import Assume, Axiom, Havoc, Program, Skip, UpdateRel, choice, seq
from ..rml.sugar import assert_, if_, insert
from .base import ProtocolBundle

NODE = Sort("node")
PACKET = Sort("packet")


def build() -> ProtocolBundle:
    """Build the learning switch model with its route*-order invariant."""
    vocab = vocabulary(
        sorts=[NODE, PACKET],
        relations=[
            RelDecl("link", (NODE, NODE)),
            RelDecl("pending", (PACKET, NODE, NODE)),
            RelDecl("route", (NODE, NODE, NODE)),  # route(addr, from, to)
            RelDecl("rstar", (NODE, NODE, NODE)),  # reflexive TC per addr
            RelDecl("learned", (NODE, NODE)),  # learned(addr, switch)
        ],
        functions=[
            FuncDecl("psrc", (PACKET,), NODE),
            FuncDecl("pdst", (PACKET,), NODE),
            FuncDecl("p", (), PACKET),
            FuncDecl("sw", (), NODE),  # switch processing the packet
            FuncDecl("swp", (), NODE),  # switch the packet arrived from
            FuncDecl("nxt", (), NODE),  # chosen next hop when forwarding
        ],
    )

    def fml(source: str, free=None) -> s.Formula:
        return parse_formula(source, vocab, free=free)

    def term(source: str) -> s.Term:
        return parse_term(source, vocab)

    link_sym = Axiom(
        "link_sym",
        fml("(forall X, Y:node. link(X, Y) -> link(Y, X)) & (forall X:node. ~link(X, X))"),
    )

    init = seq(
        Assume(fml("forall P:packet, X:node, Y:node. ~pending(P, X, Y)")),
        Assume(fml("forall A, X, Y:node. ~route(A, X, Y)")),
        Assume(fml("forall A, X, Y:node. rstar(A, X, Y) <-> X = Y")),
        Assume(fml("forall A:node, X:node. learned(A, X) <-> A = X")),
    )

    safety_formula = fml(
        "forall A, X, Y. rstar(A, X, Y) & rstar(A, Y, X) -> X = Y"
    )

    pending = vocab.relation("pending")
    route = vocab.relation("route")
    rstar = vocab.relation("rstar")
    learned = vocab.relation("learned")

    a_of_p = "psrc(p)"  # the address being learned is the packet's source

    new_packet = seq(
        Havoc(vocab.function("p")),
        # The packet enters the network at its source's switch.
        insert(pending, term("p"), term("psrc(p)"), term("psrc(p)")),
    )

    # Learning: add route edge sw -> swp for address psrc(p), update the
    # closure with the standard single-edge insertion, and record learning.
    vx = s.Var("VA", NODE)
    vy = s.Var("VX", NODE)
    vz = s.Var("VY", NODE)
    learn_route = seq(
        insert(route, term(a_of_p), term("sw"), term("swp")),
        UpdateRel(
            rstar,
            (vx, vy, vz),
            fml(
                "rstar(VA, VX, VY)"
                " | (VA = psrc(p) & rstar(VA, VX, sw) & rstar(VA, swp, VY))",
                free={"VA": NODE, "VX": NODE, "VY": NODE},
            ),
        ),
        insert(learned, term(a_of_p), term("sw")),
    )

    forward = if_(
        fml("pdst(p) = sw"),
        # Delivered: the packet reached its destination's switch.
        Skip(),
        if_(
            fml("learned(pdst(p), sw)"),
        # Forward along the (unique) table entry toward the destination.
        seq(
            Havoc(vocab.function("nxt")),
            Assume(fml("route(pdst(p), sw, nxt)")),
            insert(pending, term("p"), term("sw"), term("nxt")),
        ),
        # Flood on every link except the one the packet arrived on.
        UpdateRel(
            pending,
            (s.Var("VP", PACKET), s.Var("VX", NODE), s.Var("VY", NODE)),
            fml(
                "pending(VP, VX, VY)"
                " | (VP = p & VX = sw & link(sw, VY) & VY ~= swp)",
                free={"VP": PACKET, "VX": NODE, "VY": NODE},
            ),
            ),
        ),
    )

    receive = seq(
        Havoc(vocab.function("p")),
        Havoc(vocab.function("sw")),
        Havoc(vocab.function("swp")),
        Assume(fml("pending(p, swp, sw)")),
        # Learning a new source route must not close a forwarding loop.
        assert_(
            fml("~(rstar(psrc(p), swp, sw) & sw ~= swp & ~learned(psrc(p), sw))"),
            label="no forwarding loop",
        ),
        if_(
            fml("~learned(psrc(p), sw)"),
            learn_route,
        ),
        forward,
    )

    body = seq(
        assert_(safety_formula, label="route* antisymmetric"),
        choice(new_packet, receive, labels=("new_packet", "receive")),
    )

    program = Program(
        name="learning_switch",
        vocab=vocab,
        axioms=(link_sym,),
        init=init,
        body=body,
    )

    c0 = Conjecture(
        "C0", fml("forall A, X, Y. ~(rstar(A, X, Y) & rstar(A, Y, X) & X ~= Y)")
    )
    pool = [
        ("C1", "forall A, X, Y, Z. ~(rstar(A, X, Y) & rstar(A, Y, Z) & ~rstar(A, X, Z))"),
        ("C2", "forall A, X:node. rstar(A, X, X)"),
        ("C3", "forall A, X, Y. ~(rstar(A, X, Y) & X ~= Y & ~rstar(A, Y, A))"),
        ("C4", "forall A, X, Y. ~(rstar(A, X, Y) & X ~= Y & ~learned(A, X))"),
        ("C5", "forall P:packet, X:node, Y:node."
               " ~(pending(P, X, Y) & ~rstar(psrc(P), X, psrc(P)))"),
        ("C6", "forall A, X:node. ~(learned(A, X) & ~rstar(A, X, A))"),
        ("C7", "forall A, X, Y. ~(route(A, X, Y) & ~rstar(A, X, Y))"),
        ("C8", "forall A:node. learned(A, A)"),
    ]
    conjectures = tuple(Conjecture(name, fml(source)) for name, source in pool)

    return ProtocolBundle(
        program=program,
        safety=(c0,),
        invariant=(c0, *conjectures),
        bmc_bound=3,
        notes=(
            "Learning switch with per-address forwarding graphs and a "
            "transitive-closure ghost maintained by the standard "
            "edge-insertion update; safety is loop freedom of route*."
        ),
    )
