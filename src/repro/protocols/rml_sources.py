"""RML concrete-syntax sources for selected protocols.

The programmatic builders in this package are the primary models; these
text models exercise the full front end (:mod:`repro.rml.parser`) on the
same protocols and are kept verification-equivalent by the test suite
(``tests/protocols/test_rml_sources.py``).  They are also what
``python -m repro verify`` consumes.
"""

LOCK_SERVER = """
program lock_server

sort client

relation lock_msg : client
relation grant_msg : client
relation unlock_msg : client
relation holds : client
relation server_free

variable c : client

init {
    assume forall X:client. ~lock_msg(X);
    assume forall X:client. ~grant_msg(X);
    assume forall X:client. ~unlock_msg(X);
    assume forall X:client. ~holds(X);
    assume server_free;
}

safety mutual_exclusion: forall C1, C2. holds(C1) & holds(C2) -> C1 = C2

action send_request {
    havoc c;
    insert lock_msg(c);
}

action recv_request {
    havoc c;
    assume lock_msg(c);
    assume server_free;
    remove lock_msg(c);
    update server_free() := false;
    insert grant_msg(c);
}

action recv_grant {
    havoc c;
    assume grant_msg(c);
    remove grant_msg(c);
    insert holds(c);
}

action send_unlock {
    havoc c;
    assume holds(c);
    remove holds(c);
    insert unlock_msg(c);
}

action recv_unlock {
    havoc c;
    assume unlock_msg(c);
    remove unlock_msg(c);
    update server_free() := true;
}
"""

LOCK_SERVER_INVARIANT = [
    ("C0", "forall C1, C2. ~(holds(C1) & holds(C2) & C1 ~= C2)"),
    ("C1", "forall C1, C2. ~(grant_msg(C1) & grant_msg(C2) & C1 ~= C2)"),
    ("C2", "forall C1, C2. ~(unlock_msg(C1) & unlock_msg(C2) & C1 ~= C2)"),
    ("C3", "forall C1, C2. ~(grant_msg(C1) & holds(C2))"),
    ("C4", "forall C1, C2. ~(grant_msg(C1) & unlock_msg(C2))"),
    ("C5", "forall C1, C2. ~(holds(C1) & unlock_msg(C2))"),
    ("C6", "forall C1:client. ~(grant_msg(C1) & server_free)"),
    ("C7", "forall C1:client. ~(holds(C1) & server_free)"),
    ("C8", "forall C1:client. ~(unlock_msg(C1) & server_free)"),
]

DISTRIBUTED_LOCK = """
program distributed_lock

sort node
sort epoch

relation le : epoch, epoch
relation transfer : epoch, node
relation locked : epoch, node
relation held : node

function ep : node -> epoch

variable n : node
variable m : node
variable e : epoch

axiom le_total_order:
    (forall X:epoch. le(X, X))
    & (forall X, Y, Z:epoch. le(X, Y) & le(Y, Z) -> le(X, Z))
    & (forall X, Y:epoch. le(X, Y) & le(Y, X) -> X = Y)
    & (forall X, Y:epoch. le(X, Y) | le(Y, X))

init {
    assume exists F:node. forall X:node, N:node.
        (held(X) <-> X = F) & le(ep(N), ep(F));
    assume forall E:epoch, N:node. ~transfer(E, N);
    assume forall E:epoch, N:node. ~locked(E, N);
}

safety locked_agreement:
    forall E, N1, N2. locked(E, N1) & locked(E, N2) -> N1 = N2

action grant {
    havoc n;
    havoc m;
    havoc e;
    assume held(n);
    assume ~le(e, ep(n));
    remove held(n);
    insert transfer(e, m);
}

action accept {
    havoc n;
    havoc e;
    assume transfer(e, n);
    assume ~le(e, ep(n));
    ep(n) := e;
    insert held(n);
    insert locked(e, n);
}
"""

DISTRIBUTED_LOCK_INVARIANT = [
    ("C0", "forall E, N1, N2. ~(locked(E, N1) & locked(E, N2) & N1 ~= N2)"),
    ("C1", "forall E, N. ~(locked(E, N) & ~transfer(E, N))"),
    ("C2", "forall E, N1, N2. ~(transfer(E, N1) & transfer(E, N2) & N1 ~= N2)"),
    ("C3", "forall E, N, M. ~(held(N) & transfer(E, M) & ~le(E, ep(N)))"),
    ("C4", "forall N1, N2. ~(held(N1) & held(N2) & N1 ~= N2)"),
    (
        "C5",
        "forall E1, N1, E2, N2."
        " ~(transfer(E1, N1) & ~le(E1, ep(N1))"
        "   & transfer(E2, N2) & ~le(E2, ep(N2)) & E1 ~= E2)",
    ),
    ("C6", "forall E, N, M. ~(transfer(E, N) & ~le(E, ep(N)) & ~le(ep(M), E))"),
    ("C7", "forall N, M. ~(held(N) & ~le(ep(M), ep(N)))"),
    ("C8", "forall E, N, M. ~(transfer(E, N) & ~le(E, ep(N)) & held(M))"),
]
