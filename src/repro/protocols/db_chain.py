"""Database chain-transaction consistency (paper Section 5.1).

A sharded database: every key lives on one node, and a transaction is a
chain of single-node subtransactions (*ops*) executed in node order.  Nodes
process subtransactions serially in transaction-timestamp order; an op
reads the latest executed write of its key; a transaction commits once all
its ops executed, and may abort only before any op executed (chain
protocols decide aborts at the first link, which is also why nobody can
have observed an aborted transaction's writes).

Safety, following the paper's assertions:

* (a) a read observes the *last* writer: no third transaction's write to
  the same key falls strictly between the observed writer and the reader
  in timestamp order;
* (b) uncommitted values are not read: observed writers are never aborted;
* commit and abort are mutually exclusive (atomicity).

Modeling note (see EXPERIMENTS.md): reads record the *op* that observed a
writer (relation ``obs(op, tx)``) rather than a bare (tx, key, tx') triple.
The op is the universally quantifiable witness that its transaction really
executed on the key's node -- with bare triples the paper's assertions are
not invariant under any purely universal strengthening (the witness-less
substructure admits an abort).  The paper reports the same kind of
EPR-driven over-approximation for this protocol.
"""

from __future__ import annotations

from ..core.induction import Conjecture
from ..logic import syntax as s
from ..logic.parser import parse_formula, parse_term
from ..logic.sorts import FuncDecl, RelDecl, Sort, vocabulary
from ..rml.ast import Assume, Axiom, Havoc, Program, choice, seq
from ..rml.sugar import assert_, insert
from .base import ProtocolBundle

TX = Sort("tx")
KEY = Sort("key")
NODE = Sort("node")
OP = Sort("op")


def build() -> ProtocolBundle:
    """Build the chain-transaction model with its per-op observation invariant."""
    vocab = vocabulary(
        sorts=[TX, KEY, NODE, OP],
        relations=[
            RelDecl("tle", (TX, TX)),  # transaction timestamp order (rigid)
            RelDecl("nle", (NODE, NODE)),  # chain order over nodes (rigid)
            RelDecl("is_write", (OP,)),  # rigid op kind
            RelDecl("executed", (OP,)),  # precommitted subtransactions
            RelDecl("committed", (TX,)),
            RelDecl("aborted", (TX,)),
            RelDecl("obs", (OP, TX)),  # read op observed this writer
        ],
        functions=[
            FuncDecl("op_tx", (OP,), TX),
            FuncDecl("op_key", (OP,), KEY),
            FuncDecl("kn", (KEY,), NODE),  # key placement
            FuncDecl("o", (), OP),
            FuncDecl("ow", (), OP),  # observed write op
            FuncDecl("t", (), TX),
        ],
    )

    def fml(source: str, free=None) -> s.Formula:
        return parse_formula(source, vocab, free=free)

    def term(source: str) -> s.Term:
        return parse_term(source, vocab)

    def total_order(rel: str, sort: str) -> str:
        return (
            f"(forall X:{sort}. {rel}(X, X))"
            f" & (forall X, Y, Z:{sort}. {rel}(X, Y) & {rel}(Y, Z) -> {rel}(X, Z))"
            f" & (forall X, Y:{sort}. {rel}(X, Y) & {rel}(Y, X) -> X = Y)"
            f" & (forall X, Y:{sort}. {rel}(X, Y) | {rel}(Y, X))"
        )

    axioms = (
        Axiom("tle_total_order", fml(total_order("tle", "tx"))),
        Axiom("nle_total_order", fml(total_order("nle", "node"))),
    )

    init = seq(
        Assume(fml("forall O:op. ~executed(O)")),
        Assume(fml("forall T:tx. ~committed(T) & ~aborted(T)")),
        Assume(fml("forall O:op, T:tx. ~obs(O, T)")),
    )

    # Scheduling guards shared by both execution actions.
    chain_guard = fml(
        "forall O. op_tx(O) = op_tx(o) & O ~= o"
        " & nle(kn(op_key(O)), kn(op_key(o))) & kn(op_key(O)) ~= kn(op_key(o))"
        " -> executed(O)"
    )
    serial_forward = fml(
        "forall O. kn(op_key(O)) = kn(op_key(o))"
        " & tle(op_tx(O), op_tx(o)) & op_tx(O) ~= op_tx(o) -> executed(O)"
    )
    serial_reverse = fml(
        "forall O. kn(op_key(O)) = kn(op_key(o))"
        " & tle(op_tx(o), op_tx(O)) & op_tx(O) ~= op_tx(o) -> ~executed(O)"
    )

    executed = vocab.relation("executed")
    committed = vocab.relation("committed")
    aborted = vocab.relation("aborted")
    obs = vocab.relation("obs")

    common_guards = seq(
        Assume(fml("~executed(o)")),
        Assume(fml("~aborted(op_tx(o))")),
        Assume(fml("~committed(op_tx(o))")),
        Assume(chain_guard),
        Assume(serial_forward),
        Assume(serial_reverse),
    )

    exec_write = seq(
        Havoc(vocab.function("o")),
        Assume(fml("is_write(o)")),
        common_guards,
        insert(executed, term("o")),
    )

    exec_read = seq(
        Havoc(vocab.function("o")),
        Havoc(vocab.function("ow")),
        Assume(fml("~is_write(o)")),
        common_guards,
        # Observe the latest executed write of this key.
        Assume(fml("is_write(ow) & executed(ow) & op_key(ow) = op_key(o)")),
        Assume(
            fml(
                "forall O. is_write(O) & executed(O) & op_key(O) = op_key(o)"
                " -> tle(op_tx(O), op_tx(ow))"
            )
        ),
        insert(executed, term("o")),
        insert(obs, term("o"), term("op_tx(ow)")),
    )

    commit = seq(
        Havoc(vocab.function("t")),
        Assume(fml("~aborted(t)")),
        Assume(fml("forall O:op. op_tx(O) = t -> executed(O)")),
        insert(committed, term("t")),
    )

    abort = seq(
        Havoc(vocab.function("t")),
        Assume(fml("~committed(t)")),
        # Chain transactions decide aborts at the first subtransaction:
        # nothing executed yet, hence nobody can have observed this tx.
        Assume(fml("forall O:op. op_tx(O) = t -> ~executed(O)")),
        Assume(fml("forall O:op. ~obs(O, t)")),
        insert(aborted, term("t")),
    )

    # The paper's assertions (a), (b) plus atomicity.
    dirty_read = fml("forall O:op, T:tx. obs(O, T) -> ~aborted(T)")
    last_writer = fml(
        "forall O, O2, T1."
        " obs(O, T1) & executed(O2) & is_write(O2) & op_key(O2) = op_key(O)"
        " & op_tx(O2) ~= T1 & op_tx(O2) ~= op_tx(O)"
        " & tle(T1, op_tx(O2)) -> ~tle(op_tx(O2), op_tx(O))"
    )
    atomic = fml("forall T:tx. ~(committed(T) & aborted(T))")

    body = seq(
        assert_(dirty_read, label="no dirty reads"),
        assert_(last_writer, label="reads see the last writer"),
        assert_(atomic, label="commit/abort exclusive"),
        choice(
            exec_write,
            exec_read,
            commit,
            abort,
            labels=("exec_write", "exec_read", "commit", "abort"),
        ),
    )

    program = Program(
        name="db_chain",
        vocab=vocab,
        axioms=axioms,
        init=init,
        body=body,
    )

    c0 = Conjecture("C0", fml("forall O:op, T:tx. ~(obs(O, T) & aborted(T))"))
    c1 = Conjecture(
        "C1",
        fml(
            "forall O, O2, T1."
            " ~(obs(O, T1) & executed(O2) & is_write(O2)"
            "   & op_key(O2) = op_key(O) & op_tx(O2) ~= T1"
            "   & op_tx(O2) ~= op_tx(O) & tle(T1, op_tx(O2))"
            "   & tle(op_tx(O2), op_tx(O)))"
        ),
    )
    c2 = Conjecture("C2", fml("forall T:tx. ~(committed(T) & aborted(T))"))
    pool = [
        # A recorded observation's reader really executed.
        ("C3", "forall O:op, T:tx. ~(obs(O, T) & ~executed(O))"),
        # Observations point at genuine executed writes... tied through the
        # reader's node by the serial guards; recorded for the session.
        ("C4", "forall O:op, T:tx. ~(obs(O, T) & is_write(O))"),
        ("C5", "forall O:op, T:tx. ~(obs(O, T) & ~tle(T, op_tx(O)))"),
        # Aborted transactions never executed anything (first-link aborts).
        ("C6", "forall O:op. ~(aborted(op_tx(O)) & executed(O))"),
    ]
    conjectures = tuple(Conjecture(name, fml(source)) for name, source in pool)

    return ProtocolBundle(
        program=program,
        safety=(c0, c1, c2),
        invariant=(c0, c1, c2, *conjectures),
        bmc_bound=3,
        notes=(
            "Chain transactions over a sharded store; nodes execute "
            "subtransactions serially in timestamp order and aborts happen "
            "only at the first link, which yields the paper's assertions "
            "(a) and (b)."
        ),
    )
