"""The Verdi lock server (paper Section 5.1).

An unbounded set of clients and a single server.  Clients send lock
requests; the server grants the lock when it is free; a client that holds
the lock may send an unlock message, returning the lock to the server.
Messages can be reordered (each kind is modeled as a set of in-flight
messages per client) but not duplicated.  Safety: no two clients
simultaneously think they hold the lock.

Modeling note (recorded in EXPERIMENTS.md): RML conjectures are universal,
so the server's wait-list cannot appear in the invariant through its
"head" (a minimality property needs a quantifier alternation).  We model
the safety-relevant token state explicitly -- a nullary ``server_free``
relation the protocol maintains -- which is the same formulation this
protocol has in later EPR-verification work descended from the paper.  The
wait-list only affects fairness, not safety.

The inductive invariant is the classic 9-conjecture mutual-exclusion
lattice over {grant in flight, held, unlock in flight, server free}; its
literal count (21) matches the paper's Figure 14 row.
"""

from __future__ import annotations

from ..core.induction import Conjecture
from ..logic import syntax as s
from ..logic.parser import parse_formula
from ..logic.sorts import FuncDecl, RelDecl, Sort, vocabulary
from ..rml.ast import Assume, Axiom, Havoc, Program, choice, seq
from ..rml.sugar import assert_, insert, remove
from .base import ProtocolBundle

CLIENT = Sort("client")


def build() -> ProtocolBundle:
    """Build the Verdi lock server model with its exclusion-lattice invariant."""
    vocab = vocabulary(
        sorts=[CLIENT],
        relations=[
            RelDecl("lock_msg", (CLIENT,)),  # request in flight
            RelDecl("grant_msg", (CLIENT,)),  # grant in flight
            RelDecl("unlock_msg", (CLIENT,)),  # unlock in flight
            RelDecl("holds", (CLIENT,)),  # client thinks it holds the lock
            RelDecl("server_free", ()),  # the server has the lock
        ],
        functions=[FuncDecl("c", (), CLIENT)],
    )

    def fml(source: str) -> s.Formula:
        return parse_formula(source, vocab)

    def term(source: str):
        from ..logic.parser import parse_term

        return parse_term(source, vocab)

    c = vocab.function("c")
    lock_msg = vocab.relation("lock_msg")
    grant_msg = vocab.relation("grant_msg")
    unlock_msg = vocab.relation("unlock_msg")
    holds = vocab.relation("holds")
    server_free = vocab.relation("server_free")

    init = seq(
        Assume(fml("forall X:client. ~lock_msg(X)")),
        Assume(fml("forall X:client. ~grant_msg(X)")),
        Assume(fml("forall X:client. ~unlock_msg(X)")),
        Assume(fml("forall X:client. ~holds(X)")),
        Assume(fml("server_free")),
    )

    safety_formula = fml("forall C1, C2. holds(C1) & holds(C2) -> C1 = C2")

    send_request = seq(
        Havoc(c),
        insert(lock_msg, term("c")),
    )
    recv_request = seq(
        Havoc(c),
        Assume(fml("lock_msg(c)")),
        Assume(fml("server_free")),
        remove(lock_msg, term("c")),
        _clear_server_free(server_free),
        insert(grant_msg, term("c")),
    )
    recv_grant = seq(
        Havoc(c),
        Assume(fml("grant_msg(c)")),
        remove(grant_msg, term("c")),
        insert(holds, term("c")),
    )
    send_unlock = seq(
        Havoc(c),
        Assume(fml("holds(c)")),
        remove(holds, term("c")),
        insert(unlock_msg, term("c")),
    )
    recv_unlock = seq(
        Havoc(c),
        Assume(fml("unlock_msg(c)")),
        remove(unlock_msg, term("c")),
        _set_server_free(server_free),
    )

    body = seq(
        assert_(safety_formula, label="mutual exclusion"),
        choice(
            send_request,
            recv_request,
            recv_grant,
            send_unlock,
            recv_unlock,
            labels=(
                "send_request",
                "recv_request",
                "recv_grant",
                "send_unlock",
                "recv_unlock",
            ),
        ),
    )

    program = Program(
        name="lock_server",
        vocab=vocab,
        axioms=(),
        init=init,
        body=body,
    )

    c0 = Conjecture("C0", fml("forall C1, C2. ~(holds(C1) & holds(C2) & C1 ~= C2)"))
    pool = [
        ("C1", "forall C1, C2. ~(grant_msg(C1) & grant_msg(C2) & C1 ~= C2)"),
        ("C2", "forall C1, C2. ~(unlock_msg(C1) & unlock_msg(C2) & C1 ~= C2)"),
        ("C3", "forall C1, C2. ~(grant_msg(C1) & holds(C2))"),
        ("C4", "forall C1, C2. ~(grant_msg(C1) & unlock_msg(C2))"),
        ("C5", "forall C1, C2. ~(holds(C1) & unlock_msg(C2))"),
        ("C6", "forall C1. ~(grant_msg(C1) & server_free)"),
        ("C7", "forall C1. ~(holds(C1) & server_free)"),
        ("C8", "forall C1. ~(unlock_msg(C1) & server_free)"),
    ]
    conjectures = tuple(Conjecture(name, fml(source)) for name, source in pool)

    return ProtocolBundle(
        program=program,
        safety=(c0,),
        invariant=(c0, *conjectures),
        bmc_bound=4,
        notes=(
            "Verdi lock server; the single lock token moves "
            "server -> grant_msg -> holds -> unlock_msg -> server.  The "
            "invariant is the pairwise-exclusion lattice over the token's "
            "four locations (21 literals, matching Figure 14's I column)."
        ),
    )


def _clear_server_free(server_free: RelDecl):
    from ..rml.ast import UpdateRel

    return UpdateRel(server_free, (), s.FALSE)


def _set_server_free(server_free: RelDecl):
    from ..rml.ast import UpdateRel

    return UpdateRel(server_free, (), s.TRUE)
