"""Leader election in a ring (paper Figures 1, 2 and 6; Chang-Roberts).

An unbounded unidirectional ring of nodes with unique, totally ordered IDs.
Every node may send its own ID to its successor; a node receiving an ID
higher than its own forwards it; a node receiving its *own* ID declares
itself leader.  Safety: at most one leader.

The model matches Figure 1:

* sorts ``node`` and ``id`` with the stratified function ``idn : node -> id``
  (the paper calls it ``id``; renamed to keep formulas readable);
* ``le`` a total order on IDs (axiom ``le_total_order``);
* ``btw`` the ring's ternary betweenness relation (axiom ``ring_topology``),
  with successor-ship derived: ``next(a, b) := forall X. X ~= a & X ~= b ->
  btw(a, b, X)`` (Figure 2);
* ``unique_ids`` makes ``idn`` injective -- omitting it reproduces the
  Figure 4 bug (see :meth:`repro.rml.ast.Program.without_axiom`);
* the body asserts the safety property, then chooses ``send`` or
  ``receive``.

The inductive invariant is Figure 6's ``C0 & C1 & C2 & C3``.
"""

from __future__ import annotations

from ..core.induction import Conjecture
from ..logic.parser import parse_formula
from ..logic.sorts import FuncDecl, RelDecl, Sort, vocabulary
from ..rml.ast import Assume, Axiom, Havoc, Program, choice, seq
from ..rml.sugar import assert_, if_, insert
from ..logic import syntax as s
from .base import ProtocolBundle

NODE = Sort("node")
ID = Sort("id")


def build() -> ProtocolBundle:
    """Build the Figure 1 leader election model with its Figure 6 invariant."""
    vocab = vocabulary(
        sorts=[NODE, ID],
        relations=[
            RelDecl("le", (ID, ID)),
            RelDecl("btw", (NODE, NODE, NODE)),
            RelDecl("leader", (NODE,)),
            RelDecl("pnd", (ID, NODE)),
        ],
        functions=[
            FuncDecl("idn", (NODE,), ID),
            FuncDecl("n", (), NODE),
            FuncDecl("m", (), NODE),
            FuncDecl("i", (), ID),
        ],
    )

    def fml(source: str) -> s.Formula:
        return parse_formula(source, vocab)

    unique_ids = Axiom(
        "unique_ids", fml("forall N1, N2. N1 ~= N2 -> idn(N1) ~= idn(N2)")
    )
    le_total_order = Axiom(
        "le_total_order",
        fml(
            "(forall X:id. le(X, X))"
            " & (forall X, Y, Z:id. le(X, Y) & le(Y, Z) -> le(X, Z))"
            " & (forall X, Y:id. le(X, Y) & le(Y, X) -> X = Y)"
            " & (forall X, Y:id. le(X, Y) | le(Y, X))"
        ),
    )
    ring_topology = Axiom(
        "ring_topology",
        fml(
            "(forall X, Y, Z. btw(X, Y, Z) -> btw(Y, Z, X))"
            " & (forall W, X, Y, Z. btw(W, X, Y) & btw(W, Y, Z) -> btw(W, X, Z))"
            " & (forall W, X, Y. btw(W, X, Y) -> ~btw(W, Y, X))"
            " & (forall W:node, X:node, Y:node."
            "    W ~= X & X ~= Y & W ~= Y -> btw(W, X, Y) | btw(W, Y, X))"
        ),
    )

    # next(n, m): m is the immediate ring successor of n (Figure 2).
    next_nm = fml("forall X. X ~= n & X ~= m -> btw(n, m, X)")

    init = seq(
        Assume(fml("forall X:node. ~leader(X)")),
        Assume(fml("forall X:id, Y:node. ~pnd(X, Y)")),
    )

    safety_formula = fml("forall N1, N2. leader(N1) & leader(N2) -> N1 = N2")

    send = seq(
        Havoc(vocab.function("n")),
        Havoc(vocab.function("m")),
        Assume(next_nm),
        # Send our own ID to the successor.
        insert(vocab.relation("pnd"), fml_term(vocab, "idn(n)"), fml_term(vocab, "m")),
    )

    receive = seq(
        Havoc(vocab.function("n")),
        Havoc(vocab.function("m")),
        Havoc(vocab.function("i")),
        Assume(fml("pnd(i, n)")),
        Assume(next_nm),
        if_(
            fml("i = idn(n)"),
            # Our own ID came back around: declare leadership.
            insert(vocab.relation("leader"), fml_term(vocab, "n")),
            if_(
                fml("le(idn(n), i)"),
                # Forward IDs above our own.
                insert(vocab.relation("pnd"), fml_term(vocab, "i"), fml_term(vocab, "m")),
            ),
        ),
    )

    body = seq(
        assert_(safety_formula, label="single leader"),
        choice(send, receive, labels=("send", "receive")),
    )

    program = Program(
        name="leader_election",
        vocab=vocab,
        axioms=(unique_ids, le_total_order, ring_topology),
        init=init,
        body=body,
    )

    c0 = Conjecture("C0", fml("forall N1, N2. ~(leader(N1) & leader(N2) & N1 ~= N2)"))
    c1 = Conjecture(
        "C1", fml("forall N1, N2. ~(N1 ~= N2 & leader(N1) & le(idn(N1), idn(N2)))")
    )
    c2 = Conjecture(
        "C2", fml("forall N1, N2. ~(N1 ~= N2 & pnd(idn(N1), N1) & le(idn(N1), idn(N2)))")
    )
    c3 = Conjecture(
        "C3",
        fml(
            "forall N1, N2, N3."
            " ~(btw(N1, N2, N3) & pnd(idn(N2), N1) & le(idn(N2), idn(N3)))"
        ),
    )

    return ProtocolBundle(
        program=program,
        safety=(c0,),
        invariant=(c0, c1, c2, c3),
        bmc_bound=3,
        notes=(
            "Figure 1 model; the paper's interactive session finds C1-C3 in "
            "three CTI/generalization iterations (G = 3 in Figure 14)."
        ),
    )


def fml_term(vocab, source: str):
    from ..logic.parser import parse_term

    return parse_term(source, vocab)
