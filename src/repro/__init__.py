"""Reproduction of *Ivy: Safety Verification by Interactive Generalization*
(Padon, McMillan, Sagiv, Shoham -- PLDI 2016).

The package is layered exactly as the paper's system decomposes:

* :mod:`repro.logic` -- sorted first-order logic: terms, formulas, finite
  structures, partial structures / diagrams / conjectures (Defs. 1-5),
  normal forms, fragments (Fig. 11), and a concrete-syntax parser;
* :mod:`repro.solver` -- the decision procedures replacing Z3: a CDCL SAT
  solver and an EPR (Bernays-Schoenfinkel-Ramsey + stratified functions)
  front end with finite-model extraction and unsat cores (Thm. 3.3);
* :mod:`repro.rml` -- the relational modeling language (Figs. 10-12),
  weakest preconditions (Fig. 13), a concrete interpreter, and the
  transition-relation encoder behind bounded verification;
* :mod:`repro.core` -- the methodology: k-invariance (Eq. 3),
  inductiveness and CTIs (Eq. 2), minimal CTIs (Algorithm 1),
  interactive generalization with BMC + Auto Generalize (Sec. 4.5),
  the session loop (Fig. 5), and Houdini/template baselines (Sec. 5.1);
* :mod:`repro.protocols` -- the six evaluated protocols (Fig. 14);
* :mod:`repro.viz` -- textual and Graphviz renderings of states,
  conjectures and traces.

Quickstart::

    from repro.protocols import leader_election
    from repro.core import Session, OraclePolicy

    bundle = leader_election.build()
    session = Session(bundle.program, initial=bundle.safety)
    outcome = session.run(OraclePolicy(bundle.invariant))
    assert outcome.success
"""

__version__ = "1.0.0"

__all__ = ["logic", "solver", "rml", "core", "protocols", "viz"]
