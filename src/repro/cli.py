"""Command-line interface: ``python -m repro <command> ...``.

Subcommands mirror the paper's workflow:

* ``list`` -- the available protocol models;
* ``bmc <protocol> [-k N] [--drop-axiom NAME]`` -- bounded debugging
  (Section 4.1): search for an assertion violation within N iterations and
  print the counterexample trace, Figure 4 style;
* ``check <protocol>`` -- check the published invariant is inductive
  (Eq. 2) and print the conjectures;
* ``session <protocol>`` -- replay the interactive search with the oracle
  policy, printing the transcript and the G count (Figure 14);
* ``table`` -- print the Figure 14 reproduction table;
* ``verify <file.rml>`` -- parse an RML text model, run bounded debugging,
  and check any invariant conjectures passed via ``--conjecture``;
* ``lint [target ...]`` -- static analysis: well-formedness, lint rules,
  and the quantifier-alternation-graph decidability check over every VC;
  targets are protocol names or ``.rml`` files, output is
  ``--format text|json|sarif``;
* ``report <trace.jsonl>`` -- render the per-phase / per-query breakdown
  of a trace produced with ``--trace`` (``--hotspots`` for the
  phase-decomposition profiler view);
* ``watch <run_dir>`` -- live terminal view of a journaled run in
  flight, tailing its journal and trace tee;
* ``bench diff <A> <B>`` -- the noise-aware ``BENCH_*.json`` regression
  gate (see :mod:`repro.obs.benchcmp`).

The solving subcommands run the same analysis as a pre-flight: a program
whose VCs leave the decidable fragment fails fast with exit code 2 and a
compiler-style diagnostic, before any solver query (disable with
``--no-preflight``).

Every solving subcommand accepts the observability flags ``--trace FILE``
(JSONL span trace), ``--metrics FILE`` (JSON metrics snapshot),
``--metrics-port PORT`` (live Prometheus-style HTTP endpoint while the
run is in flight), and ``--progress`` (live span echo on stderr); see
:mod:`repro.obs`.  Query
caching is controlled with ``--persist-cache`` / ``--cache-dir DIR``
(disk-backed cache shared across runs; see :mod:`repro.solver.cache`) and
``--no-cache``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from . import obs
from .core.bounded import BoundedResult, find_error_trace
from .core.induction import Conjecture, check_inductive
from .core.policy import OraclePolicy
from .core.session import Session
from .logic import parse_formula
from .protocols import ALL_PROTOCOLS
from .recovery import (
    EXIT_RESUMABLE,
    Interrupted,
    Journal,
    active_journal,
    default_run_dir,
    install_handlers,
    load_meta,
    set_active_journal,
    write_meta,
)
from .recovery.journal import JOURNAL_NAME
from .solver.budget import Budget, resolve_budget
from .solver.cache import query_cache
from .solver.stats import SolverStats

#: Exit code for UNKNOWN outcomes (budget exhausted), distinct from
#: 0 = verified and 1 = violation/not-inductive.
EXIT_UNKNOWN = 2


def _stats_of(args: argparse.Namespace) -> SolverStats | None:
    """A SolverStats collector when ``--stats`` was passed, else None."""
    return SolverStats() if getattr(args, "stats", False) else None


def _print_stats(stats: SolverStats | None) -> None:
    if stats is not None:
        stats.note_cache(query_cache())
        print()
        print(stats.format())


def _apply_cache_flags(args: argparse.Namespace) -> None:
    """Translate cache flags into the env vars every layer reads.

    The environment is the channel that reaches forked pool workers and
    nested dispatch sites alike; flags override whatever was exported.
    ``--cache-dir`` implies persistence -- pointing at a store you do not
    want used would be a strange request.
    """
    if getattr(args, "cache_dir", None):
        os.environ["REPRO_CACHE_DIR"] = args.cache_dir
        os.environ.setdefault("REPRO_CACHE_PERSIST", "1")
    if getattr(args, "persist_cache", False):
        os.environ["REPRO_CACHE_PERSIST"] = "1"
    if getattr(args, "no_cache", False):
        os.environ["REPRO_CACHE"] = "0"


def _budget_of(args: argparse.Namespace) -> Budget | None:
    """Build the query budget from CLI flags (which override env vars)."""
    if getattr(args, "retries", None) is not None:
        # solve_queries reads retries through resolve_retries; the env var
        # is the channel that reaches every dispatch site.
        os.environ["REPRO_RETRIES"] = str(args.retries)
    return resolve_budget(
        wall_seconds=getattr(args, "timeout", None),
        conflicts=getattr(args, "conflict_budget", None),
        rss_mb=getattr(args, "memory_mb", None),
    )


def _journal_config(args: argparse.Namespace) -> tuple[str, str] | None:
    """``(run_dir, target)`` when this run journals, else None.

    Factored out of :func:`_open_journal` so :func:`_install_obs` can
    learn the run directory *before* the journal opens -- the trace tee
    (``run_dir/trace.jsonl``, what ``repro watch`` tails) must be
    installed before any spans fire.  Journaling turns on with
    ``--run-dir``, ``--resume``, or ``REPRO_JOURNAL=1``; the run
    directory defaults to the deterministic
    :func:`~repro.recovery.resume.default_run_dir`, so a bare
    ``--resume`` lands on the directory the killed run wrote to.
    """
    if not hasattr(args, "resume"):
        return None
    target = (
        getattr(args, "protocol", None)
        or getattr(args, "target", None)
        or getattr(args, "file", None)
        or ""
    )
    enabled = bool(
        args.run_dir
        or args.resume
        or os.environ.get("REPRO_JOURNAL", "").strip() in ("1", "true", "yes")
    )
    if not enabled:
        return None
    return args.run_dir or default_run_dir(args.command, target), target


def _open_journal(
    args: argparse.Namespace, argv: list[str]
) -> tuple[Journal | None, str | None]:
    """Open this run's write-ahead journal, honoring the recovery flags.

    Returns ``(journal, run_dir)`` -- both None for subcommands without
    recovery options or when journaling is off.  The journal is
    registered as the process-wide active journal (flushed by the signal
    path) and closed by :func:`main`'s teardown.
    """
    config = _journal_config(args)
    if config is None:
        return None, None
    run_dir, target = config
    path = os.path.join(run_dir, JOURNAL_NAME)
    if args.resume and os.path.exists(path):
        journal = Journal.resume(path)
    else:
        journal = Journal.fresh(
            path, {"command": args.command, "target": target}
        )
    write_meta(run_dir, args.command, argv, target)
    set_active_journal(journal)
    return journal, run_dir


def _report_unknown(result: BoundedResult, bound: int) -> None:
    """Print the graceful-degradation summary for an unknown BMC result."""
    verified = result.verified_depth
    if verified is not None and verified >= 0:
        print(f"safe up to depth {verified}", end=", ")
    reasons = ", ".join(
        f"depth {depth} unknown ({reason.value})" for depth, reason in result.failures
    )
    print(f"bound {bound} not fully explored: {reasons}")


def _preflight(
    args: argparse.Namespace,
    program,
    conjectures=(),
    origin: str = "<program>",
    source: str | None = None,
) -> bool:
    """Run the decidability pre-flight; True means solving may proceed.

    On error-severity diagnostics, prints them compiler-style on stderr
    and returns False (callers exit with ``EXIT_UNKNOWN`` -- the program
    was neither verified nor refuted, solving never started).
    """
    if getattr(args, "no_preflight", False):
        return True
    from .analysis import preflight
    from .analysis.diagnostics import Severity, render_text

    diagnostics = preflight.preflight_program(program, conjectures, origin=origin)
    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    for diagnostic in errors:
        print(render_text(diagnostic, source), file=sys.stderr)
    if errors:
        print(
            f"{origin}: {len(errors)} error(s); refusing to start the solver "
            "(use --no-preflight to override)",
            file=sys.stderr,
        )
        return False
    return True


def _bundle(name: str):
    try:
        module = ALL_PROTOCOLS[name]
    except KeyError:
        raise SystemExit(
            f"unknown protocol {name!r}; choose from {', '.join(sorted(ALL_PROTOCOLS))}"
        )
    return module.build()


def cmd_list(_args: argparse.Namespace) -> int:
    for name, module in sorted(ALL_PROTOCOLS.items()):
        bundle = module.build()
        print(
            f"{name:20s} sorts={bundle.sort_count()} symbols={bundle.symbol_count()} "
            f"invariant={len(bundle.invariant)} conjectures"
        )
    return 0


def cmd_bmc(args: argparse.Namespace) -> int:
    bundle = _bundle(args.protocol)
    program = bundle.program
    if args.drop_axiom:
        program = program.without_axiom(args.drop_axiom)
    if not _preflight(args, program, bundle.safety, origin=args.protocol):
        return EXIT_UNKNOWN
    stats = _stats_of(args)
    budget = _budget_of(args)
    start = time.time()
    result = find_error_trace(
        program, args.bound, jobs=args.jobs, stats=stats, budget=budget,
        journal=active_journal(),
    )
    elapsed = time.time() - start
    if result.holds:
        print(f"no assertion violation within {args.bound} iterations "
              f"({elapsed:.1f}s)")
        _print_stats(stats)
        return 0
    if result.unknown:
        _report_unknown(result, args.bound)
        _print_stats(stats)
        return EXIT_UNKNOWN
    print(f"assertion violation at depth {result.depth} ({elapsed:.1f}s):")
    print()
    print(result.trace)
    _print_stats(stats)
    return 1


def cmd_check(args: argparse.Namespace) -> int:
    bundle = _bundle(args.protocol)
    if not _preflight(
        args, bundle.program, tuple(bundle.safety) + tuple(bundle.invariant),
        origin=args.protocol,
    ):
        return EXIT_UNKNOWN
    stats = _stats_of(args)
    budget = _budget_of(args)
    start = time.time()
    result = check_inductive(
        bundle.program, list(bundle.invariant), jobs=args.jobs, stats=stats,
        budget=budget, journal=active_journal(),
    )
    elapsed = time.time() - start
    inconclusive = result.unknown_obligations and result.cti is None
    if inconclusive:
        print(f"invariant inductive: unknown ({elapsed:.1f}s)")
    else:
        print(f"invariant inductive: {result.holds} ({elapsed:.1f}s)")
    for conjecture in bundle.invariant:
        print(f"  {conjecture.name}: {conjecture.formula}")
    if result.unknown_obligations:
        print("obligations exhausting their budget:")
        for description in result.unknown_obligations:
            print(f"  {description}")
    if not result.holds and result.cti is not None:
        print()
        print(result.cti)
    _print_stats(stats)
    if inconclusive:
        return EXIT_UNKNOWN
    return 0 if result.holds else 1


def cmd_session(args: argparse.Namespace) -> int:
    bundle = _bundle(args.protocol)
    if not _preflight(args, bundle.program, bundle.safety, origin=args.protocol):
        return EXIT_UNKNOWN
    session = Session(bundle.program, initial=bundle.safety)
    start = time.time()
    outcome = session.run(OraclePolicy(bundle.invariant), max_iterations=40)
    elapsed = time.time() - start
    print(f"success: {outcome.success}  G = {outcome.cti_count} CTIs "
          f"({elapsed:.1f}s)")
    for line in outcome.transcript:
        print("  " + line)
    return 0 if outcome.success else 1


def cmd_interactive(args: argparse.Namespace) -> int:
    from .core.interactive import run_interactive

    bundle = _bundle(args.protocol)
    session = Session(bundle.program, initial=bundle.safety, bmc_bound=args.bound)
    outcome = run_interactive(session)
    return 0 if outcome.success else 1


def cmd_table(_args: argparse.Namespace) -> int:
    print(f"{'protocol':22s} {'S':>3s} {'RF':>4s} {'C':>4s} {'I':>4s}")
    for name in sorted(ALL_PROTOCOLS):
        bundle = _bundle(name)
        print(
            f"{name:22s} {bundle.sort_count():3d} {bundle.symbol_count():4d} "
            f"{bundle.literal_count(bundle.safety):4d} "
            f"{bundle.literal_count(bundle.invariant):4d}"
        )
    print("\n(G requires a session replay: python -m repro session <protocol>)")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from .analysis.diagnostics import Diagnostics, render_text
    from .logic.lexer import LexError, ParseError
    from .rml.parser import parse_program

    with open(args.file) as handle:
        source = handle.read()
    try:
        program = parse_program(source, check=False)
    except (LexError, ParseError) as error:
        sink = Diagnostics(args.file)
        message = getattr(error, "bare_message", None) or str(error)
        diagnostic = sink.emit("RML000", message, span=error.span)
        print(render_text(diagnostic, source), file=sys.stderr)
        return EXIT_UNKNOWN
    conjectures = [
        Conjecture(f"C{i}", parse_formula(text, program.vocab))
        for i, text in enumerate(args.conjecture or [])
    ]
    if not _preflight(args, program, conjectures, origin=args.file, source=source):
        return EXIT_UNKNOWN
    print(f"parsed {program.name!r}: {len(program.vocab.sorts)} sorts, "
          f"{len(program.vocab.relations)} relations")
    stats = _stats_of(args)
    budget = _budget_of(args)
    result = find_error_trace(
        program, args.bound, jobs=args.jobs, stats=stats, budget=budget,
        journal=active_journal(),
    )
    if result.trace is not None:
        print(f"assertion violation at depth {result.depth}:")
        print(result.trace)
        _print_stats(stats)
        return 1
    if result.unknown:
        _report_unknown(result, args.bound)
        _print_stats(stats)
        return EXIT_UNKNOWN
    print(f"no assertion violation within {args.bound} iterations")
    if conjectures:
        check = check_inductive(
            program, conjectures, jobs=args.jobs, stats=stats, budget=budget,
            journal=active_journal(),
        )
        if check.unknown_obligations and check.cti is None:
            print(f"conjunction of {len(conjectures)} conjectures inductive: "
                  "unknown (budget exhausted on: "
                  + ", ".join(check.unknown_obligations) + ")")
            _print_stats(stats)
            return EXIT_UNKNOWN
        print(f"conjunction of {len(conjectures)} conjectures inductive: "
              f"{check.holds}")
        if not check.holds and check.cti is not None:
            print(check.cti)
        _print_stats(stats)
        return 0 if check.holds else 1
    _print_stats(stats)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis over protocol bundles and/or .rml files."""
    from .analysis import lint, to_json, to_sarif
    from .analysis.diagnostics import Diagnostics, Severity, render_all
    from .logic.lexer import LexError, ParseError
    from .rml.parser import parse_program

    targets = list(args.targets)
    if args.all or not targets:
        targets.extend(sorted(ALL_PROTOCOLS))
    diagnostics = []
    sources: dict[str, str] = {}
    with obs.span("analysis", kind="lint", targets=len(targets)):
        for target in targets:
            if target in ALL_PROTOCOLS:
                bundle = _bundle(target)
                diagnostics.extend(lint.lint_program(bundle.program, origin=target))
                continue
            if not os.path.exists(target):
                raise SystemExit(
                    f"unknown target {target!r}: neither a protocol "
                    f"({', '.join(sorted(ALL_PROTOCOLS))}) nor a file"
                )
            with open(target) as handle:
                source = handle.read()
            sources[target] = source
            try:
                program = parse_program(source, check=False)
            except (LexError, ParseError) as error:
                sink = Diagnostics(target)
                message = getattr(error, "bare_message", None) or str(error)
                sink.emit("RML000", message, span=error.span)
                diagnostics.extend(sink.items)
                continue
            diagnostics.extend(lint.lint_program(program, origin=target))
    diagnostics.sort(key=lambda d: d.sort_key())
    if args.format == "json":
        output = to_json(diagnostics)
    elif args.format == "sarif":
        output = to_sarif(diagnostics)
    else:
        output = render_all(diagnostics, sources)
        errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
        warnings = sum(1 for d in diagnostics if d.severity is Severity.WARNING)
        summary = (
            f"{len(targets)} target(s): {errors} error(s), {warnings} warning(s)"
        )
        output = f"{output}\n{summary}" if output else summary
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output)
            handle.write("\n")
    else:
        print(output)
    has_errors = any(d.severity is Severity.ERROR for d in diagnostics)
    return 1 if has_errors else 0


def _ledger_of(args: argparse.Namespace):
    """Build the ledger from CLI flags / environment (None when disabled)."""
    from .proof.ledger import default_ledger

    if getattr(args, "no_ledger", False):
        os.environ["REPRO_LEDGER"] = "0"
    if getattr(args, "ledger_dir", None):
        os.environ["REPRO_LEDGER_DIR"] = args.ledger_dir
    return default_ledger()


def _target_plan(args: argparse.Namespace):
    """Resolve ``args.target`` into ``(plan, origin, source)``.

    Targets are protocol names (plan from the bundle's invariant) or
    ``.rml`` files (plan from the declared ``invariant``/``proof``
    blocks).  Files go through the collect-all diagnostics pass first, so
    proof-layer errors -- unknown names, duplicate declarations, a
    ``with``-cycle (``RML304``) -- are rejected here, before any solver
    work, with compiler-style sourced diagnostics.  Returns None after
    printing them (callers exit with ``EXIT_UNKNOWN``).
    """
    from .proof.manager import plan_of

    target = args.target
    if target in ALL_PROTOCOLS:
        bundle = _bundle(target)
        return plan_of(bundle.program, bundle.invariant), target, None
    if not os.path.exists(target):
        raise SystemExit(
            f"unknown target {target!r}: neither a protocol "
            f"({', '.join(sorted(ALL_PROTOCOLS))}) nor a file"
        )
    from .analysis.diagnostics import Diagnostics, Severity, render_text
    from .logic.lexer import LexError, ParseError
    from .rml.parser import parse_program
    from .rml.typecheck import program_diagnostics

    with open(target) as handle:
        source = handle.read()
    try:
        program = parse_program(source, check=False)
    except (LexError, ParseError) as error:
        sink = Diagnostics(target)
        message = getattr(error, "bare_message", None) or str(error)
        print(
            render_text(sink.emit("RML000", message, span=error.span), source),
            file=sys.stderr,
        )
        return None
    diagnostics = [
        d.with_origin(target)
        for d in program_diagnostics(program)
        if d.severity is Severity.ERROR
    ]
    if diagnostics:
        for diagnostic in diagnostics:
            print(render_text(diagnostic, source), file=sys.stderr)
        print(
            f"{target}: {len(diagnostics)} error(s); refusing to start the "
            "solver",
            file=sys.stderr,
        )
        return None
    return plan_of(program), target, source


def cmd_prove(args: argparse.Namespace) -> int:
    """Discharge the target's proof DAG, honoring the proven-lemma ledger."""
    from .proof.manager import prove

    resolved = _target_plan(args)
    if resolved is None:
        return EXIT_UNKNOWN
    plan, origin, source = resolved
    conjectures = tuple(plan.invariants.values())
    if not _preflight(args, plan.program, conjectures, origin=origin,
                      source=source):
        return EXIT_UNKNOWN
    ledger = _ledger_of(args)
    stats = _stats_of(args)
    budget = _budget_of(args)
    start = time.time()
    report = prove(
        plan, jobs=args.jobs, stats=stats, budget=budget, ledger=ledger,
        journal=active_journal(),
    )
    elapsed = time.time() - start
    if args.format == "json":
        payload = {
            "schema": 1,
            "program": report.program,
            "ok": report.ok,
            "queries": report.queries,
            "ledger_hits": report.ledger_hits,
            "ledger_misses": report.ledger_misses,
            "ledger_hit_rate": report.hit_rate,
            "frontiers": [list(layer) for layer in report.frontiers],
            "unknown": list(report.unknown),
            "failed_node": report.failed_node,
            "elapsed_s": round(elapsed, 3),
            "outcomes": [
                {
                    "node": outcome.node,
                    "obligation": outcome.description,
                    "via": outcome.via,
                }
                for outcome in report.outcomes
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        frontier_text = " | ".join(
            ", ".join(layer) for layer in report.frontiers
        )
        print(f"proof DAG: {frontier_text or '(empty)'}")
        print(
            f"obligations: {report.ledger_hits} from ledger, "
            f"{report.queries} solved "
            f"(hit rate {report.hit_rate:.2f}, {elapsed:.1f}s)"
        )
        if report.cti is not None:
            print(f"proof node {report.failed_node!r} failed:")
            print()
            print(report.cti)
        elif report.unknown:
            print("obligations exhausting their budget:")
            for description in report.unknown:
                print(f"  {description}")
        else:
            print(f"{report.program}: all proof obligations discharged")
    _print_stats(stats)
    if report.cti is not None:
        return 1
    return 0 if report.ok else EXIT_UNKNOWN


def cmd_status(args: argparse.Namespace) -> int:
    """Per-invariant proven/unproven/stale table from the ledger."""
    from .proof.ledger import Ledger, ledger_dir
    from .proof.manager import status

    resolved = _target_plan(args)
    if resolved is None:
        return EXIT_UNKNOWN
    plan, origin, _source = resolved
    ledger = _ledger_of(args)
    if ledger is None:
        ledger = Ledger(ledger_dir())  # status reads; REPRO_LEDGER=0 gates writes
    rows = status(plan, ledger)
    if args.format == "json":
        payload = {
            "schema": 1,
            "program": plan.program.name,
            "ledger": ledger.root,
            "invariants": [
                {
                    "name": row.name,
                    "proof": row.proof,
                    "state": row.state,
                    "provenance": [
                        {
                            "kind": entry.kind,
                            "engine": entry.engine,
                            "budget": entry.budget,
                            "git_rev": entry.git_rev,
                            "run_id": entry.run_id,
                            "wall_ms": entry.wall_ms,
                            "created_unix": entry.created_unix,
                        }
                        for entry in row.entries
                    ],
                }
                for row in rows
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"{'invariant':24s} {'proof':12s} {'state':10s} provenance")
        for row in rows:
            if row.entries:
                entry = row.entries[-1]
                parts = [f"engine={entry.engine}"]
                if entry.git_rev:
                    parts.append(f"rev={entry.git_rev}")
                if entry.run_id:
                    parts.append(f"run={entry.run_id}")
                provenance = " ".join(parts)
            else:
                provenance = "-"
            print(f"{row.name:24s} {row.proof:12s} {row.state:10s} {provenance}")
    return 0 if all(row.state == "proven" for row in rows) else 1


def cmd_resume(args: argparse.Namespace) -> int:
    """Re-invoke the command recorded in a run directory, resuming it."""
    meta = load_meta(args.run_dir)
    if meta is None:
        print(
            f"{args.run_dir}: no readable meta.json -- not a run directory "
            "(or written by an incompatible version)",
            file=sys.stderr,
        )
        return EXIT_UNKNOWN
    argv = list(meta.argv)
    if "--resume" not in argv:
        argv.append("--resume")
    print(f"resuming: repro {' '.join(argv)}", file=sys.stderr)
    return main(argv)


def cmd_report(args: argparse.Namespace) -> int:
    try:
        events = obs.load_trace(args.trace_file)
    except OSError as error:
        print(f"cannot read trace: {error}", file=sys.stderr)
        return 1
    except obs.TraceParseError as error:
        print(f"malformed trace: {error}", file=sys.stderr)
        return 1
    try:
        if getattr(args, "hotspots", False):
            print(obs.render_hotspots(events, top=args.top))
        else:
            print(obs.render_report(events))
    except BrokenPipeError:  # report | head: the reader left, that's fine
        sys.stderr.close()  # suppress the shutdown-time flush warning too
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    return obs.watch.watch(
        args.run_dir, interval=args.interval, once=args.once
    )


def cmd_bench_diff(args: argparse.Namespace) -> int:
    from .obs.benchcmp import DEFAULT_FLOOR_S, DEFAULT_MAX_RATIO

    return obs.benchcmp.diff_files(
        args.baseline,
        args.candidate,
        max_ratio=(
            args.max_ratio if args.max_ratio is not None else DEFAULT_MAX_RATIO
        ),
        floor_s=args.floor_s if args.floor_s is not None else DEFAULT_FLOOR_S,
        report_only=args.report_only,
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ivy (PLDI 2016) reproduction: interactive safety verification",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_obs_options(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--trace", default=None, metavar="FILE",
            help="write a JSONL span trace (render with: repro report FILE)",
        )
        subparser.add_argument(
            "--metrics", default=None, metavar="FILE",
            help="write a JSON metrics snapshot (counters/histograms/rates)",
        )
        subparser.add_argument(
            "--metrics-port", type=int, default=None, metavar="PORT",
            help="serve live Prometheus-style metrics over HTTP on "
                 "127.0.0.1:PORT while the run is in flight (0 picks a "
                 "free port; default: REPRO_METRICS_PORT or off)",
        )
        subparser.add_argument(
            "--progress", action="store_true",
            help="echo top-level trace spans to stderr as they run",
        )

    list_parser = commands.add_parser("list", help="list protocol models")
    add_obs_options(list_parser)
    list_parser.set_defaults(func=cmd_list)

    def add_preflight_options(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--no-preflight", action="store_true",
            help="skip the static decidability analysis before solving",
        )

    def add_solver_options(subparser: argparse.ArgumentParser) -> None:
        add_obs_options(subparser)
        add_preflight_options(subparser)
        subparser.add_argument(
            "-j", "--jobs", type=int, default=None,
            help="solve independent queries on N worker processes "
                 "(default: REPRO_JOBS or serial)",
        )
        subparser.add_argument(
            "--stats", action="store_true",
            help="print aggregate solver statistics after the run",
        )
        subparser.add_argument(
            "--timeout", type=float, default=None, metavar="SECONDS",
            help="wall-clock budget per query; exhausted queries degrade to "
                 "UNKNOWN (default: REPRO_TIMEOUT or unlimited)",
        )
        subparser.add_argument(
            "--conflict-budget", type=int, default=None, metavar="N",
            help="SAT conflict cap per query "
                 "(default: REPRO_CONFLICT_BUDGET or unlimited)",
        )
        subparser.add_argument(
            "--memory-mb", type=int, default=None, metavar="MB",
            help="address-space cap for worker processes "
                 "(default: REPRO_MEMORY_MB or unlimited)",
        )
        subparser.add_argument(
            "--retries", type=int, default=None, metavar="N",
            help="crashed/hung worker retries before the in-process "
                 "fallback (default: REPRO_RETRIES or 2)",
        )
        subparser.add_argument(
            "--persist-cache", action="store_true",
            help="keep query results in a disk cache shared across runs "
                 "(REPRO_CACHE_PERSIST)",
        )
        subparser.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="disk cache location, implies --persist-cache "
                 "(default: REPRO_CACHE_DIR or .repro-cache)",
        )
        subparser.add_argument(
            "--no-cache", action="store_true",
            help="disable query-result caching entirely (REPRO_CACHE=0)",
        )
        subparser.add_argument(
            "--run-dir", default=None, metavar="DIR",
            help="run directory for the write-ahead journal; implies "
                 "journaling (default: a deterministic directory under "
                 "REPRO_RUNS_DIR or .repro-runs when journaling is on)",
        )
        subparser.add_argument(
            "--resume", action="store_true",
            help="replay the run directory's journal, skipping work the "
                 "killed run already completed",
        )

    bmc = commands.add_parser("bmc", help="bounded debugging (Section 4.1)")
    bmc.add_argument("protocol")
    bmc.add_argument("-k", "--bound", type=int, default=3)
    bmc.add_argument("--drop-axiom", help="remove an axiom first (Figure 4)")
    add_solver_options(bmc)
    bmc.set_defaults(func=cmd_bmc)

    check = commands.add_parser("check", help="check the published invariant")
    check.add_argument("protocol")
    add_solver_options(check)
    check.set_defaults(func=cmd_check)

    session = commands.add_parser("session", help="replay the interactive search")
    session.add_argument("protocol")
    add_obs_options(session)
    add_preflight_options(session)
    session.set_defaults(func=cmd_session)

    interactive = commands.add_parser(
        "interactive", help="drive the CTI loop yourself (the paper's UI, headless)"
    )
    interactive.add_argument("protocol")
    interactive.add_argument("-k", "--bound", type=int, default=3)
    add_obs_options(interactive)
    interactive.set_defaults(func=cmd_interactive)

    table = commands.add_parser("table", help="print the Figure 14 model statistics")
    add_obs_options(table)
    table.set_defaults(func=cmd_table)

    verify = commands.add_parser("verify", help="verify an RML text model")
    verify.add_argument("file")
    verify.add_argument("-k", "--bound", type=int, default=3)
    verify.add_argument(
        "--conjecture",
        action="append",
        help="invariant conjecture (repeatable); checked for inductiveness",
    )
    add_solver_options(verify)
    verify.set_defaults(func=cmd_verify)

    lint = commands.add_parser(
        "lint", help="static analysis: well-formedness, lints, QAG decidability"
    )
    lint.add_argument(
        "targets", nargs="*", metavar="TARGET",
        help="protocol name or .rml file (default: every bundled protocol)",
    )
    lint.add_argument(
        "--all", action="store_true",
        help="also lint every bundled protocol in addition to TARGETs",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--output", default=None, metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    add_obs_options(lint)
    lint.set_defaults(func=cmd_lint)

    def add_ledger_options(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--ledger-dir", default=None, metavar="DIR",
            help="proven-lemma ledger location "
                 "(default: REPRO_LEDGER_DIR or .repro-ledger)",
        )

    prove = commands.add_parser(
        "prove", help="discharge the proof-dependency DAG, honoring the ledger"
    )
    prove.add_argument(
        "target", help="protocol name or .rml file with invariant/proof decls"
    )
    prove.add_argument(
        "--no-ledger", action="store_true",
        help="solve every obligation fresh; record nothing (REPRO_LEDGER=0)",
    )
    prove.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    add_ledger_options(prove)
    add_solver_options(prove)
    prove.set_defaults(func=cmd_prove)

    status = commands.add_parser(
        "status", help="per-invariant proven/unproven/stale table from the ledger"
    )
    status.add_argument(
        "target", help="protocol name or .rml file with invariant/proof decls"
    )
    status.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    add_ledger_options(status)
    add_obs_options(status)
    status.set_defaults(func=cmd_status)

    report = commands.add_parser(
        "report", help="render the breakdown of a --trace JSONL file"
    )
    report.add_argument("trace_file", metavar="TRACE")
    report.add_argument(
        "--hotspots", action="store_true",
        help="per-phase decomposition of query wall time: phase totals, "
             "per-engine p50/p95/p99, the slowest queries",
    )
    report.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="queries to list in the --hotspots view (default: 10)",
    )
    report.set_defaults(func=cmd_report)

    watch = commands.add_parser(
        "watch", help="live terminal view of a journaled run in flight"
    )
    watch.add_argument(
        "run_dir", metavar="RUN_DIR",
        help="run directory of the run to monitor (see ls .repro-runs)",
    )
    watch.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh period (default: 2s)",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="print one snapshot and exit instead of polling",
    )
    watch.set_defaults(func=cmd_watch)

    bench = commands.add_parser(
        "bench", help="benchmark telemetry tooling (BENCH_*.json)"
    )
    bench_commands = bench.add_subparsers(dest="bench_command", required=True)
    bench_diff = bench_commands.add_parser(
        "diff", help="diff two BENCH_*.json files with noise-aware thresholds"
    )
    bench_diff.add_argument("baseline", help="committed baseline BENCH file")
    bench_diff.add_argument("candidate", help="freshly generated BENCH file")
    bench_diff.add_argument(
        "--max-ratio", type=float, default=None, metavar="R",
        help="relative growth allowed before a timing regresses "
             "(default: 1.6x)",
    )
    bench_diff.add_argument(
        "--floor-s", type=float, default=None, metavar="S",
        help="absolute seconds of growth always tolerated (default: 0.25s)",
    )
    bench_diff.add_argument(
        "--report-only", action="store_true",
        help="print the report but always exit 0 (PR-gate mode)",
    )
    bench_diff.set_defaults(func=cmd_bench_diff)

    resume = commands.add_parser(
        "resume", help="resume a killed run from its run directory"
    )
    resume.add_argument(
        "run_dir", metavar="RUN_DIR",
        help="run directory holding the journal and meta.json "
             "(see ls .repro-runs)",
    )
    resume.set_defaults(func=cmd_resume)
    return parser


def _metrics_port(args: argparse.Namespace) -> int | None:
    """The exporter port: ``--metrics-port``, else ``REPRO_METRICS_PORT``."""
    port = getattr(args, "metrics_port", None)
    if port is not None:
        return port
    env = os.environ.get("REPRO_METRICS_PORT", "").strip()
    if env:
        try:
            return int(env)
        except ValueError:
            print(
                f"ignoring REPRO_METRICS_PORT={env!r}: expected an integer",
                file=sys.stderr,
            )
    return None


def _install_obs(args: argparse.Namespace, argv: list[str]):
    """Install tracer/metrics/exporter from the CLI flags; returns teardown.

    The teardown uninstalls every layer, stops the exporter, closes the
    trace file, and dumps the metrics snapshot -- it runs in ``main``'s
    finally block so traces and metrics survive crashed runs too.

    A journaled run without an explicit ``--trace`` gets its trace
    **teed into the run directory** (``run_dir/trace.jsonl``): that is
    the live feed ``repro watch RUN_DIR`` tails for query verdicts,
    cache/ledger hit rates, and dispatch faults.
    """
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    progress = getattr(args, "progress", False)
    if not trace_path:
        config = _journal_config(args)
        if config is not None:
            run_dir, _target = config
            os.makedirs(run_dir, exist_ok=True)
            trace_path = os.path.join(run_dir, "trace.jsonl")
    trace_file = open(trace_path, "w") if trace_path else None
    if trace_file is not None or progress:
        tracer = obs.Tracer(sink=trace_file, progress=progress)
        obs.install_tracer(tracer)
        tracer.emit_header(argv)
    port = _metrics_port(args)
    registry: obs.MetricsRegistry | None = None
    if metrics_path or port is not None:
        # A live endpoint needs a registry even without --metrics FILE.
        registry = obs.MetricsRegistry()
        obs.install_metrics(registry)
    server: obs.MetricsServer | None = None
    if port is not None:
        server = obs.MetricsServer(port=port)
        try:
            server.start()
        except OSError as error:
            print(
                f"cannot start the metrics exporter on port {port}: {error}",
                file=sys.stderr,
            )
            server = None
        else:
            print(f"metrics exporter: {server.url}", file=sys.stderr)

    def teardown() -> None:
        if server is not None:
            server.stop()
        obs.install_tracer(None)
        obs.install_metrics(None)
        if trace_file is not None:
            trace_file.close()
        if registry is not None and metrics_path:
            with open(metrics_path, "w") as handle:
                json.dump(registry.to_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")

    return teardown


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code.

    SIGINT/SIGTERM are translated into a resumable exit: the write-ahead
    journal (when one is active) is flushed and closed, the worker pool
    is shut down so no children outlive the run, and the process exits
    with :data:`~repro.recovery.EXIT_RESUMABLE` (75) plus a hint naming
    the ``repro resume`` command that picks the run back up.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    raw_argv = list(argv) if argv is not None else sys.argv[1:]
    _apply_cache_flags(args)
    teardown = _install_obs(args, raw_argv)
    restore_signals = install_handlers()
    journal, run_dir = _open_journal(args, raw_argv)
    try:
        if not obs.enabled():
            return args.func(args)
        attrs = {
            key: value
            for key, value in (
                ("protocol", getattr(args, "protocol", None)),
                ("target", getattr(args, "target", None)),
                ("file", getattr(args, "file", None)),
                ("bound", getattr(args, "bound", None)),
                ("jobs", getattr(args, "jobs", None)),
                ("resume", getattr(args, "resume", None) or None),
            )
            if value is not None
        }
        with obs.span(f"repro.{args.command}", **attrs) as sp:
            code = args.func(args)
            sp.set(exit_code=code)
            return code
    except Interrupted as stop:
        from .solver.dispatch import shutdown_pool

        shutdown_pool()
        print(f"\ninterrupted ({stop})", file=sys.stderr)
        if run_dir is not None:
            print(
                f"resume with: python -m repro resume {run_dir}",
                file=sys.stderr,
            )
        return EXIT_RESUMABLE
    finally:
        if journal is not None:
            obs.set_gauge("resume_reused_ratio", journal.reused_ratio())
            journal.close()
            if active_journal() is journal:
                set_active_journal(None)
        restore_signals()
        teardown()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
