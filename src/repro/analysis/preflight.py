"""Pre-flight decidability analysis for the engine entry points.

Before ``bmc`` / ``check`` / ``verify`` / ``session`` hand a program to a
solver, :func:`preflight_program` statically re-derives the paper's
guarantee: it runs the collect-all well-formedness checks and cycle-checks
the quantifier-alternation graph of **every VC the engines will generate**
(initiation, no-abort and consecution obligations from
:func:`repro.core.induction.obligations`, plus each axiom on its own).  An
out-of-fragment VC therefore fails fast with a compiler-style diagnostic
instead of burning solver budget toward an UNKNOWN.

The pass is traced as an ``analysis`` span and counted in the metrics
registry (``analysis_preflight_total`` / ``analysis_preflight_blocked``),
so a blocked run is visible in the trace report and -- crucially for the
fail-fast guarantee -- shows **zero** ``query_latency_ms`` samples.

This module imports :mod:`repro.core` and must not be imported from
``repro.analysis.__init__``; use ``from repro.analysis import preflight``.
"""

from __future__ import annotations

from typing import Sequence

from .. import obs
from ..core.induction import Conjecture, obligations
from ..rml.ast import Program
from ..rml.typecheck import program_diagnostics
from .diagnostics import Diagnostic, Diagnostics
from .qag import qag_diagnostics


def vc_formulas(
    program: Program, conjectures: Sequence[Conjecture] = ()
) -> list[tuple[str, "object"]]:
    """Every labeled VC (a sat query) the engines generate for ``program``.

    The obligation VCs already conjoin the axioms; the axioms are also
    listed individually so a bad axiom is reported under its own name even
    when no obligation exists (e.g. a program with no asserts and no
    conjectures).
    """
    labeled = [
        (f"axiom {axiom.name}", axiom.formula) for axiom in program.axioms
    ]
    for obligation in obligations(program, conjectures):
        labeled.append((obligation.description, obligation.vc))
    return labeled


def preflight_program(
    program: Program,
    conjectures: Sequence[Conjecture] = (),
    origin: str = "<program>",
) -> tuple[Diagnostic, ...]:
    """Statically verify that every VC stays in the decidable fragment.

    Returns all diagnostics found (well-formedness + QAG cycles); the
    caller blocks solving iff any has error severity.  The QAG pass runs
    even over an ill-formed program when ``wp`` still goes through, so a
    smuggled forall*exists* assume is reported both as an RML003 fragment
    violation and as the RML201 alternation cycle it induces in the VCs.
    """
    with obs.span(
        "analysis", kind="preflight", program=program.name
    ) as sp:
        obs.inc("analysis_preflight_total")
        sink = Diagnostics(origin)
        sink.extend(program_diagnostics(program))
        try:
            labeled = vc_formulas(program, conjectures)
        except Exception:
            labeled = []
        qag_diagnostics(labeled, sink)
        blocked = sink.has_errors
        if blocked:
            obs.inc("analysis_preflight_blocked")
        sp.set(diagnostics=len(sink), blocked=blocked)
        return sink.items
