"""Lint rules over RML programs (codes ``RML101``-``RML107``).

Unlike the well-formedness checks in :mod:`repro.rml.typecheck` (which
guard decidability), these flag *suspicious* programs: dead code, unused
declarations, vacuous assumptions.  All rules are collect-all and
warning-severity by default.

This module imports :mod:`repro.rml` and therefore must not be imported
from ``repro.analysis.__init__`` (see the layering note there); use
``from repro.analysis import lint``.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Iterator

from ..logic import syntax as s
from ..logic.lexer import Span
from ..logic.sorts import FuncDecl, RelDecl, Sort
from ..rml.ast import (
    Assume,
    Choice,
    Command,
    Havoc,
    Program,
    Seq,
    UpdateFunc,
    UpdateRel,
    subcommands,
)
from ..rml.typecheck import program_diagnostics
from .diagnostics import Diagnostic, Diagnostics, Note
from .qag import qag_diagnostics

#: Give up on the propositional falsity check past this many distinct atoms.
_MAX_ATOMS = 12


def lint_program(
    program: Program,
    origin: str = "<program>",
    include_wellformedness: bool = True,
    include_qag: bool = True,
) -> tuple[Diagnostic, ...]:
    """Run every rule over ``program`` and return all diagnostics.

    ``include_wellformedness`` folds in the RML001-009 checks (so one lint
    pass reports fragment violations *and* lints); ``include_qag``
    additionally cycle-checks the quantifier-alternation graph of the
    program's no-abort VCs (RML201) when the program is well-formed enough
    to take weakest preconditions.
    """
    sink = Diagnostics(origin)
    if include_wellformedness:
        sink.extend(program_diagnostics(program))
    _unused_symbols(program, sink)
    _shadowed_binders(program, sink)
    _assume_false(program, sink)
    _dead_branches(program, sink)
    _noop_updates(program, sink)
    if include_qag:
        from .preflight import vc_formulas  # deferred: preflight imports core

        try:
            labeled = vc_formulas(program)
        except Exception:
            # wp over a badly ill-formed program; the RML00x diagnostics
            # already explain why, so just skip the decidability pass.
            labeled = []
        qag_diagnostics(labeled, sink)
    return sink.items


# ---------------------------------------------------------------------------
# RML101-103: unused declarations
# ---------------------------------------------------------------------------


def _program_formulas(program: Program) -> Iterator[tuple[s.Formula, Span | None]]:
    """Every formula in the program, with the best-known span."""
    for axiom in program.axioms:
        yield axiom.formula, axiom.span or s.span_of(axiom.formula)
    for command in _program_commands(program):
        span = getattr(command, "span", None)
        if isinstance(command, Assume):
            yield command.formula, s.span_of(command.formula) or span
        elif isinstance(command, UpdateRel):
            yield command.formula, s.span_of(command.formula) or span
        elif isinstance(command, UpdateFunc):
            yield from _term_formulas(command.term, span)


def _term_formulas(
    term: s.Term, span: Span | None
) -> Iterator[tuple[s.Formula, Span | None]]:
    if isinstance(term, s.App):
        for arg in term.args:
            yield from _term_formulas(arg, span)
    elif isinstance(term, s.Ite):
        yield term.cond, s.span_of(term.cond) or span
        yield from _term_formulas(term.then, span)
        yield from _term_formulas(term.els, span)


def _program_commands(program: Program) -> Iterator[Command]:
    for root in (program.init, program.body, program.final):
        yield from subcommands(root)


def _unused_symbols(program: Program, sink: Diagnostics) -> None:
    used: set[str] = set()
    used_sorts: set[Sort] = set()

    def use_symbol(decl: RelDecl | FuncDecl) -> None:
        used.add(decl.name)
        used_sorts.update(decl.arg_sorts)
        if isinstance(decl, FuncDecl):
            used_sorts.add(decl.sort)

    for formula, _ in _program_formulas(program):
        for decl in s.symbols_of(formula):
            use_symbol(decl)
        for var in _bound_vars(formula):
            used_sorts.add(var.sort)
    for command in _program_commands(program):
        if isinstance(command, UpdateRel):
            use_symbol(command.rel)
        elif isinstance(command, UpdateFunc):
            use_symbol(command.func)
            for decl in s.symbols_of(command.term):
                use_symbol(decl)
        elif isinstance(command, Havoc):
            use_symbol(command.var)

    for rel in program.vocab.relations:
        if rel.name not in used:
            sink.emit(
                "RML102",
                f"relation {rel.name!r} is declared but never used",
                span=program.decl_spans.get(rel.name),
            )
    for func in program.vocab.functions:
        if func.name not in used:
            what = "variable" if func.is_constant else "function"
            sink.emit(
                "RML103",
                f"{what} {func.name!r} is declared but never used",
                span=program.decl_spans.get(func.name),
            )
    declared_by_symbols: set[Sort] = set()
    for rel in program.vocab.relations:
        declared_by_symbols.update(rel.arg_sorts)
    for func in program.vocab.functions:
        declared_by_symbols.update(func.arg_sorts)
        declared_by_symbols.add(func.sort)
    for sort in program.vocab.sorts:
        if sort not in used_sorts and sort not in declared_by_symbols:
            sink.emit(
                "RML101",
                f"sort {sort.name!r} is declared but never used",
                span=program.decl_spans.get(sort.name),
            )


def _bound_vars(formula: s.Formula) -> Iterator[s.Var]:
    if isinstance(formula, (s.Forall, s.Exists)):
        yield from formula.vars
        yield from _bound_vars(formula.body)
    elif isinstance(formula, s.Not):
        yield from _bound_vars(formula.arg)
    elif isinstance(formula, (s.And, s.Or)):
        for arg in formula.args:
            yield from _bound_vars(arg)
    elif isinstance(formula, (s.Implies, s.Iff)):
        yield from _bound_vars(formula.lhs)
        yield from _bound_vars(formula.rhs)


# ---------------------------------------------------------------------------
# RML104: shadowed binders
# ---------------------------------------------------------------------------


def _shadowed_binders(program: Program, sink: Diagnostics) -> None:
    for formula, span in _program_formulas(program):
        _shadow_walk(formula, frozenset(v.name for v in s.free_vars(formula)), span, sink)


def _shadow_walk(
    formula: s.Formula, scope: frozenset[str], span: Span | None, sink: Diagnostics
) -> None:
    if isinstance(formula, (s.Forall, s.Exists)):
        # Duplicates inside one vars tuple count too: the smart constructors
        # merge directly nested same-kind quantifiers into a single block, so
        # `forall X. forall X. ...` arrives here as one Forall((X, X), ...).
        kind = "forall" if isinstance(formula, s.Forall) else "exists"
        inner = set(scope)
        for var in formula.vars:
            if var.name in inner:
                sink.emit(
                    "RML104",
                    f"binder {var.name!r} in '{kind}' shadows an enclosing "
                    f"binding of the same name",
                    span=formula.span or span,
                )
            inner.add(var.name)
        _shadow_walk(formula.body, frozenset(inner), span, sink)
    elif isinstance(formula, s.Not):
        _shadow_walk(formula.arg, scope, span, sink)
    elif isinstance(formula, (s.And, s.Or)):
        for arg in formula.args:
            _shadow_walk(arg, scope, span, sink)
    elif isinstance(formula, (s.Implies, s.Iff)):
        _shadow_walk(formula.lhs, scope, span, sink)
        _shadow_walk(formula.rhs, scope, span, sink)


# ---------------------------------------------------------------------------
# RML105/106: vacuous assumes and dead branches
# ---------------------------------------------------------------------------


def equivalent_false(formula: s.Formula) -> bool:
    """Sound, incomplete falsity check by propositional abstraction.

    Distinct atoms (relations, equalities, whole quantified subformulas)
    become free booleans -- except ``t = t``, which is constantly true.  If
    no assignment satisfies the abstraction, no structure satisfies the
    formula.  Gives up (returns False) past ``_MAX_ATOMS`` atoms.
    """
    atoms: dict[s.Formula, int] = {}

    def gather(fml: s.Formula) -> None:
        if isinstance(fml, s.Eq):
            if fml.lhs != fml.rhs:
                atoms.setdefault(fml, len(atoms))
        elif isinstance(fml, (s.Rel, s.Forall, s.Exists)):
            atoms.setdefault(fml, len(atoms))
        elif isinstance(fml, s.Not):
            gather(fml.arg)
        elif isinstance(fml, (s.And, s.Or)):
            for arg in fml.args:
                gather(arg)
        elif isinstance(fml, (s.Implies, s.Iff)):
            gather(fml.lhs)
            gather(fml.rhs)

    gather(formula)
    if len(atoms) > _MAX_ATOMS:
        return False

    def evaluate(fml: s.Formula, bits: tuple[bool, ...]) -> bool:
        if isinstance(fml, s.Eq):
            return True if fml.lhs == fml.rhs else bits[atoms[fml]]
        if isinstance(fml, (s.Rel, s.Forall, s.Exists)):
            return bits[atoms[fml]]
        if isinstance(fml, s.Not):
            return not evaluate(fml.arg, bits)
        if isinstance(fml, s.And):
            return all(evaluate(a, bits) for a in fml.args)
        if isinstance(fml, s.Or):
            return any(evaluate(a, bits) for a in fml.args)
        if isinstance(fml, s.Implies):
            return (not evaluate(fml.lhs, bits)) or evaluate(fml.rhs, bits)
        if isinstance(fml, s.Iff):
            return evaluate(fml.lhs, bits) == evaluate(fml.rhs, bits)
        raise TypeError(f"not a formula: {fml!r}")

    return not any(
        evaluate(formula, bits) for bits in product((False, True), repeat=len(atoms))
    )


def _assume_false(program: Program, sink: Diagnostics) -> None:
    for command in _program_commands(program):
        if isinstance(command, Assume) and equivalent_false(command.formula):
            sink.emit(
                "RML105",
                "assume formula is equivalent to false (unreachable from here)",
                span=s.span_of(command.formula) or command.span,
            )


def _straight_line_assumes(command: Command) -> Iterator[Assume]:
    """Assumes that gate the whole command (not inside a nested choice)."""
    if isinstance(command, Assume):
        yield command
    elif isinstance(command, Seq):
        for child in command.commands:
            yield from _straight_line_assumes(child)


def _dead_branches(program: Program, sink: Diagnostics) -> None:
    for command in _program_commands(program):
        if not isinstance(command, Choice):
            continue
        for index, branch in enumerate(command.branches):
            dead = next(
                (
                    a
                    for a in _straight_line_assumes(branch)
                    if equivalent_false(a.formula)
                ),
                None,
            )
            if dead is not None:
                sink.emit(
                    "RML106",
                    f"choice branch {command.branch_label(index)!r} is dead: "
                    "it is gated by an assume equivalent to false",
                    span=getattr(branch, "span", None) or command.span,
                    notes=(
                        Note(
                            "this assume can never hold",
                            s.span_of(dead.formula) or dead.span,
                        ),
                    ),
                )


# ---------------------------------------------------------------------------
# RML107: identity (no-op) updates
# ---------------------------------------------------------------------------


def _noop_updates(program: Program, sink: Diagnostics) -> None:
    for command in _program_commands(program):
        if isinstance(command, UpdateRel):
            if command.formula == s.Rel(command.rel, command.params):
                sink.emit(
                    "RML107",
                    f"update of {command.rel.name!r} assigns the relation to "
                    "itself (no-op)",
                    span=s.span_of(command.formula) or command.span,
                )
        elif isinstance(command, UpdateFunc):
            if command.term == s.App(command.func, command.params):
                sink.emit(
                    "RML107",
                    f"update of {command.func.name!r} assigns the function to "
                    "itself (no-op)",
                    span=s.span_of(command.term) or command.span,
                )


def lint_many(
    programs: Iterable[tuple[str, Program]],
) -> tuple[Diagnostic, ...]:
    """Lint several programs, tagging diagnostics with each one's origin."""
    out: list[Diagnostic] = []
    for origin, program in programs:
        out.extend(lint_program(program, origin=origin))
    return tuple(out)
