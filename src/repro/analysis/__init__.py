"""Static analysis: decidability (QAG), diagnostics, lint rules, SARIF.

This package turns the dynamic "the solver will tell us" story into a
static one: every VC the engines generate is checked for membership in the
paper's decidable fragment (EPR + stratified functions) *before* any solver
runs, and violations come back as compiler-style diagnostics with source
spans and provenance.

Layering: this ``__init__`` (and the modules it imports -- ``diagnostics``,
``qag``, ``sarif``) depends only on :mod:`repro.logic`, because
:mod:`repro.rml.typecheck` imports the diagnostics engine.  The modules
that analyze whole RML programs -- :mod:`repro.analysis.lint` and
:mod:`repro.analysis.preflight` -- import :mod:`repro.rml` and
:mod:`repro.core` and must be accessed as explicit submodules
(``from repro.analysis import lint``).
"""

from .diagnostics import (
    CODES,
    Diagnostic,
    Diagnostics,
    Note,
    Severity,
    render_all,
    render_text,
    to_json,
)
from .qag import Qag, QagEdge, build_qag, formula_edges, qag_diagnostics
from .sarif import to_sarif

__all__ = [
    "CODES",
    "Diagnostic",
    "Diagnostics",
    "Note",
    "Qag",
    "QagEdge",
    "Severity",
    "build_qag",
    "formula_edges",
    "qag_diagnostics",
    "render_all",
    "render_text",
    "to_json",
    "to_sarif",
]
