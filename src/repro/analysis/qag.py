"""Quantifier-alternation graph (QAG) analysis.

The paper's decidability argument (Sections 3.1-3.3, Lemma 3.2 /
Theorem 3.3) hinges on every generated VC lying in EPR extended with
stratified functions.  The standard criterion (Ge & de Moura's "sort
dependency graph") is a graph over the vocabulary's *sorts*:

* a **function edge** ``s -> t`` for every occurrence of a function symbol
  ``f : ... s ... -> t`` (after Skolemization a function maps its argument
  sorts into its result sort);
* an **alternation edge** ``s -> t`` for every existential binder of sort
  ``t`` that occurs in the scope of a universal binder of sort ``s``, where
  universal/existential are read *under polarity* (an ``exists`` under a
  negation is a universal, and both sides of ``<->`` / ``ite`` conditions
  count both ways) -- Skolemizing that existential introduces exactly the
  function edge ``s -> t``.

The VC set is decidable iff the union graph over all VCs is **acyclic**:
then every Skolem function is stratified and the grounded search space is
finite.  A cycle is reported as one ``RML201`` diagnostic whose notes walk
the cycle edge by edge, each note carrying the source span of the
responsible quantifier or function occurrence.

The VCs analyzed here are satisfiability queries (positive polarity =
existential), which is how :func:`repro.core.induction.obligations` phrases
them: ``axioms & invariant & ~wp(...)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..logic import syntax as s
from ..logic.lexer import Span
from ..logic.sorts import Sort
from .diagnostics import Diagnostic, Diagnostics, Note

POSITIVE = 1
NEGATIVE = -1
BOTH = 0


@dataclass(frozen=True)
class QagEdge:
    """One edge of the quantifier-alternation graph, with provenance."""

    src: Sort
    dst: Sort
    kind: str  # "function" or "alternation"
    detail: str  # human-readable provenance, e.g. "function idn : node -> id"
    span: Span | None = None
    vc: str = "<formula>"  # label of the VC the edge came from

    @property
    def key(self) -> tuple:
        """Identity up to provenance (used to deduplicate parallel edges)."""
        return (self.src, self.dst, self.kind, self.detail)

    def __str__(self) -> str:
        return f"{self.src.name} -> {self.dst.name} ({self.detail})"


def _term_edges(term: s.Term, vc: str, out: list[QagEdge]) -> None:
    if isinstance(term, s.Var):
        return
    if isinstance(term, s.App):
        func = term.func
        for arg_sort in func.arg_sorts:
            out.append(
                QagEdge(
                    arg_sort,
                    func.sort,
                    "function",
                    f"function {func.name} : "
                    f"{', '.join(x.name for x in func.arg_sorts)} -> {func.sort.name}",
                    term.span,
                    vc,
                )
            )
        for arg in term.args:
            _term_edges(arg, vc, out)
        return
    if isinstance(term, s.Ite):
        _formula_edges(term.cond, BOTH, (), vc, out)
        _term_edges(term.then, vc, out)
        _term_edges(term.els, vc, out)
        return
    raise TypeError(f"not a term: {term!r}")


def _formula_edges(
    formula: s.Formula,
    polarity: int,
    universals: tuple[s.Var, ...],
    vc: str,
    out: list[QagEdge],
) -> None:
    """Walk ``formula`` collecting QAG edges.

    ``universals`` is the tuple of variables universally bound around the
    current position *under the current polarity*; ``polarity`` flips at
    negation, on the left of implication, and is ``BOTH`` under ``<->`` and
    ``ite`` conditions (visited once per polarity).
    """
    if isinstance(formula, (s.Rel, s.Eq)):
        for term in s.terms_of(formula):
            _term_edges(term, vc, out)
        return
    if isinstance(formula, s.Not):
        _formula_edges(formula.arg, -polarity if polarity else BOTH, universals, vc, out)
        return
    if isinstance(formula, (s.And, s.Or)):
        for arg in formula.args:
            _formula_edges(arg, polarity, universals, vc, out)
        return
    if isinstance(formula, s.Implies):
        _formula_edges(
            formula.lhs, -polarity if polarity else BOTH, universals, vc, out
        )
        _formula_edges(formula.rhs, polarity, universals, vc, out)
        return
    if isinstance(formula, s.Iff):
        _formula_edges(formula.lhs, BOTH, universals, vc, out)
        _formula_edges(formula.rhs, BOTH, universals, vc, out)
        return
    if isinstance(formula, (s.Forall, s.Exists)):
        if polarity == BOTH:
            _formula_edges(formula, POSITIVE, universals, vc, out)
            _formula_edges(formula, NEGATIVE, universals, vc, out)
            return
        is_universal = (polarity == POSITIVE) == isinstance(formula, s.Forall)
        if is_universal:
            _formula_edges(
                formula.body, polarity, universals + formula.vars, vc, out
            )
            return
        # Existential under polarity: Skolemization maps every in-scope
        # universal's sort into each bound variable's sort.
        kind = "exists" if isinstance(formula, s.Exists) else "forall"
        for var in formula.vars:
            for outer in universals:
                out.append(
                    QagEdge(
                        outer.sort,
                        var.sort,
                        "alternation",
                        f"'{kind} {var.name}:{var.sort.name}' under "
                        f"'forall {outer.name}:{outer.sort.name}'",
                        s.span_of(formula) or s.span_of(outer),
                        vc,
                    )
                )
        _formula_edges(formula.body, polarity, universals, vc, out)
        return
    raise TypeError(f"not a formula: {formula!r}")


def formula_edges(
    formula: s.Formula, vc: str = "<formula>", polarity: int = POSITIVE
) -> tuple[QagEdge, ...]:
    """All QAG edges induced by one formula (read as a sat query by default)."""
    out: list[QagEdge] = []
    _formula_edges(formula, polarity, (), vc, out)
    return tuple(out)


@dataclass(frozen=True)
class Qag:
    """The union quantifier-alternation graph of a set of VCs."""

    edges: tuple[QagEdge, ...]

    @property
    def sorts(self) -> tuple[Sort, ...]:
        seen: dict[Sort, None] = {}
        for edge in self.edges:
            seen.setdefault(edge.src)
            seen.setdefault(edge.dst)
        return tuple(seen)

    def cycles(self) -> list[tuple[QagEdge, ...]]:
        """One representative edge cycle per non-trivial SCC (plus self-loops).

        Deterministic: sorts and edges are visited in first-seen order, and
        parallel edges collapse to their first occurrence.
        """
        # Deduplicate parallel edges, keeping first (= first VC mentioning it).
        unique: dict[tuple, QagEdge] = {}
        for edge in self.edges:
            unique.setdefault(edge.key, edge)
        edges = list(unique.values())
        adjacency: dict[Sort, list[QagEdge]] = {}
        for edge in edges:
            adjacency.setdefault(edge.src, []).append(edge)
        sccs = tarjan_scc(self.sorts, adjacency)
        out: list[tuple[QagEdge, ...]] = []
        for component in sccs:
            members = set(component)
            internal = [
                e for e in edges if e.src in members and e.dst in members
            ]
            if len(component) == 1:
                loops = [e for e in internal if e.src == e.dst]
                if loops:
                    out.append((loops[0],))
                continue
            cycle = walk_cycle(component[0], members, adjacency)
            if cycle:
                out.append(tuple(cycle))
        return out


def tarjan_scc(nodes, adjacency) -> list[tuple]:
    """Tarjan's strongly-connected components, in first-seen order.

    Generic over the node type: ``adjacency`` maps each node to edge
    objects exposing a ``dst`` attribute.  Shared with the proof-dependency
    DAG (:mod:`repro.proof.dag`), whose nodes are proof names rather than
    sorts.
    """
    index: dict[Sort, int] = {}
    lowlink: dict[Sort, int] = {}
    on_stack: set[Sort] = set()
    stack: list[Sort] = []
    counter = [0]
    components: list[tuple[Sort, ...]] = []

    def strongconnect(node: Sort) -> None:
        index[node] = lowlink[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for edge in adjacency.get(node, ()):
            succ = edge.dst
            if succ not in index:
                strongconnect(succ)
                lowlink[node] = min(lowlink[node], lowlink[succ])
            elif succ in on_stack:
                lowlink[node] = min(lowlink[node], index[succ])
        if lowlink[node] == index[node]:
            component: list[Sort] = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            components.append(tuple(reversed(component)))

    for node in nodes:
        if node not in index:
            strongconnect(node)
    return components


def walk_cycle(start, members, adjacency) -> list | None:
    """A simple cycle through ``start`` staying inside one SCC (DFS).

    Generic like :func:`tarjan_scc`: edges only need a ``dst`` attribute.
    The *last* edge of the returned path is the one closing the cycle back
    to ``start`` -- diagnostics use that to name the closing edge.
    """
    path: list[QagEdge] = []
    visited: set[Sort] = set()

    def dfs(node: Sort) -> bool:
        for edge in adjacency.get(node, ()):
            if edge.dst not in members:
                continue
            if edge.dst == start:
                path.append(edge)
                return True
            if edge.dst in visited:
                continue
            visited.add(edge.dst)
            path.append(edge)
            if dfs(edge.dst):
                return True
            path.pop()
        return False

    visited.add(start)
    return path if dfs(start) else None


def build_qag(
    labeled_formulas: Iterable[tuple[str, s.Formula]],
) -> Qag:
    """The union QAG of a set of labeled sat-query formulas."""
    edges: list[QagEdge] = []
    for label, formula in labeled_formulas:
        edges.extend(formula_edges(formula, vc=label))
    return Qag(tuple(edges))


def qag_diagnostics(
    labeled_formulas: Iterable[tuple[str, s.Formula]],
    sink: Diagnostics | None = None,
) -> tuple[Diagnostic, ...]:
    """Cycle-check the union QAG; one ``RML201`` diagnostic per cycle.

    The diagnostic's message names the sorts on the cycle; its notes list
    every edge with its provenance (which quantifier or function symbol,
    in which VC) and source span.
    """
    sink = sink if sink is not None else Diagnostics()
    graph = build_qag(labeled_formulas)
    for cycle in graph.cycles():
        sorts = [cycle[0].src.name] + [edge.dst.name for edge in cycle]
        notes = [
            Note(f"edge {edge.src.name} -> {edge.dst.name}: {edge.detail} (in {edge.vc})", edge.span)
            for edge in cycle
        ]
        notes.append(
            Note(
                "every VC must stay in EPR with stratified (Skolem) functions "
                "(paper Theorem 3.3); this cycle admits unbounded term depth"
            )
        )
        span = next((edge.span for edge in cycle if edge.span is not None), None)
        sink.emit(
            "RML201",
            "quantifier-alternation cycle through sorts "
            + " -> ".join(sorts),
            span=span,
            notes=notes,
        )
    return sink.items
