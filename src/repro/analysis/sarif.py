"""SARIF 2.1.0 output for ``repro lint --format sarif``.

One run, one rule per registered diagnostic code, one result per
diagnostic; notes become ``relatedLocations``.  The subset emitted here is
what GitHub code scanning and the SARIF validators consume: ``tool.driver``
with rules, ``results`` with ``ruleId``/``level``/``locations``.
"""

from __future__ import annotations

import json
from typing import Iterable

from .diagnostics import CODES, Diagnostic, Severity

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning", Severity.NOTE: "note"}

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"


def _location(origin: str, span) -> dict:
    location: dict = {
        "physicalLocation": {"artifactLocation": {"uri": origin}}
    }
    if span is not None:
        location["physicalLocation"]["region"] = {
            "startLine": span.line,
            "startColumn": span.col,
            "endLine": span.end_line,
            "endColumn": span.end_col,
        }
    return location


def sarif_log(diagnostics: Iterable[Diagnostic]) -> dict:
    """The SARIF log as a plain dict (``to_sarif`` serializes it)."""
    diagnostics = list(diagnostics)
    used_codes = sorted({d.code for d in diagnostics})
    rules = [
        {
            "id": code,
            "shortDescription": {"text": CODES[code][1] if code in CODES else code},
            "defaultConfiguration": {
                "level": _LEVELS[CODES[code][0]] if code in CODES else "warning"
            },
        }
        for code in used_codes
    ]
    rule_index = {code: index for index, code in enumerate(used_codes)}
    results = []
    for diagnostic in diagnostics:
        result: dict = {
            "ruleId": diagnostic.code,
            "ruleIndex": rule_index[diagnostic.code],
            "level": _LEVELS[diagnostic.severity],
            "message": {"text": diagnostic.message},
            "locations": [_location(diagnostic.origin, diagnostic.span)],
        }
        related = [
            _location(diagnostic.origin, note.span) | {"message": {"text": note.message}}
            for note in diagnostic.notes
        ]
        if related:
            result["relatedLocations"] = related
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://github.com/",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def to_sarif(diagnostics: Iterable[Diagnostic]) -> str:
    return json.dumps(sarif_log(diagnostics), indent=2)
