"""Multi-error diagnostics with source spans.

The analysis subsystem reports problems the way a compiler does: every
diagnostic carries a stable code (``RML001``...), a severity, an optional
:class:`~repro.logic.lexer.Span` pointing into the source text, and a chain
of notes adding provenance (e.g. the edges of a quantifier-alternation
cycle).  Collect-all is the design center -- checkers append to a
:class:`Diagnostics` sink and keep going, so one run of ``repro lint``
surfaces every violation instead of the first.

The code registry below is the single source of truth for default
severities and the one-line rule descriptions used by the SARIF backend and
the README.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, replace
from typing import Iterable, Iterator

from ..logic.lexer import Span


class Severity(enum.IntEnum):
    """Diagnostic severity; lower values sort first (most severe)."""

    ERROR = 0
    WARNING = 1
    NOTE = 2

    @property
    def label(self) -> str:
        return self.name.lower()


#: code -> (default severity, one-line rule description)
CODES: dict[str, tuple[Severity, str]] = {
    # Parse-level failures surfaced through the diagnostics pipeline.
    "RML000": (Severity.ERROR, "syntax error"),
    # Well-formedness (Sections 3.1/3.3 restrictions; previously raise-on-first).
    "RML001": (Severity.ERROR, "function symbols are not stratified"),
    "RML002": (Severity.ERROR, "formula must be closed"),
    "RML003": (Severity.ERROR, "formula is not exists*forall*"),
    "RML004": (Severity.ERROR, "relation update right-hand side is not quantifier free"),
    "RML005": (Severity.ERROR, "update right-hand side has stray free variables"),
    "RML006": (Severity.ERROR, "symbol is not in the program vocabulary"),
    "RML007": (Severity.ERROR, "update of an undeclared symbol"),
    "RML008": (Severity.ERROR, "ite condition is not quantifier free"),
    "RML009": (Severity.ERROR, "havoc of an undeclared program variable"),
    # Lints (suspicious but not fragment-breaking).
    "RML101": (Severity.WARNING, "unused sort"),
    "RML102": (Severity.WARNING, "unused relation"),
    "RML103": (Severity.WARNING, "unused function or constant"),
    "RML104": (Severity.WARNING, "quantifier binder shadows an enclosing binder"),
    "RML105": (Severity.WARNING, "assume formula is equivalent to false"),
    "RML106": (Severity.WARNING, "dead choice branch (assume false)"),
    "RML107": (Severity.WARNING, "update right-hand side is the updated symbol itself (no-op)"),
    # Decidability analysis.
    "RML201": (Severity.ERROR, "quantifier-alternation graph has a cycle (VC outside EPR)"),
    # Proof management (named invariants, proof declarations, the proof DAG).
    "RML301": (Severity.ERROR, "proof references an unknown invariant name"),
    "RML302": (Severity.ERROR, "duplicate invariant or proof declaration"),
    "RML303": (Severity.ERROR, "'with' references an invariant no proof establishes"),
    "RML304": (Severity.ERROR, "proof-dependency cycle (circular 'with' assumptions)"),
    "RML305": (Severity.ERROR, "invariant formula is not a closed universal formula"),
}


@dataclass(frozen=True)
class Note:
    """A secondary message attached to a diagnostic (provenance, hints)."""

    message: str
    span: Span | None = None


@dataclass(frozen=True)
class Diagnostic:
    """One reported problem.

    ``origin`` names the artifact the span refers to -- a file path for
    ``repro lint FILE``, a bundled-protocol name otherwise -- and is what
    the SARIF backend records as the artifact URI.
    """

    code: str
    message: str
    severity: Severity
    span: Span | None = None
    notes: tuple[Note, ...] = ()
    origin: str = "<program>"

    @property
    def rule_description(self) -> str:
        return CODES[self.code][1] if self.code in CODES else self.message

    def with_origin(self, origin: str) -> "Diagnostic":
        return replace(self, origin=origin)

    def sort_key(self) -> tuple:
        span = self.span
        return (
            self.origin,
            span.line if span else 0,
            span.col if span else 0,
            self.severity,
            self.code,
        )


class Diagnostics:
    """A collect-all sink for diagnostics.

    Checkers ``emit`` freely; callers read ``items`` (sorted by source
    position) and branch on ``has_errors``.  The sink never raises -- the
    thin compatibility wrappers in :mod:`repro.rml.typecheck` convert the
    first error back into an exception for the legacy API.
    """

    def __init__(self, origin: str = "<program>") -> None:
        self.origin = origin
        self._items: list[Diagnostic] = []

    def emit(
        self,
        code: str,
        message: str,
        *,
        span: Span | None = None,
        severity: Severity | None = None,
        notes: Iterable[Note] = (),
    ) -> Diagnostic:
        if code not in CODES:
            raise KeyError(f"unregistered diagnostic code {code!r}")
        if severity is None:
            severity = CODES[code][0]
        diagnostic = Diagnostic(
            code, message, severity, span, tuple(notes), self.origin
        )
        self._items.append(diagnostic)
        return diagnostic

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self._items.extend(d.with_origin(self.origin) for d in diagnostics)

    @property
    def items(self) -> tuple[Diagnostic, ...]:
        return tuple(sorted(self._items, key=Diagnostic.sort_key))

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.items if d.severity is Severity.ERROR)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.items)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _excerpt(source: str, span: Span) -> list[str]:
    """A gcc-style source excerpt with a caret line under the span."""
    lines = source.splitlines()
    if not (1 <= span.line <= len(lines)):
        return []
    text = lines[span.line - 1]
    gutter = f"{span.line:>5} | "
    width = max(span.end_col - span.col, 1) if span.end_line == span.line else 1
    caret = " " * (span.col - 1) + "^" + "~" * (width - 1)
    return [gutter + text, " " * (len(gutter) - 2) + "| " + caret]


def render_text(
    diagnostic: Diagnostic, source: str | None = None
) -> str:
    """Render one diagnostic in compiler style.

    With ``source`` available the offending line is excerpted with a caret;
    notes follow, each with its own excerpt when it has a span.
    """
    where = f"{diagnostic.origin}:"
    if diagnostic.span is not None:
        where += f"{diagnostic.span.line}:{diagnostic.span.col}:"
    lines = [
        f"{where} {diagnostic.severity.label}[{diagnostic.code}]: {diagnostic.message}"
    ]
    if source is not None and diagnostic.span is not None:
        lines.extend(_excerpt(source, diagnostic.span))
    for note in diagnostic.notes:
        position = f"{note.span.line}:{note.span.col}: " if note.span else ""
        lines.append(f"  note: {position}{note.message}")
        if source is not None and note.span is not None:
            lines.extend("  " + line for line in _excerpt(source, note.span))
    return "\n".join(lines)


def render_all(
    diagnostics: Iterable[Diagnostic], sources: dict[str, str] | None = None
) -> str:
    sources = sources or {}
    return "\n".join(
        render_text(d, sources.get(d.origin)) for d in diagnostics
    )


def to_json(diagnostics: Iterable[Diagnostic]) -> str:
    """A stable machine-readable dump (``repro lint --format json``)."""
    payload = []
    for d in diagnostics:
        entry: dict = {
            "code": d.code,
            "severity": d.severity.label,
            "message": d.message,
            "origin": d.origin,
        }
        if d.span is not None:
            entry["span"] = {
                "line": d.span.line,
                "col": d.span.col,
                "end_line": d.span.end_line,
                "end_col": d.span.end_col,
            }
        if d.notes:
            entry["notes"] = [
                {"message": n.message}
                | ({"line": n.span.line, "col": n.span.col} if n.span else {})
                for n in d.notes
            ]
        payload.append(entry)
    return json.dumps({"schema": 1, "diagnostics": payload}, indent=2)
