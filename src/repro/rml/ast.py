"""Abstract syntax of RML, the relational modeling language (paper Fig. 10).

An RML program is ``decls; C_init; while * do C_body; C_final``.  Commands
are loop free:

* ``skip`` and ``abort``;
* ``r(x) := phi_QF(x)`` -- update a relation to a quantifier-free formula;
* ``f(x) := t(x)`` -- update a function to a term;
* ``v := *`` -- havoc a program variable (a nullary function);
* ``assume phi_EA``;
* sequential composition and n-ary nondeterministic choice.

Choices may carry branch labels (e.g. ``send`` / ``receive``); the bounded
model checker uses them to annotate counterexample traces the way the paper
narrates Figure 4.  The sugar of Figure 12 (assert, if-then-else, insert,
remove, point updates) lives in :mod:`repro.rml.sugar`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from ..logic import syntax as s
from ..logic.lexer import Span
from ..logic.sorts import FuncDecl, RelDecl, Vocabulary


def _span_field():
    """A source-location slot excluded from equality, hashing, and repr."""
    return field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Skip:
    span: Span | None = _span_field()

    def __str__(self) -> str:
        return "skip"


@dataclass(frozen=True)
class Abort:
    span: Span | None = _span_field()

    def __str__(self) -> str:
        return "abort"


@dataclass(frozen=True)
class UpdateRel:
    """``rel(params) := formula`` with ``formula`` quantifier free."""

    rel: RelDecl
    params: tuple[s.Var, ...]
    formula: s.Formula
    span: Span | None = _span_field()

    def __post_init__(self) -> None:
        if len(self.params) != self.rel.arity:
            raise ValueError(f"update of {self.rel.name!r} has wrong parameter count")
        if len(set(self.params)) != len(self.params):
            raise ValueError(f"update of {self.rel.name!r} repeats a parameter")
        for param, sort in zip(self.params, self.rel.arg_sorts):
            if param.sort != sort:
                raise ValueError(f"update of {self.rel.name!r} has ill-sorted parameters")

    def __str__(self) -> str:
        params = ", ".join(v.name for v in self.params)
        head = f"{self.rel.name}({params})" if self.params else self.rel.name
        return f"{head} := {self.formula}"


@dataclass(frozen=True)
class UpdateFunc:
    """``func(params) := term``."""

    func: FuncDecl
    params: tuple[s.Var, ...]
    term: s.Term
    span: Span | None = _span_field()

    def __post_init__(self) -> None:
        if len(self.params) != self.func.arity:
            raise ValueError(f"update of {self.func.name!r} has wrong parameter count")
        if len(set(self.params)) != len(self.params):
            raise ValueError(f"update of {self.func.name!r} repeats a parameter")
        for param, sort in zip(self.params, self.func.arg_sorts):
            if param.sort != sort:
                raise ValueError(f"update of {self.func.name!r} has ill-sorted parameters")
        if self.term.sort != self.func.sort:
            raise ValueError(f"update of {self.func.name!r} has an ill-sorted right-hand side")

    def __str__(self) -> str:
        params = ", ".join(v.name for v in self.params)
        head = f"{self.func.name}({params})" if self.params else self.func.name
        return f"{head} := {self.term}"


@dataclass(frozen=True)
class Havoc:
    """``var := *`` -- nondeterministic assignment to a program variable."""

    var: FuncDecl
    span: Span | None = _span_field()

    def __post_init__(self) -> None:
        if not self.var.is_constant:
            raise ValueError("only nullary functions (program variables) can be havocked")

    def __str__(self) -> str:
        return f"{self.var.name} := *"


@dataclass(frozen=True)
class Assume:
    """``assume formula`` with ``formula`` a closed exists*forall* assertion."""

    formula: s.Formula
    span: Span | None = _span_field()

    def __str__(self) -> str:
        return f"assume {self.formula}"


@dataclass(frozen=True)
class Seq:
    commands: tuple["Command", ...]
    span: Span | None = _span_field()

    def __str__(self) -> str:
        return "; ".join(str(c) for c in self.commands)


@dataclass(frozen=True)
class Choice:
    """Nondeterministic choice between branches, optionally labeled."""

    branches: tuple["Command", ...]
    labels: tuple[str, ...] | None = None
    span: Span | None = _span_field()

    def __post_init__(self) -> None:
        if len(self.branches) < 2:
            raise ValueError("a choice needs at least two branches")
        if self.labels is not None and len(self.labels) != len(self.branches):
            raise ValueError("label count does not match branch count")

    def branch_label(self, index: int) -> str:
        if self.labels is not None:
            return self.labels[index]
        return f"branch{index}"

    def __str__(self) -> str:
        parts = []
        for index, branch in enumerate(self.branches):
            label = f"{self.labels[index]}: " if self.labels else ""
            parts.append(f"{{{label}{branch}}}")
        return " | ".join(parts)


Command = Union[Skip, Abort, UpdateRel, UpdateFunc, Havoc, Assume, Seq, Choice]


def seq(*commands: Command) -> Command:
    """Sequential composition, flattening nested sequences."""
    flat: list[Command] = []
    for command in commands:
        if isinstance(command, Seq):
            flat.extend(command.commands)
        elif isinstance(command, Skip):
            continue
        else:
            flat.append(command)
    if not flat:
        return Skip()
    if len(flat) == 1:
        return flat[0]
    return Seq(tuple(flat))


def choice(*branches: Command, labels: tuple[str, ...] | None = None) -> Command:
    if len(branches) == 1 and labels is None:
        return branches[0]
    return Choice(tuple(branches), labels)


def subcommands(command: Command) -> Iterator[Command]:
    """Pre-order traversal of a command tree."""
    yield command
    if isinstance(command, Seq):
        for child in command.commands:
            yield from subcommands(child)
    elif isinstance(command, Choice):
        for child in command.branches:
            yield from subcommands(child)


def havocked_symbols(command: Command) -> frozenset[FuncDecl]:
    """The program variables a command havocs (scratch variables).

    Their post-CTI values are incidental bookkeeping -- the paper's state
    displays omit them, and generalizations must not retain facts about
    them (a havocked variable can make a bogus conjecture k-unreachable).
    """
    out: set[FuncDecl] = set()
    for sub in subcommands(command):
        if isinstance(sub, Havoc):
            out.add(sub.var)
    return frozenset(out)


def without_aborts(command: Command) -> Command:
    """``command`` with every ``abort`` replaced by ``assume false``.

    Turns ``wp`` into the weakest *liberal* precondition: aborting
    executions (failed safety asserts) are treated as infeasible instead
    of as errors.  The proof layer checks a node's consecution against
    this abort-free body -- whether aborts are reachable at all is the
    separate program-wide no-abort obligation, proven with the *full*
    invariant as premise; folding it into every node's consecution would
    demand each node re-establish safety from its own premises alone.
    """
    if isinstance(command, Abort):
        return Assume(s.FALSE, span=command.span)
    if isinstance(command, Seq):
        return Seq(
            tuple(without_aborts(child) for child in command.commands),
            span=command.span,
        )
    if isinstance(command, Choice):
        return Choice(
            tuple(without_aborts(child) for child in command.branches),
            command.labels,
            span=command.span,
        )
    return command


def assigned_symbols(command: Command) -> frozenset[RelDecl | FuncDecl]:
    """The relation/function symbols a command may modify."""
    out: set[RelDecl | FuncDecl] = set()
    for sub in subcommands(command):
        if isinstance(sub, UpdateRel):
            out.add(sub.rel)
        elif isinstance(sub, UpdateFunc):
            out.add(sub.func)
        elif isinstance(sub, Havoc):
            out.add(sub.var)
    return frozenset(out)


@dataclass(frozen=True)
class Axiom:
    """A named exists*forall* axiom constraining every program state."""

    name: str
    formula: s.Formula
    span: Span | None = _span_field()

    def __str__(self) -> str:
        return f"axiom {self.name}: {self.formula}"


@dataclass(frozen=True)
class Invariant:
    """A named universal invariant declaration (``invariant n: phi``).

    Unlike ``safety`` declarations, invariants add no assertion to the
    loop body; they are conjectures the proof layer (:mod:`repro.proof`)
    discharges, names and all, so reruns can skip already-proven ones.
    """

    name: str
    formula: s.Formula
    span: Span | None = _span_field()

    def __str__(self) -> str:
        return f"invariant {self.name}: {self.formula}"


@dataclass(frozen=True)
class ProofDecl:
    """``proof p proves i1, i2 [with l1, l2]``.

    The proof obligates the invariants in ``proves`` (checked by mutual
    induction among themselves), assuming the previously proven lemmas in
    ``uses`` in every pre-state.  ``prove_spans``/``use_spans`` parallel
    the name tuples so diagnostics can point at the exact reference.
    """

    name: str
    proves: tuple[str, ...]
    uses: tuple[str, ...] = ()
    span: Span | None = _span_field()
    prove_spans: tuple[Span | None, ...] = field(
        default=(), compare=False, repr=False
    )
    use_spans: tuple[Span | None, ...] = field(
        default=(), compare=False, repr=False
    )

    def __str__(self) -> str:
        text = f"proof {self.name} proves {', '.join(self.proves)}"
        if self.uses:
            text += f" with {', '.join(self.uses)}"
        return text


@dataclass(frozen=True)
class Program:
    """An RML program: ``decls; init; while * do body; final``.

    ``display_hints`` optionally names derived relations for visualization
    (e.g. showing ``btw`` through its ``next`` projection, Section 2.1); it
    has no semantic effect.
    """

    name: str
    vocab: Vocabulary
    axioms: tuple[Axiom, ...]
    init: Command = field(default_factory=Skip)
    body: Command = field(default_factory=Skip)
    final: Command = field(default_factory=Skip)
    #: Named invariant conjectures and the proof declarations that
    #: discharge them (the proof-management surface syntax); empty for
    #: programs that predate or do not use the proof layer.
    invariants: tuple[Invariant, ...] = ()
    proofs: tuple[ProofDecl, ...] = ()
    #: Source spans of the surface-syntax declarations (sort/relation/
    #: function names), recorded by :func:`repro.rml.parser.parse_program`
    #: so lint rules can point "unused symbol" diagnostics at the
    #: declaration site.  Empty for programmatically built programs.
    decl_spans: dict[str, Span] = field(default_factory=dict, compare=False, repr=False)

    @property
    def axiom_formula(self) -> s.Formula:
        return s.and_(*(axiom.formula for axiom in self.axioms))

    def axiom_named(self, name: str) -> Axiom:
        for axiom in self.axioms:
            if axiom.name == name:
                return axiom
        raise KeyError(f"no axiom named {name!r}")

    def invariant_named(self, name: str) -> Invariant:
        for invariant in self.invariants:
            if invariant.name == name:
                return invariant
        raise KeyError(f"no invariant named {name!r}")

    def without_axiom(self, name: str) -> "Program":
        """A copy lacking one axiom (used to reproduce the Figure 4 bug)."""
        self.axiom_named(name)
        return Program(
            name=f"{self.name}_without_{name}",
            vocab=self.vocab,
            axioms=tuple(a for a in self.axioms if a.name != name),
            init=self.init,
            body=self.body,
            final=self.final,
            invariants=self.invariants,
            proofs=self.proofs,
            decl_spans=self.decl_spans,
        )

    def mutable_symbols(self) -> frozenset[RelDecl | FuncDecl]:
        return (
            assigned_symbols(self.init)
            | assigned_symbols(self.body)
            | assigned_symbols(self.final)
        )
