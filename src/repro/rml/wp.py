"""The weakest-precondition operator for RML (paper Figure 13).

::

    wp(skip, Q)            = Q
    wp(abort, Q)           = false
    wp(r(x) := phi(x), Q)  = (A -> Q)[phi(s)/r(s)]
    wp(f(x) := t(x), Q)    = (A -> Q)[t(s)/f(s)]
    wp(v := *, Q)          = forall x. (A -> Q)[x/v]
    wp(assume phi, Q)      = phi -> Q
    wp(C1; C2, Q)          = wp(C1, wp(C2, Q))
    wp(C1 | C2, Q)         = wp(C1, Q) & wp(C2, Q)

``A`` is the conjunction of the program axioms: state mutations that leave
the axiom-satisfying state space have no successor, hence the guarded
``A -> Q`` in the mutation rules.

Lemma 3.2 (closure): if ``Q`` is forall*exists* then so is ``wp(C, Q)`` --
checked here by construction and exercised by property tests.
"""

from __future__ import annotations

from ..logic import syntax as s
from ..logic.subst import FreshNames, fresh_var, replace_func, replace_rel
from .ast import (
    Abort,
    Assume,
    Choice,
    Command,
    Havoc,
    Program,
    Seq,
    Skip,
    UpdateFunc,
    UpdateRel,
)


def wp(
    command: Command,
    post: s.Formula,
    axioms: s.Formula = s.TRUE,
    reduce_guards: bool = True,
) -> s.Formula:
    """The weakest precondition of ``command`` with respect to ``post``.

    ``axioms`` is the conjunction ``A`` of the program's axioms (pass
    :attr:`repro.rml.ast.Program.axiom_formula`); the default ``true``
    matches axiom-free programs.

    With ``reduce_guards`` (the default) each mutation's ``A ->`` guard
    keeps only the axiom conjuncts that *mention the mutated symbol*: a
    conjunct over other symbols is syntactically unchanged by the
    substitution, so in any context where ``A`` holds in the pre-state --
    which is every verification condition this tool builds, since states
    satisfy the axioms by definition -- the full guard and the reduced one
    agree.  This prunes the VC dramatically when axioms only constrain
    rigid symbols.  Pass ``reduce_guards=False`` for the literal Figure 13
    operator (the equivalence of the two under ``A`` is property-tested).
    """
    fresh = FreshNames()
    return _wp(command, post, axioms, fresh, reduce_guards)


def _guard_for(symbol, axioms: s.Formula, reduce_guards: bool) -> s.Formula:
    if not reduce_guards or axioms == s.TRUE:
        return axioms
    conjuncts = axioms.args if isinstance(axioms, s.And) else (axioms,)
    relevant = [c for c in conjuncts if symbol in s.symbols_of(c)]
    return s.and_(*relevant)


def _wp(
    command: Command,
    post: s.Formula,
    axioms: s.Formula,
    fresh: FreshNames,
    reduce_guards: bool,
) -> s.Formula:
    if isinstance(command, Skip):
        return post
    if isinstance(command, Abort):
        return s.FALSE
    if isinstance(command, UpdateRel):
        guard = _guard_for(command.rel, axioms, reduce_guards)
        guarded = s.implies(guard, post)
        return replace_rel(guarded, command.rel, command.params, command.formula)
    if isinstance(command, UpdateFunc):
        guard = _guard_for(command.func, axioms, reduce_guards)
        guarded = s.implies(guard, post)
        return replace_func(guarded, command.func, command.params, command.term)
    if isinstance(command, Havoc):
        guard = _guard_for(command.var, axioms, reduce_guards)
        guarded = s.implies(guard, post)
        var = fresh_var(fresh(f"any_{command.var.name}"), command.var.sort, ())
        substituted = replace_func(guarded, command.var, (), var)
        return s.forall((var,), substituted)
    if isinstance(command, Assume):
        return s.implies(command.formula, post)
    if isinstance(command, Seq):
        out = post
        for child in reversed(command.commands):
            out = _wp(child, out, axioms, fresh, reduce_guards)
        return out
    if isinstance(command, Choice):
        return s.and_(
            *(_wp(branch, post, axioms, fresh, reduce_guards) for branch in command.branches)
        )
    raise TypeError(f"not a command: {command!r}")


def wp_body_safe(program: Program) -> s.Formula:
    """``wp(C_body, true)``: no abort is reachable in one body execution."""
    return wp(program.body, s.TRUE, program.axiom_formula)


def wp_final_safe(program: Program) -> s.Formula:
    """``wp(C_final, true)``: the finalization command cannot abort."""
    return wp(program.final, s.TRUE, program.axiom_formula)


def iterated_wp(program: Program, post: s.Formula, iterations: int) -> s.Formula:
    """``wp(C_init; C_body^k, post)`` -- the k-safety obligation (Eq. 1).

    Grows exponentially with ``iterations`` when the body branches; the
    bounded model checker in :mod:`repro.core.bounded` uses the
    transition-relation encoding instead, but this direct form is kept for
    cross-checking the two on small bounds.
    """
    out = post
    axioms = s.TRUE if not program.axioms else program.axiom_formula
    for _ in range(iterations):
        out = wp(program.body, out, axioms)
    return wp(program.init, out, axioms)
