"""Syntactic sugar for RML commands (paper Figure 12).

Every helper expands to core commands exactly as the figure specifies::

    assert phi_AE          ==  {assume ~phi_AE; abort} | skip
    if phi then C1 else C2 ==  {assume phi; C1} | {assume ~phi; C2}
    r.insert(x | phi)      ==  r(x) := r(x) | phi(x)
    r.remove(x | phi)      ==  r(x) := r(x) & ~phi(x)
    r.insert(t)            ==  r(x) := r(x) | x = t
    r.remove(t)            ==  r(x) := r(x) & ~(x = t)
    f(t) := u              ==  f(x) := ite(x = t, u, f(x))

The fragment restrictions of Figure 12 (``assert`` takes forall*exists*
formulas, ``if`` conditions are alternation free) are enforced here so that
the desugared program always satisfies the core RML restrictions checked by
:mod:`repro.rml.typecheck`.
"""

from __future__ import annotations

from typing import Iterable

from ..logic import syntax as s
from ..logic.fragments import is_alternation_free, is_forall_exists
from ..logic.sorts import FuncDecl, RelDecl
from ..logic.subst import fresh_var
from .ast import Abort, Assume, Choice, Command, Skip, UpdateFunc, UpdateRel, seq


class SugarError(Exception):
    """Raised when sugar is applied outside its fragment restrictions."""


def assert_(formula: s.Formula, label: str | None = None) -> Command:
    """``assert phi``: abort iff ``~phi`` can be assumed (Figure 12)."""
    free = s.free_vars(formula)
    if free:
        names = ", ".join(sorted(v.name for v in free))
        raise SugarError(f"assert requires a closed formula; free variables: {names}")
    if not is_forall_exists(formula):
        raise SugarError(f"assert requires a forall*exists* formula, got: {formula}")
    branches = (seq(Assume(s.not_(formula)), Abort()), Skip())
    labels = (f"violate {label}" if label else "violate", "pass")
    return Choice(branches, labels)


def if_(condition: s.Formula, then: Command, els: Command | None = None) -> Command:
    """``if condition then C1 else C2`` via assume-guarded choice."""
    if not is_alternation_free(condition):
        raise SugarError(f"if condition must be alternation free, got: {condition}")
    else_branch = els if els is not None else Skip()
    return Choice(
        (seq(Assume(condition), then), seq(Assume(s.not_(condition)), else_branch)),
        ("then", "else"),
    )


def _params_for(symbol: RelDecl | FuncDecl, avoid: Iterable[s.Var] = ()) -> tuple[s.Var, ...]:
    taken = list(avoid)
    params: list[s.Var] = []
    for index, sort in enumerate(symbol.arg_sorts):
        var = fresh_var(f"X{index}", sort, taken)
        taken.append(var)
        params.append(var)
    return tuple(params)


def insert_where(rel: RelDecl, params: tuple[s.Var, ...], condition: s.Formula) -> Command:
    """``rel.insert(params | condition)``: add every tuple satisfying it."""
    return UpdateRel(rel, params, s.or_(s.Rel(rel, params), condition))


def remove_where(rel: RelDecl, params: tuple[s.Var, ...], condition: s.Formula) -> Command:
    """``rel.remove(params | condition)``: drop every tuple satisfying it."""
    return UpdateRel(rel, params, s.and_(s.Rel(rel, params), s.not_(condition)))


def insert(rel: RelDecl, *args: s.Term) -> Command:
    """``rel.insert(t)`` for a tuple of closed terms."""
    params = _params_for(rel, avoid=_term_vars(args))
    match = s.and_(*(s.eq(p, t) for p, t in zip(params, args)))
    return UpdateRel(rel, params, s.or_(s.Rel(rel, params), match))


def remove(rel: RelDecl, *args: s.Term) -> Command:
    """``rel.remove(t)`` for a tuple of closed terms."""
    params = _params_for(rel, avoid=_term_vars(args))
    match = s.and_(*(s.eq(p, t) for p, t in zip(params, args)))
    return UpdateRel(rel, params, s.and_(s.Rel(rel, params), s.not_(match)))


def assign(func: FuncDecl, args: tuple[s.Term, ...], value: s.Term) -> Command:
    """``f(t) := u``: point update via an ite right-hand side (Figure 12).

    With ``args == ()`` this is a plain program-variable assignment
    ``v := u``.
    """
    if len(args) != func.arity:
        raise SugarError(f"point update of {func.name!r} has wrong arity")
    if not args:
        return UpdateFunc(func, (), value)
    params = _params_for(func, avoid=_term_vars((*args, value)))
    match = s.and_(*(s.eq(p, t) for p, t in zip(params, args)))
    body = s.Ite(match, value, s.App(func, params))
    return UpdateFunc(func, params, body)


def clear(rel: RelDecl) -> Command:
    """Set a relation to empty."""
    params = _params_for(rel)
    return UpdateRel(rel, params, s.FALSE)


def _term_vars(terms: Iterable[s.Term]) -> set[s.Var]:
    out: set[s.Var] = set()
    for term in terms:
        out |= s.free_vars(term)
    return out
