"""A concrete interpreter for RML commands over finite structures.

RML's axiomatic semantics is given by ``wp`` (Figure 13); this module gives
the corresponding *operational* semantics on finite states.  It enumerates
every outcome of a command from a given structure:

* updates are evaluated pointwise over the (finite) domain -- an update that
  leaves the axiom-satisfying state space yields no successor, mirroring the
  ``A ->`` guard in the wp rules;
* ``havoc`` branches over every domain element;
* ``assume`` filters;
* ``choice`` takes every branch, recording labels for trace narration;
* ``abort`` yields an :class:`Aborted` outcome.

The interpreter serves three purposes: replaying the successor state of a
counterexample to induction (the (a2) states of Figures 7-9), narrating BMC
traces, and *differentially testing* the wp calculus and the symbolic
transition encoding -- ``s |= wp(C, Q)`` must coincide with "every outcome
of C from s satisfies Q", which property tests check on random small states.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..logic import syntax as s
from ..logic.sorts import FuncDecl, RelDecl
from ..logic.structures import Elem, Structure
from .ast import (
    Abort,
    Assume,
    Choice,
    Command,
    Havoc,
    Program,
    Seq,
    Skip,
    UpdateFunc,
    UpdateRel,
)


@dataclass(frozen=True)
class Outcome:
    """One completed execution of a command: a state or an abort."""

    state: Structure | None  # None means the execution aborted
    labels: tuple[str, ...] = ()  # choice labels taken, outermost first

    @property
    def aborted(self) -> bool:
        return self.state is None


def execute(command: Command, state: Structure, axioms: s.Formula = s.TRUE) -> list[Outcome]:
    """All outcomes of running ``command`` from ``state``.

    ``axioms`` is the program's axiom conjunction; post-states that violate
    it are pruned (they are not states of the program at all).  The input
    state is assumed to satisfy the axioms.

    Pruning mirrors the reduced ``A ->`` guards of the wp operator: after a
    mutation only the axiom conjuncts *mentioning the mutated symbol* are
    re-evaluated -- the others are untouched by the mutation and hold by
    assumption.  Rigid-symbol axioms (ring topologies, total orders) are
    typically high-arity, so skipping them makes successor enumeration on
    larger CTIs feasible.
    """
    conjuncts = tuple(axioms.args) if isinstance(axioms, s.And) else (axioms,)
    guards: dict = {}
    for conjunct in conjuncts:
        if conjunct == s.TRUE:
            continue
        for symbol in s.symbols_of(conjunct):
            guards.setdefault(symbol, []).append(conjunct)
    return _dedupe(_run(command, state, guards))


def successors(program: Program, state: Structure) -> list[Outcome]:
    """All outcomes of one loop iteration of ``program`` from ``state``."""
    return execute(program.body, state, program.axiom_formula)


def _dedupe(outcomes: list[Outcome]) -> list[Outcome]:
    seen: set[tuple] = set()
    unique: list[Outcome] = []
    for outcome in outcomes:
        key = (_state_key(outcome.state), outcome.labels)
        if key not in seen:
            seen.add(key)
            unique.append(outcome)
    return unique


def _state_key(state: Structure | None) -> tuple | None:
    if state is None:
        return None
    rel_part = tuple(
        (rel.name, tuple(sorted(tuple(e.name for e in t) for t in state.rels.get(rel, frozenset()))))
        for rel in state.vocab.relations
    )
    func_part = tuple(
        (
            func.name,
            tuple(
                sorted(
                    (tuple(e.name for e in args), value.name)
                    for args, value in state.funcs[func].items()
                )
            ),
        )
        for func in state.vocab.functions
    )
    return rel_part + func_part


def _run(command: Command, state: Structure, guards: dict) -> list[Outcome]:
    if isinstance(command, Skip):
        return [Outcome(state)]
    if isinstance(command, Abort):
        return [Outcome(None)]
    if isinstance(command, UpdateRel):
        return _prune(Outcome(_apply_rel_update(command, state)), command.rel, guards)
    if isinstance(command, UpdateFunc):
        return _prune(Outcome(_apply_func_update(command, state)), command.func, guards)
    if isinstance(command, Havoc):
        out: list[Outcome] = []
        for elem in state.universe[command.var.sort]:
            candidate = Outcome(state.with_func(command.var, {(): elem}))
            out.extend(_prune(candidate, command.var, guards))
        return out
    if isinstance(command, Assume):
        return [Outcome(state)] if state.satisfies(command.formula) else []
    if isinstance(command, Seq):
        pending = [Outcome(state)]
        for child in command.commands:
            advanced: list[Outcome] = []
            for outcome in pending:
                if outcome.state is None:
                    advanced.append(outcome)
                    continue
                for nxt in _run(child, outcome.state, guards):
                    advanced.append(Outcome(nxt.state, outcome.labels + nxt.labels))
            pending = advanced
        return pending
    if isinstance(command, Choice):
        out = []
        for index, branch in enumerate(command.branches):
            label = command.branch_label(index)
            for outcome in _run(branch, state, guards):
                out.append(Outcome(outcome.state, (label,) + outcome.labels))
        return out
    raise TypeError(f"not a command: {command!r}")


def _prune(outcome: Outcome, symbol, guards: dict) -> list[Outcome]:
    """Mutations that leave the axiom-satisfying space have no successor.

    This mirrors the reduced ``A ->`` guard in the wp rules (Figure 13):
    the guard applies at every mutating command, restricted to the axiom
    conjuncts that mention the mutated symbol.
    """
    relevant = guards.get(symbol)
    if relevant and outcome.state is not None:
        if not all(outcome.state.satisfies(conjunct) for conjunct in relevant):
            return []
    return [outcome]


def _apply_rel_update(command: UpdateRel, state: Structure) -> Structure:
    tuples: set[tuple[Elem, ...]] = set()
    domains = [state.universe[sort] for sort in command.rel.arg_sorts]
    for combo in itertools.product(*domains):
        assignment = dict(zip(command.params, combo))
        if state.eval_formula(command.formula, assignment):
            tuples.add(combo)
    return state.with_rel(command.rel, tuples)


def _apply_func_update(command: UpdateFunc, state: Structure) -> Structure:
    table: dict[tuple[Elem, ...], Elem] = {}
    domains = [state.universe[sort] for sort in command.func.arg_sorts]
    for combo in itertools.product(*domains):
        assignment = dict(zip(command.params, combo))
        table[combo] = state.eval_term(command.term, assignment)
    return state.with_func(command.func, table)
