"""Transition-relation encoding of RML commands for bounded verification.

The paper's k-invariance check (Section 4.1, Eq. 3) is stated through ``wp``,
but iterating ``wp`` through a branching body duplicates the postcondition
exponentially, and a wp-based counterexample only exhibits the *initial*
state of the offending run.  This module provides the equivalent
transition-relation form: commands are symbolically executed in SSA style,

* each assignment to a mutable symbol introduces a fresh *version* of it
  (``pnd_v3``), defined pointwise: ``forall x. pnd_v3(x) <-> <rhs>``;
* ``havoc`` introduces an unconstrained fresh constant;
* ``assume`` contributes its formula over the current versions;
* each mutation re-asserts the axioms that mention mutated symbols (the
  ``A ->`` guard of the wp rules: leaving the axiom space blocks the path);
* paths through ``choice`` are enumerated and tied together with nullary
  *selector* relations, so a satisfying model identifies which action ran --
  that is what lets BMC print the labeled traces of Figure 4.

All constraints stay in exists*forall* form: the universal definitions and
existential assumes sit under conjunction/disjunction only, so prenexing
yields EPR (Lemma 3.2's transition-relation analogue).  A SAT model of

``A & Init(V_0) & T(V_0, V_1) & ... & T(V_{k-1}, V_k) & ~phi(V_j)``

is a single finite first-order structure over all symbol versions; the
projection :func:`project_state` reads out the j-th program state, giving a
trace with *unbounded* state size but bounded length -- exactly the paper's
contrast with finite-state BMC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..logic import syntax as s
from ..logic.sorts import Decl, FuncDecl, RelDecl, Vocabulary
from ..logic.structures import Structure
from ..logic.subst import FreshNames, rename_symbols
from .ast import (
    Abort,
    Assume,
    Choice,
    Command,
    Havoc,
    Program,
    Seq,
    Skip,
    UpdateFunc,
    UpdateRel,
)

Env = dict[Decl, Decl]


@dataclass(frozen=True)
class _Path:
    """One straight-line execution prefix through a command."""

    env: Env
    constraints: tuple[s.Formula, ...]
    labels: tuple[str, ...]
    aborted: bool = False


@dataclass(frozen=True)
class StepEncoding:
    """The encoding of one execution of a loop-free command."""

    pre_env: Env
    post_env: Env
    formula: s.Formula  # non-aborting executions, with path selectors
    abort_formula: s.Formula  # "some execution reaches abort from the pre state"
    selectors: tuple[tuple[RelDecl, tuple[str, ...]], ...]  # selector -> path labels


class TransitionEncoder:
    """Produces step encodings and maintains the extended vocabulary."""

    def __init__(self, program: Program) -> None:
        self.program = program
        # Deterministic iteration order: mutable_symbols() is a frozenset,
        # and iterating it directly would let hash randomization decide the
        # version-symbol minting order -- two interpreters would encode the
        # same step with differently named symbols, splitting the
        # cross-process query cache and making traces incomparable.
        mutable_set = program.mutable_symbols()
        self.mutable = tuple(
            sorted(mutable_set, key=lambda d: (type(d).__name__, d.name))
        )
        names = [decl.name for decl in program.vocab.relations]
        names += [decl.name for decl in program.vocab.functions]
        self._fresh = FreshNames(names)
        self.new_relations: list[RelDecl] = []
        self.new_functions: list[FuncDecl] = []
        # Version sharing: two execution paths assigning a symbol whose
        # current version is the same are *alternatives* (disjuncts of the
        # step formula), so they may define one shared next version -- the
        # same argument that lets Skolem constants be shared across
        # disjuncts.  Sharing keeps the ground universe small: a step's
        # havocs contribute max-over-paths constants instead of
        # sum-over-paths.  Encodings produced from the same pre-environment
        # must therefore never be asserted jointly unless they are genuine
        # alternatives (the bounded checker respects this: each probe gets
        # its own solver).
        self._version_cache: dict[tuple[Decl, Decl], Decl] = {}
        # Axioms that mention mutable symbols must be re-asserted after each
        # mutation of those symbols (the A-guard of the wp rules).
        self._guard_axioms = [
            axiom.formula
            for axiom in program.axioms
            if s.symbols_of(axiom.formula) & mutable_set
        ]

    # ------------------------------------------------------------ plumbing

    def base_env(self) -> Env:
        """The identity environment: version 0 is the original vocabulary."""
        return {decl: decl for decl in self.mutable}

    def extended_vocab(self) -> Vocabulary:
        """The program vocabulary plus every version/selector created so far."""
        return self.program.vocab.extended(
            relations=self.new_relations, functions=self.new_functions
        )

    def _new_version(self, decl: Decl, current: Decl | None = None) -> Decl:
        """A fresh version of ``decl``; shared across alternative paths when
        the assignment starts from the same ``current`` version."""
        if current is not None:
            cached = self._version_cache.get((decl, current))
            if cached is not None:
                return cached
        name = self._fresh(f"{decl.name}_v")
        if isinstance(decl, RelDecl):
            version: Decl = RelDecl(name, decl.arg_sorts)
            self.new_relations.append(version)
        else:
            version = FuncDecl(name, decl.arg_sorts, decl.sort)
            self.new_functions.append(version)
        if current is not None:
            self._version_cache[(decl, current)] = version
        return version

    def _new_selector(self, hint: str) -> RelDecl:
        selector = RelDecl(self._fresh(hint), ())
        self.new_relations.append(selector)
        return selector

    def _rename(self, formula: s.Formula, env: Env) -> s.Formula:
        mapping = {old: new for old, new in env.items() if old != new}
        if not mapping:
            return formula
        return rename_symbols(formula, mapping)  # type: ignore[return-value]

    # ------------------------------------------------------------ execution

    def _execute(self, command: Command, path: _Path) -> list[_Path]:
        if path.aborted:
            return [path]
        if isinstance(command, Skip):
            return [path]
        if isinstance(command, Abort):
            return [_Path(path.env, path.constraints, path.labels, aborted=True)]
        if isinstance(command, UpdateRel):
            version = self._new_version(command.rel, path.env[command.rel])
            rhs = self._rename(command.formula, path.env)
            definition = s.forall(
                command.params,
                s.iff(s.Rel(version, command.params), rhs),
            ) if command.params else s.iff(s.Rel(version, ()), rhs)
            env = dict(path.env)
            env[command.rel] = version
            constraints = path.constraints + (definition, *self._guards(env))
            return [_Path(env, constraints, path.labels)]
        if isinstance(command, UpdateFunc):
            version = self._new_version(command.func, path.env[command.func])
            rhs = self._rename_term(command.term, path.env)
            head = s.App(version, command.params)
            body = s.eq(head, rhs)
            definition = s.forall(command.params, body) if command.params else body
            env = dict(path.env)
            env[command.func] = version
            constraints = path.constraints + (definition, *self._guards(env))
            return [_Path(env, constraints, path.labels)]
        if isinstance(command, Havoc):
            version = self._new_version(command.var, path.env[command.var])
            env = dict(path.env)
            env[command.var] = version
            constraints = path.constraints + tuple(self._guards(env))
            return [_Path(env, constraints, path.labels)]
        if isinstance(command, Assume):
            renamed = self._rename(command.formula, path.env)
            return [_Path(path.env, path.constraints + (renamed,), path.labels)]
        if isinstance(command, Seq):
            paths = [path]
            for child in command.commands:
                advanced: list[_Path] = []
                for current in paths:
                    advanced.extend(self._execute(child, current))
                paths = advanced
            return paths
        if isinstance(command, Choice):
            out: list[_Path] = []
            for index, branch in enumerate(command.branches):
                label = command.branch_label(index)
                labeled = _Path(path.env, path.constraints, path.labels + (label,))
                out.extend(self._execute(branch, labeled))
            return out
        raise TypeError(f"not a command: {command!r}")

    def _guards(self, env: Env) -> list[s.Formula]:
        return [self._rename(axiom, env) for axiom in self._guard_axioms]

    def _rename_term(self, term: s.Term, env: Env) -> s.Term:
        mapping = {old: new for old, new in env.items() if old != new}
        if not mapping:
            return term
        return rename_symbols(term, mapping)  # type: ignore[return-value]

    # ------------------------------------------------------------- encoding

    def encode_step(self, command: Command, pre_env: Env, step_name: str) -> StepEncoding:
        """Encode one execution of ``command`` starting from ``pre_env``."""
        start = _Path(dict(pre_env), (), ())
        paths = self._execute(command, start)
        normal = [p for p in paths if not p.aborted]
        aborted = [p for p in paths if p.aborted]

        post_env: Env = {}
        for decl in self.mutable:
            post_env[decl] = self._new_version(decl)

        selector_info: list[tuple[RelDecl, tuple[str, ...]]] = []
        implications: list[s.Formula] = []
        any_path: list[s.Formula] = []
        for index, path in enumerate(normal):
            bindings = tuple(
                self._binding(decl, path.env[decl], post_env[decl])
                for decl in self.mutable
            )
            path_formula = s.and_(*path.constraints, *bindings)
            selector = self._new_selector(f"{step_name}_path{index}")
            selector_atom = s.Rel(selector, ())
            selector_info.append((selector, path.labels))
            implications.append(s.implies(selector_atom, path_formula))
            any_path.append(selector_atom)
        if normal:
            formula = s.and_(s.or_(*any_path), *implications)
        else:
            formula = s.FALSE
        abort_formula = s.or_(*(s.and_(*p.constraints) for p in aborted))
        return StepEncoding(
            pre_env=dict(pre_env),
            post_env=post_env,
            formula=formula,
            abort_formula=abort_formula,
            selectors=tuple(selector_info),
        )

    def _binding(self, original: Decl, final: Decl, post: Decl) -> s.Formula:
        params = tuple(
            s.Var(f"B{index}", sort) for index, sort in enumerate(original.arg_sorts)
        )
        if isinstance(original, RelDecl):
            body = s.iff(s.Rel(post, params), s.Rel(final, params))
        else:
            body = s.eq(s.App(post, params), s.App(final, params))
        return s.forall(params, body) if params else body


def project_state(
    model: Structure, program: Program, env: Mapping[Decl, Decl]
) -> Structure:
    """Read the program state at a given version environment out of a model.

    ``model`` is a structure over the encoder's extended vocabulary; the
    result is a structure over the *program* vocabulary whose mutable
    symbols take their interpretation from the versions in ``env``.
    """
    rels = {}
    for rel in program.vocab.relations:
        source = env.get(rel, rel)
        rels[rel] = model.rels.get(source, frozenset())
    funcs = {}
    for func in program.vocab.functions:
        source = env.get(func, func)
        funcs[func] = dict(model.funcs[source])
    universe = {sort: model.universe[sort] for sort in program.vocab.sorts}
    return Structure(program.vocab, universe, rels, funcs)
