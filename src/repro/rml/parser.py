"""Concrete syntax for RML programs.

The paper presents RML models as programs of the Figure 1 shape: sorted
declarations, axioms, an initialization block, and a nondeterministic loop
that asserts the safety properties and then chooses an operation.  This
parser accepts exactly that shape::

    program leader_election

    sort node
    sort id

    relation le : id, id
    relation leader : node
    function idn : node -> id
    variable n : node

    axiom unique_ids: forall N1, N2. N1 ~= N2 -> idn(N1) ~= idn(N2)

    init {
        assume forall X:node. ~leader(X);
    }

    safety single_leader: forall N1, N2. leader(N1) & leader(N2) -> N1 = N2

    action send {
        havoc n;
        insert pnd(idn(n), m);
    }

The loop body is ``assert <each safety>; (action_1 | ... | action_k)``,
matching Figure 1's structure (the safety assertion at the loop head, then
the nondeterministic choice of operations).  Statements::

    skip;  abort;
    assume <formula-EA>;                assert <formula-AE>;
    havoc <variable>;    <variable> := *;    <variable> := <term>;
    insert r(t1, ..);    remove r(t1, ..);
    update r(X, Y) := <QF formula over X, Y>;
    update f(X) := <term over X>;
    f(t1, ..) := <term>;                # point update (Figure 12 sugar)
    if <formula-AF> { ... } [else { ... }];
    either { ... } or { ... } [or { ... }];     # nondeterministic choice

Formulas use the syntax of :mod:`repro.logic.parser`; an optional ``final``
block gives ``C_final``.  The result is a fully checked
:class:`repro.rml.ast.Program`.
"""

from __future__ import annotations

from ..logic import syntax as s
from ..logic.lexer import ParseError, Token, TokenStream, tokenize
from ..logic.parser import _Elaborator, _FormulaParser, _Scope
from ..logic.sorts import FuncDecl, RelDecl, Sort, Vocabulary
from .ast import (
    Abort,
    Assume,
    Axiom,
    Command,
    Havoc,
    Invariant,
    Program,
    ProofDecl,
    Skip,
    UpdateFunc,
    UpdateRel,
    choice,
    seq,
)
from ..logic.lexer import Span
from .sugar import SugarError, assert_, assign, if_, insert, remove
from .typecheck import check_program


def _spanned(command: Command, span: Span) -> Command:
    """Attach ``span`` to a freshly built command (in place, frozen or not)."""
    if getattr(command, "span", None) is None:
        object.__setattr__(command, "span", span)
    return command


class _ProgramParser:
    def __init__(self, source: str, check: bool = True) -> None:
        self.stream = TokenStream(tokenize(source))
        self.check = check
        self.name = "program"
        self.sorts: list[Sort] = []
        self.relations: list[RelDecl] = []
        self.functions: list[FuncDecl] = []
        self.axioms: list[Axiom] = []
        self.safeties: list[tuple[str, s.Formula, Span]] = []
        self.invariants: list[Invariant] = []
        self.proofs: list[ProofDecl] = []
        self.decl_spans: dict[str, Span] = {}
        self.init_command: Command = Skip()
        self.final_command: Command = Skip()
        self.actions: list[tuple[str, Command]] = []
        self._vocab: Vocabulary | None = None

    # ------------------------------------------------------------- helpers

    @property
    def vocab(self) -> Vocabulary:
        if self._vocab is None:
            self._vocab = Vocabulary(
                tuple(self.sorts), tuple(self.relations), tuple(self.functions)
            )
        return self._vocab

    def _invalidate(self) -> None:
        self._vocab = None

    def _sort(self, token: Token) -> Sort:
        sort = Sort(token.text)
        if sort not in self.sorts:
            raise ParseError(f"unknown sort {token.text!r}", token)
        return sort

    def _sort_list(self) -> list[Sort]:
        sorts = [self._sort(self.stream.expect_ident("sort"))]
        while self.stream.accept(","):
            sorts.append(self._sort(self.stream.expect_ident("sort")))
        return sorts

    def _formula(self, free: dict[str, Sort] | None = None) -> s.Formula:
        parser = _FormulaParser(self.stream)
        tree = parser.formula()
        elaborator = _Elaborator(self.vocab, dict(free or {}))
        elaborator._quant_slots = {}
        scope = _Scope({})
        elaborator.infer(tree, scope)
        return elaborator.build(tree, scope)

    def _term(self, free: dict[str, Sort] | None = None) -> s.Term:
        parser = _FormulaParser(self.stream)
        tree = parser.term()
        elaborator = _Elaborator(self.vocab, dict(free or {}))
        elaborator._quant_slots = {}
        scope = _Scope({})
        elaborator.infer_term(tree, None, scope)
        return elaborator.build_term(tree, scope)

    # ---------------------------------------------------------- top level

    def parse(self) -> Program:
        stream = self.stream
        if stream.at_ident() and stream.current.text == "program":
            stream.advance()
            self.name = stream.expect_ident("program name").text
        while stream.current.kind != "eof":
            token = stream.current
            word = token.text
            if word == "sort":
                stream.advance()
                ident = stream.expect_ident("sort name")
                self.sorts.append(Sort(ident.text))
                self.decl_spans[ident.text] = ident.span
                self._invalidate()
            elif word == "relation":
                stream.advance()
                ident = stream.expect_ident("relation name")
                arg_sorts: list[Sort] = []
                if stream.accept(":"):
                    arg_sorts = self._sort_list()
                self.relations.append(RelDecl(ident.text, tuple(arg_sorts)))
                self.decl_spans[ident.text] = ident.span
                self._invalidate()
            elif word == "function":
                stream.advance()
                ident = stream.expect_ident("function name")
                stream.expect(":")
                arg_sorts = self._sort_list()
                stream.expect("->")
                result = self._sort(stream.expect_ident("sort"))
                self.functions.append(FuncDecl(ident.text, tuple(arg_sorts), result))
                self.decl_spans[ident.text] = ident.span
                self._invalidate()
            elif word == "variable":
                stream.advance()
                ident = stream.expect_ident("variable name")
                stream.expect(":")
                sort = self._sort(stream.expect_ident("sort"))
                self.functions.append(FuncDecl(ident.text, (), sort))
                self.decl_spans[ident.text] = ident.span
                self._invalidate()
            elif word == "axiom":
                stream.advance()
                ident = stream.expect_ident("axiom name")
                stream.expect(":")
                self.axioms.append(Axiom(ident.text, self._formula(), span=ident.span))
            elif word == "safety":
                stream.advance()
                ident = stream.expect_ident("safety name")
                stream.expect(":")
                self.safeties.append((ident.text, self._formula(), ident.span))
            elif word == "invariant":
                stream.advance()
                ident = stream.expect_ident("invariant name")
                stream.expect(":")
                self.invariants.append(
                    Invariant(ident.text, self._formula(), span=ident.span)
                )
            elif word == "proof":
                stream.advance()
                self.proofs.append(self._proof_decl())
            elif word == "init":
                stream.advance()
                self.init_command = self._block()
            elif word == "final":
                stream.advance()
                self.final_command = self._block()
            elif word == "action":
                stream.advance()
                name = stream.expect_ident("action name").text
                self.actions.append((name, self._block()))
            else:
                raise ParseError(f"unexpected declaration {token}", token)
        return self._build(check=self.check)

    def _proof_decl(self) -> ProofDecl:
        """``proof <name> proves <inv, ...> [with <lemma, ...>]``."""
        stream = self.stream
        ident = stream.expect_ident("proof name")
        keyword = stream.expect_ident("'proves'")
        if keyword.text != "proves":
            raise ParseError("expected 'proves' after proof name", keyword)
        proves, prove_spans = self._name_list("invariant name")
        uses: list[str] = []
        use_spans: list[Span | None] = []
        if stream.at_ident() and stream.current.text == "with":
            stream.advance()
            uses, use_spans = self._name_list("lemma name")
        return ProofDecl(
            ident.text,
            tuple(proves),
            tuple(uses),
            span=ident.span,
            prove_spans=tuple(prove_spans),
            use_spans=tuple(use_spans),
        )

    def _name_list(self, what: str) -> tuple[list[str], list[Span | None]]:
        names: list[str] = []
        spans: list[Span | None] = []
        token = self.stream.expect_ident(what)
        names.append(token.text)
        spans.append(token.span)
        while self.stream.accept(","):
            token = self.stream.expect_ident(what)
            names.append(token.text)
            spans.append(token.span)
        return names, spans

    def _build(self, check: bool = True) -> Program:
        asserts = []
        for name, formula, span in self.safeties:
            try:
                asserts.append(_spanned(assert_(formula, label=name), span))
            except SugarError as error:
                raise ParseError(
                    f"safety {name!r}: {error}",
                    Token("ident", name, span.line, span.col),
                ) from error
        if len(self.actions) > 1:
            labels = tuple(name for name, _ in self.actions)
            body = seq(*asserts, choice(*(c for _, c in self.actions), labels=labels))
        elif self.actions:
            body = seq(*asserts, self.actions[0][1])
        else:
            body = seq(*asserts)
        program = Program(
            name=self.name,
            vocab=self.vocab,
            axioms=tuple(self.axioms),
            init=self.init_command,
            body=body,
            final=self.final_command,
            invariants=tuple(self.invariants),
            proofs=tuple(self.proofs),
            decl_spans=dict(self.decl_spans),
        )
        if check:
            check_program(program)
        return program

    # ------------------------------------------------------------- blocks

    def _block(self) -> Command:
        opening = self.stream.expect("{")
        commands: list[Command] = []
        while not self.stream.at("}"):
            commands.append(self._statement())
            self.stream.expect(";")
        self.stream.expect("}")
        return _spanned(seq(*commands), opening.span)

    def _statement(self) -> Command:
        token = self.stream.current
        try:
            command = self._statement_inner()
        except SugarError as error:
            raise ParseError(str(error), token) from error
        return _spanned(command, token.span)

    def _statement_inner(self) -> Command:
        stream = self.stream
        token = stream.current
        word = token.text
        if word == "skip":
            stream.advance()
            return Skip()
        if word == "abort":
            stream.advance()
            return Abort()
        if word == "assume":
            stream.advance()
            return Assume(self._formula())
        if word == "assert":
            stream.advance()
            return assert_(self._formula())
        if word == "havoc":
            stream.advance()
            name = stream.expect_ident("variable name")
            decl = self.vocab.get(name.text)
            if not isinstance(decl, FuncDecl) or not decl.is_constant:
                raise ParseError(f"{name.text!r} is not a program variable", name)
            return Havoc(decl)
        if word in ("insert", "remove"):
            stream.advance()
            name = stream.expect_ident("relation name")
            decl = self.vocab.get(name.text)
            if not isinstance(decl, RelDecl):
                raise ParseError(f"{name.text!r} is not a relation", name)
            args: list[s.Term] = []
            if decl.arity:
                stream.expect("(")
                args.append(self._term())
                while stream.accept(","):
                    args.append(self._term())
                stream.expect(")")
            ctor = insert if word == "insert" else remove
            return ctor(decl, *args)
        if word == "update":
            stream.advance()
            return self._bulk_update()
        if word == "if":
            stream.advance()
            condition = self._formula()
            then = self._block()
            otherwise: Command = Skip()
            if stream.at_ident() and stream.current.text == "else":
                stream.advance()
                otherwise = self._block()
            return if_(condition, then, otherwise)
        if word == "either":
            stream.advance()
            branches = [self._block()]
            while stream.at_ident() and stream.current.text == "or":
                stream.advance()
                branches.append(self._block())
            if len(branches) < 2:
                raise ParseError("'either' needs at least one 'or' branch", token)
            return choice(*branches)
        # Assignment forms: v := term / v := * / f(t, ..) := term.
        name = stream.expect_ident("statement")
        decl = self.vocab.get(name.text)
        if not isinstance(decl, FuncDecl):
            raise ParseError(
                f"unknown statement or assignable symbol {name.text!r}", name
            )
        args: list[s.Term] = []
        if stream.at("("):
            stream.expect("(")
            args.append(self._term())
            while stream.accept(","):
                args.append(self._term())
            stream.expect(")")
        stream.expect(":=")
        if stream.at("*"):
            stream.advance()
            if args:
                raise ParseError("':= *' (havoc) applies to program variables", name)
            return Havoc(decl)
        value = self._term()
        return assign(decl, tuple(args), value)

    def _bulk_update(self) -> Command:
        stream = self.stream
        name = stream.expect_ident("relation or function name")
        decl = self.vocab.get(name.text)
        if decl is None:
            raise ParseError(f"unknown symbol {name.text!r}", name)
        params: list[s.Var] = []
        arg_sorts = decl.arg_sorts
        if not arg_sorts:
            # Optional empty parens: ``update r() := phi``.
            if stream.accept("("):
                stream.expect(")")
        if arg_sorts:
            stream.expect("(")
            index = 0
            while True:
                param = stream.expect_ident("parameter variable")
                if param.text in self.vocab:
                    raise ParseError(
                        f"update parameter {param.text!r} shadows a declared symbol",
                        param,
                    )
                if index >= len(arg_sorts):
                    raise ParseError(f"too many parameters for {name.text!r}", param)
                params.append(s.Var(param.text, arg_sorts[index]))
                index += 1
                if not stream.accept(","):
                    break
            stream.expect(")")
            if len(params) != len(arg_sorts):
                raise ParseError(f"too few parameters for {name.text!r}", name)
        stream.expect(":=")
        free = {var.name: var.sort for var in params}
        if isinstance(decl, RelDecl):
            formula = self._formula(free)
            return UpdateRel(decl, tuple(params), formula)
        term = self._term(free)
        return UpdateFunc(decl, tuple(params), term)


def parse_program(source: str, check: bool = True) -> Program:
    """Parse (and, unless ``check=False``, typecheck) an RML program.

    With ``check=False`` the program is returned as parsed so that callers
    like ``repro lint`` can run the collect-all diagnostics pass
    (:func:`repro.rml.typecheck.program_diagnostics`) themselves instead of
    stopping at the first :class:`~repro.rml.typecheck.ProgramError`.
    """
    return _ProgramParser(source, check=check).parse()
