"""Static checks enforcing the RML restrictions (Sections 3.1 and 3.3).

A program is *well formed* when:

1. its vocabulary's function symbols are stratified;
2. every relation update's right-hand side is quantifier free and mentions
   only the update parameters as free variables;
3. every function update's right-hand side is a term over the parameters
   whose ``ite`` conditions are quantifier free;
4. every ``assume`` (and every axiom) is a *closed* exists*forall* formula;
5. all symbols used belong to the program vocabulary.

Together these guarantee Lemma 3.2 / Theorem 3.3: every verification
condition the tool generates is decidable EPR (checked again dynamically by
the solver, but a well-formedness error here points at the offending command
instead of a solver failure later).
"""

from __future__ import annotations

from ..logic import syntax as s
from ..logic.fragments import is_exists_forall, is_quantifier_free
from ..logic.sorts import StratificationError, Vocabulary
from .ast import (
    Abort,
    Assume,
    Choice,
    Command,
    Havoc,
    Program,
    Seq,
    Skip,
    UpdateFunc,
    UpdateRel,
)


class ProgramError(Exception):
    """A violation of the RML well-formedness restrictions."""


def check_program(program: Program) -> None:
    """Raise :class:`ProgramError` unless ``program`` is well-formed RML."""
    try:
        program.vocab.check_stratified()
    except StratificationError as error:
        raise ProgramError(f"{program.name}: {error}") from error
    for axiom in program.axioms:
        if s.free_vars(axiom.formula):
            raise ProgramError(f"axiom {axiom.name!r} is not closed")
        if not is_exists_forall(axiom.formula):
            raise ProgramError(
                f"axiom {axiom.name!r} is not an exists*forall* formula"
            )
        _check_symbols(axiom.formula, program.vocab, f"axiom {axiom.name!r}")
    for label, command in (
        ("init", program.init),
        ("body", program.body),
        ("final", program.final),
    ):
        check_command(command, program.vocab, where=f"{program.name}.{label}")


def check_command(command: Command, vocab: Vocabulary, where: str = "command") -> None:
    if isinstance(command, (Skip, Abort)):
        return
    if isinstance(command, UpdateRel):
        if vocab.get(command.rel.name) != command.rel:
            raise ProgramError(f"{where}: update of undeclared relation {command.rel.name!r}")
        if not is_quantifier_free(command.formula):
            raise ProgramError(
                f"{where}: update of {command.rel.name!r} is not quantifier free"
            )
        extra = s.free_vars(command.formula) - set(command.params)
        if extra:
            names = ", ".join(sorted(v.name for v in extra))
            raise ProgramError(
                f"{where}: update of {command.rel.name!r} has stray free variables: {names}"
            )
        _check_symbols(command.formula, vocab, where)
        return
    if isinstance(command, UpdateFunc):
        if vocab.get(command.func.name) != command.func:
            raise ProgramError(f"{where}: update of undeclared function {command.func.name!r}")
        extra = s.free_vars(command.term) - set(command.params)
        if extra:
            names = ", ".join(sorted(v.name for v in extra))
            raise ProgramError(
                f"{where}: update of {command.func.name!r} has stray free variables: {names}"
            )
        _check_term(command.term, vocab, where)
        return
    if isinstance(command, Havoc):
        if vocab.get(command.var.name) != command.var:
            raise ProgramError(f"{where}: havoc of undeclared variable {command.var.name!r}")
        return
    if isinstance(command, Assume):
        if s.free_vars(command.formula):
            raise ProgramError(f"{where}: assume formula is not closed")
        if not is_exists_forall(command.formula):
            raise ProgramError(
                f"{where}: assume formula is not exists*forall*: {command.formula}"
            )
        _check_symbols(command.formula, vocab, where)
        return
    if isinstance(command, Seq):
        for child in command.commands:
            check_command(child, vocab, where)
        return
    if isinstance(command, Choice):
        for child in command.branches:
            check_command(child, vocab, where)
        return
    raise TypeError(f"not a command: {command!r}")


def _check_symbols(formula: s.Formula, vocab: Vocabulary, where: str) -> None:
    for decl in s.symbols_of(formula):
        if vocab.get(decl.name) != decl:
            raise ProgramError(f"{where}: symbol {decl.name!r} not in the program vocabulary")


def _check_term(term: s.Term, vocab: Vocabulary, where: str) -> None:
    if isinstance(term, s.Var):
        return
    if isinstance(term, s.App):
        if vocab.get(term.func.name) != term.func:
            raise ProgramError(f"{where}: symbol {term.func.name!r} not in the program vocabulary")
        for arg in term.args:
            _check_term(arg, vocab, where)
        return
    if isinstance(term, s.Ite):
        if not is_quantifier_free(term.cond):
            raise ProgramError(f"{where}: ite condition is not quantifier free")
        _check_symbols(term.cond, vocab, where)
        _check_term(term.then, vocab, where)
        _check_term(term.els, vocab, where)
        return
    raise TypeError(f"not a term: {term!r}")
