"""Static checks enforcing the RML restrictions (Sections 3.1 and 3.3).

A program is *well formed* when:

1. its vocabulary's function symbols are stratified;
2. every relation update's right-hand side is quantifier free and mentions
   only the update parameters as free variables;
3. every function update's right-hand side is a term over the parameters
   whose ``ite`` conditions are quantifier free;
4. every ``assume`` (and every axiom) is a *closed* exists*forall* formula;
5. all symbols used belong to the program vocabulary.

Together these guarantee Lemma 3.2 / Theorem 3.3: every verification
condition the tool generates is decidable EPR.

The checkers collect **all** violations as :class:`~repro.analysis.
diagnostics.Diagnostic` values (codes ``RML001``-``RML009``, each with a
source span when the program came from the parser): see
:func:`program_diagnostics` / :func:`command_diagnostics`.  The original
raise-on-first-error API is preserved by the thin wrappers
:func:`check_program` / :func:`check_command`, which raise a
:class:`ProgramError` carrying the full diagnostic list in its
``diagnostics`` attribute.
"""

from __future__ import annotations

from ..analysis.diagnostics import Diagnostic, Diagnostics, Note, Severity
from ..logic import syntax as s
from ..logic.fragments import is_exists_forall, is_quantifier_free, is_universal
from ..logic.lexer import Span
from ..logic.sorts import StratificationError, Vocabulary
from .ast import (
    Abort,
    Assume,
    Choice,
    Command,
    Havoc,
    Program,
    Seq,
    Skip,
    UpdateFunc,
    UpdateRel,
)


class ProgramError(Exception):
    """A violation of the RML well-formedness restrictions.

    ``diagnostics`` holds every violation found (not just the first one
    this exception's message reports).
    """

    def __init__(
        self, message: str, diagnostics: tuple[Diagnostic, ...] = ()
    ) -> None:
        super().__init__(message)
        self.diagnostics = diagnostics


def program_diagnostics(program: Program) -> tuple[Diagnostic, ...]:
    """Collect every well-formedness violation in ``program``."""
    sink = Diagnostics()
    try:
        program.vocab.check_stratified()
    except StratificationError as error:
        sink.emit("RML001", f"{program.name}: {error}", span=_decl_span(program, error))
    for axiom in program.axioms:
        where = f"axiom {axiom.name!r}"
        span = axiom.span or s.span_of(axiom.formula)
        if s.free_vars(axiom.formula):
            sink.emit("RML002", f"{where} is not closed", span=span)
        elif not is_exists_forall(axiom.formula):
            sink.emit("RML003", f"{where} is not an exists*forall* formula", span=span)
        _symbol_diagnostics(axiom.formula, program.vocab, where, span, sink)
    for label, command in (
        ("init", program.init),
        ("body", program.body),
        ("final", program.final),
    ):
        command_diagnostics(command, program.vocab, f"{program.name}.{label}", sink)
    _proof_diagnostics(program, sink)
    return sink.items


def _proof_diagnostics(program: Program, sink: Diagnostics) -> None:
    """Check the proof-management declarations (codes ``RML301``-``RML305``).

    Name resolution and formula-shape checks live here; the dependency
    cycle check is delegated to :mod:`repro.proof.dag` (imported lazily --
    the proof layer sits above ``rml`` in the package hierarchy).
    """
    from ..proof.dag import build_dag, cycle_diagnostics, provers_of

    invariant_spans: dict[str, Span | None] = {}
    for invariant in program.invariants:
        where = f"invariant {invariant.name!r}"
        span = invariant.span or s.span_of(invariant.formula)
        if invariant.name in invariant_spans:
            sink.emit(
                "RML302",
                f"duplicate {where}",
                span=span,
                notes=[Note("first declared here", invariant_spans[invariant.name])],
            )
        else:
            invariant_spans[invariant.name] = span
        if s.free_vars(invariant.formula):
            sink.emit("RML305", f"{where} is not closed", span=span)
        elif not is_universal(invariant.formula):
            sink.emit(
                "RML305",
                f"{where} is not a universal (forall*) formula",
                span=span,
            )
        _symbol_diagnostics(invariant.formula, program.vocab, where, span, sink)

    proof_spans: dict[str, Span | None] = {}
    for proof in program.proofs:
        if proof.name in proof_spans:
            sink.emit(
                "RML302",
                f"duplicate proof {proof.name!r}",
                span=proof.span,
                notes=[Note("first declared here", proof_spans[proof.name])],
            )
        else:
            proof_spans[proof.name] = proof.span

    provers = provers_of(program.proofs)
    for proof in program.proofs:
        prove_spans = proof.prove_spans or (None,) * len(proof.proves)
        for name, span in zip(proof.proves, prove_spans):
            if name not in invariant_spans:
                sink.emit(
                    "RML301",
                    f"proof {proof.name!r} proves unknown invariant {name!r}",
                    span=span or proof.span,
                )
        use_spans = proof.use_spans or (None,) * len(proof.uses)
        for name, span in zip(proof.uses, use_spans):
            if name not in invariant_spans:
                sink.emit(
                    "RML301",
                    f"proof {proof.name!r} uses unknown invariant {name!r}",
                    span=span or proof.span,
                )
            elif name not in provers:
                sink.emit(
                    "RML303",
                    f"proof {proof.name!r} uses invariant {name!r}, "
                    "which no proof establishes",
                    span=span or proof.span,
                    notes=[
                        Note(
                            "an invariant without a 'proof ... proves' "
                            "declaration is checked by the implicit main "
                            "proof and cannot be assumed as a lemma",
                            invariant_spans.get(name),
                        )
                    ],
                )
    cycle_diagnostics(build_dag(program.proofs), sink)


def command_diagnostics(
    command: Command,
    vocab: Vocabulary,
    where: str = "command",
    sink: Diagnostics | None = None,
) -> tuple[Diagnostic, ...]:
    """Collect every well-formedness violation in one command tree."""
    sink = sink if sink is not None else Diagnostics()
    _check_command(command, vocab, where, sink)
    return sink.items


def _check_command(
    command: Command, vocab: Vocabulary, where: str, sink: Diagnostics
) -> None:
    span = getattr(command, "span", None)
    if isinstance(command, (Skip, Abort)):
        return
    if isinstance(command, UpdateRel):
        if vocab.get(command.rel.name) != command.rel:
            sink.emit(
                "RML007",
                f"{where}: update of undeclared relation {command.rel.name!r}",
                span=span,
            )
            return
        formula_span = s.span_of(command.formula) or span
        if not is_quantifier_free(command.formula):
            sink.emit(
                "RML004",
                f"{where}: update of {command.rel.name!r} is not quantifier free",
                span=formula_span,
            )
        extra = s.free_vars(command.formula) - set(command.params)
        if extra:
            names = ", ".join(sorted(v.name for v in extra))
            sink.emit(
                "RML005",
                f"{where}: update of {command.rel.name!r} has stray free variables: {names}",
                span=formula_span,
            )
        _symbol_diagnostics(command.formula, vocab, where, formula_span, sink)
        return
    if isinstance(command, UpdateFunc):
        if vocab.get(command.func.name) != command.func:
            sink.emit(
                "RML007",
                f"{where}: update of undeclared function {command.func.name!r}",
                span=span,
            )
            return
        term_span = s.span_of(command.term) or span
        extra = s.free_vars(command.term) - set(command.params)
        if extra:
            names = ", ".join(sorted(v.name for v in extra))
            sink.emit(
                "RML005",
                f"{where}: update of {command.func.name!r} has stray free variables: {names}",
                span=term_span,
            )
        _term_diagnostics(command.term, vocab, where, term_span, sink)
        return
    if isinstance(command, Havoc):
        if vocab.get(command.var.name) != command.var:
            sink.emit(
                "RML009",
                f"{where}: havoc of undeclared variable {command.var.name!r}",
                span=span,
            )
        return
    if isinstance(command, Assume):
        formula_span = s.span_of(command.formula) or span
        if s.free_vars(command.formula):
            sink.emit(
                "RML002", f"{where}: assume formula is not closed", span=formula_span
            )
        elif not is_exists_forall(command.formula):
            sink.emit(
                "RML003",
                f"{where}: assume formula is not exists*forall*: {command.formula}",
                span=formula_span,
            )
        _symbol_diagnostics(command.formula, vocab, where, formula_span, sink)
        return
    if isinstance(command, Seq):
        for child in command.commands:
            _check_command(child, vocab, where, sink)
        return
    if isinstance(command, Choice):
        for child in command.branches:
            _check_command(child, vocab, where, sink)
        return
    raise TypeError(f"not a command: {command!r}")


def _symbol_diagnostics(
    formula: s.Formula,
    vocab: Vocabulary,
    where: str,
    span: Span | None,
    sink: Diagnostics,
) -> None:
    for decl in sorted(s.symbols_of(formula), key=lambda d: d.name):
        if vocab.get(decl.name) != decl:
            sink.emit(
                "RML006",
                f"{where}: symbol {decl.name!r} not in the program vocabulary",
                span=span,
            )


def _term_diagnostics(
    term: s.Term, vocab: Vocabulary, where: str, span: Span | None, sink: Diagnostics
) -> None:
    if isinstance(term, s.Var):
        return
    if isinstance(term, s.App):
        if vocab.get(term.func.name) != term.func:
            sink.emit(
                "RML006",
                f"{where}: symbol {term.func.name!r} not in the program vocabulary",
                span=term.span or span,
            )
        for arg in term.args:
            _term_diagnostics(arg, vocab, where, span, sink)
        return
    if isinstance(term, s.Ite):
        if not is_quantifier_free(term.cond):
            sink.emit(
                "RML008",
                f"{where}: ite condition is not quantifier free",
                span=s.span_of(term.cond) or term.span or span,
            )
        _symbol_diagnostics(term.cond, vocab, where, s.span_of(term.cond) or span, sink)
        _term_diagnostics(term.then, vocab, where, span, sink)
        _term_diagnostics(term.els, vocab, where, span, sink)
        return
    raise TypeError(f"not a term: {term!r}")


def _decl_span(program: Program, error: StratificationError) -> Span | None:
    """Point a stratification error at the declaration of an involved symbol."""
    for word in str(error).replace(",", " ").split():
        span = program.decl_spans.get(word.strip("'\""))
        if span is not None:
            return span
    return None


def _raise_first(diagnostics: tuple[Diagnostic, ...]) -> None:
    errors = [d for d in diagnostics if d.severity is Severity.ERROR]
    if errors:
        raise ProgramError(errors[0].message, diagnostics)


def check_program(program: Program) -> None:
    """Raise :class:`ProgramError` unless ``program`` is well-formed RML."""
    _raise_first(program_diagnostics(program))


def check_command(command: Command, vocab: Vocabulary, where: str = "command") -> None:
    """Raise :class:`ProgramError` on the first violation in one command."""
    _raise_first(command_diagnostics(command, vocab, where))
