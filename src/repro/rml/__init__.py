"""RML: the relational modeling language (paper Section 3).

Abstract syntax (:mod:`~repro.rml.ast`), the Figure 12 sugar
(:mod:`~repro.rml.sugar`), well-formedness checks
(:mod:`~repro.rml.typecheck`), weakest preconditions (:mod:`~repro.rml.wp`),
a concrete interpreter (:mod:`~repro.rml.interp`), the transition-relation
encoder used by bounded verification (:mod:`~repro.rml.encode`), and a
concrete-syntax parser (:mod:`~repro.rml.parser`).
"""

from .ast import (
    Abort,
    Assume,
    Axiom,
    Choice,
    Command,
    Havoc,
    Program,
    Seq,
    Skip,
    UpdateFunc,
    UpdateRel,
    assigned_symbols,
    choice,
    seq,
    subcommands,
)
from .interp import Outcome, execute, successors
from .sugar import (
    SugarError,
    assert_,
    assign,
    clear,
    if_,
    insert,
    insert_where,
    remove,
    remove_where,
)
from .typecheck import ProgramError, check_command, check_program
from .wp import iterated_wp, wp, wp_body_safe, wp_final_safe

__all__ = [name for name in dir() if not name.startswith("_")]
