"""Sorted first-order logic: syntax, structures, normal forms, parsing.

This package is the logical foundation of the reproduction: vocabularies and
sorts (:mod:`~repro.logic.sorts`), terms and formulas
(:mod:`~repro.logic.syntax`), finite structures and evaluation
(:mod:`~repro.logic.structures`), partial structures / diagrams / conjectures
(:mod:`~repro.logic.partial`), normal forms and skolemization
(:mod:`~repro.logic.transform`), fragment checks
(:mod:`~repro.logic.fragments`) and a concrete-syntax parser
(:mod:`~repro.logic.parser`).
"""

from .fragments import (
    is_alternation_free,
    is_exists_forall,
    is_forall_exists,
    is_quantifier_free,
    is_universal,
)
from .lexer import LexError, ParseError, Span, Token
from .parser import parse_formula, parse_term
from .partial import (
    Fact,
    PartialStructure,
    conjecture,
    diagram,
    embeds_into,
    from_structure,
    generalizes,
)
from .sorts import (
    Decl,
    FuncDecl,
    RelDecl,
    Sort,
    StratificationError,
    Vocabulary,
    vocabulary,
)
from .structures import Elem, EvaluationError, Structure, all_structures, make_structure
from .subst import (
    FreshNames,
    fresh_var,
    instantiate,
    rename_symbols,
    replace_func,
    replace_rel,
    substitute,
    substitute_term,
)
from .syntax import (
    FALSE,
    TRUE,
    And,
    App,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Ite,
    Not,
    Or,
    Rel,
    Term,
    Var,
    and_,
    constant,
    distinct,
    eq,
    exists,
    forall,
    free_vars,
    iff,
    implies,
    is_closed,
    literal,
    not_,
    or_,
    span_of,
    symbols_of,
    with_span,
)
from .transform import (
    NotInFragment,
    Prenex,
    Skolemized,
    eliminate_ite,
    nnf,
    prenex,
    skolemize_ea,
)

__all__ = [name for name in dir() if not name.startswith("_")]
