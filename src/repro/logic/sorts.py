"""Sorts, symbol declarations, and vocabularies for sorted first-order logic.

The paper (Section 3.2) represents RML program states as structures of a
sorted first-order vocabulary ``Sigma`` containing a relation symbol for every
relation, a function symbol for every function, and a nullary function symbol
for every program variable.  This module provides those building blocks:

* :class:`Sort` -- an uninterpreted sort (e.g. ``node``, ``id``).
* :class:`RelDecl` -- a sorted relation symbol.
* :class:`FuncDecl` -- a sorted function symbol (constants have arity 0).
* :class:`Vocabulary` -- an immutable collection of symbols with lookup,
  renaming helpers, and the *stratification* check required by Section 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping


@dataclass(frozen=True, slots=True)
class Sort:
    """An uninterpreted first-order sort, identified by name."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("sort name must be non-empty")

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Sort({self.name!r})"


@dataclass(frozen=True, slots=True)
class RelDecl:
    """A declared relation symbol ``r : s1, ..., sn``."""

    name: str
    arg_sorts: tuple[Sort, ...]

    @property
    def arity(self) -> int:
        return len(self.arg_sorts)

    def __str__(self) -> str:
        if not self.arg_sorts:
            return f"relation {self.name}"
        args = ", ".join(s.name for s in self.arg_sorts)
        return f"relation {self.name} : {args}"

    def __repr__(self) -> str:
        return f"RelDecl({self.name!r}, {self.arg_sorts!r})"


@dataclass(frozen=True, slots=True)
class FuncDecl:
    """A declared function symbol ``f : s1, ..., sn -> s``.

    Nullary function symbols (``arg_sorts == ()``) model both RML program
    variables and logical (Skolem) constants.
    """

    name: str
    arg_sorts: tuple[Sort, ...]
    sort: Sort

    @property
    def arity(self) -> int:
        return len(self.arg_sorts)

    @property
    def is_constant(self) -> bool:
        return not self.arg_sorts

    def __str__(self) -> str:
        if self.is_constant:
            return f"constant {self.name} : {self.sort.name}"
        args = ", ".join(s.name for s in self.arg_sorts)
        return f"function {self.name} : {args} -> {self.sort.name}"

    def __repr__(self) -> str:
        return f"FuncDecl({self.name!r}, {self.arg_sorts!r}, {self.sort!r})"


Decl = RelDecl | FuncDecl


class StratificationError(Exception):
    """Raised when a vocabulary's function symbols cannot be stratified."""


@dataclass(frozen=True)
class Vocabulary:
    """An immutable sorted first-order vocabulary.

    Holds the sorts, relation symbols and function symbols of an RML program
    (program variables are nullary functions).  Provides symbol lookup by
    name and the stratification check of Section 3.1: the sorts must admit a
    total order ``<`` such that every function ``f : s1,...,sn -> s``
    satisfies ``s < si`` for all ``i``.
    """

    sorts: tuple[Sort, ...]
    relations: tuple[RelDecl, ...]
    functions: tuple[FuncDecl, ...]
    _by_name: Mapping[str, Decl] = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        by_name: dict[str, Decl] = {}
        for decl in (*self.relations, *self.functions):
            if decl.name in by_name:
                raise ValueError(f"duplicate symbol name: {decl.name!r}")
            by_name[decl.name] = decl
        known = set(self.sorts)
        if len(known) != len(self.sorts):
            raise ValueError("duplicate sort in vocabulary")
        for decl in by_name.values():
            used = list(decl.arg_sorts)
            if isinstance(decl, FuncDecl):
                used.append(decl.sort)
            for sort in used:
                if sort not in known:
                    raise ValueError(f"symbol {decl.name!r} uses undeclared sort {sort.name!r}")
        object.__setattr__(self, "_by_name", by_name)

    # ------------------------------------------------------------- lookup

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Decl:
        return self._by_name[name]

    def get(self, name: str) -> Decl | None:
        return self._by_name.get(name)

    def relation(self, name: str) -> RelDecl:
        decl = self._by_name.get(name)
        if not isinstance(decl, RelDecl):
            raise KeyError(f"no relation named {name!r}")
        return decl

    def function(self, name: str) -> FuncDecl:
        decl = self._by_name.get(name)
        if not isinstance(decl, FuncDecl):
            raise KeyError(f"no function named {name!r}")
        return decl

    def constants(self) -> Iterator[FuncDecl]:
        """Iterate over the nullary function symbols."""
        return (f for f in self.functions if f.is_constant)

    def proper_functions(self) -> Iterator[FuncDecl]:
        """Iterate over function symbols of arity >= 1."""
        return (f for f in self.functions if not f.is_constant)

    # --------------------------------------------------------- modification

    def extended(
        self,
        *,
        sorts: Iterable[Sort] = (),
        relations: Iterable[RelDecl] = (),
        functions: Iterable[FuncDecl] = (),
    ) -> "Vocabulary":
        """Return a new vocabulary with the given symbols added."""
        new_sorts = list(self.sorts)
        for sort in sorts:
            if sort not in new_sorts:
                new_sorts.append(sort)
        return Vocabulary(
            tuple(new_sorts),
            self.relations + tuple(relations),
            self.functions + tuple(functions),
        )

    # ------------------------------------------------------- stratification

    def stratification_order(self) -> tuple[Sort, ...]:
        """Return a sort order witnessing stratification of the functions.

        Builds the dependency graph with an edge ``s -> si`` for every proper
        function ``f : s1,...,sn -> s`` (read: values of sort ``s`` are
        *below* their argument sorts) and topologically sorts it.  Raises
        :class:`StratificationError` on a cycle, e.g. when both a function
        ``node -> id`` and a function ``id -> node`` are declared.
        """
        edges: dict[Sort, set[Sort]] = {sort: set() for sort in self.sorts}
        for func in self.proper_functions():
            for arg_sort in func.arg_sorts:
                if arg_sort == func.sort:
                    raise StratificationError(
                        f"function {func.name!r} maps sort {func.sort.name!r} to itself"
                    )
                edges[func.sort].add(arg_sort)
        order: list[Sort] = []
        state: dict[Sort, int] = {}  # 0 = visiting, 1 = done

        def visit(sort: Sort, stack: tuple[Sort, ...]) -> None:
            mark = state.get(sort)
            if mark == 1:
                return
            if mark == 0:
                cycle = " -> ".join(s.name for s in (*stack, sort))
                raise StratificationError(f"function sorts are cyclic: {cycle}")
            state[sort] = 0
            for above in sorted(edges[sort], key=lambda s: s.name):
                visit(above, (*stack, sort))
            state[sort] = 1
            order.append(sort)

        for sort in self.sorts:
            visit(sort, ())
        # ``order`` lists sorts from the top of the hierarchy downward; the
        # stratification order wants result sorts strictly below argument
        # sorts, so reverse it.
        order.reverse()
        return tuple(order)

    def is_stratified(self) -> bool:
        try:
            self.stratification_order()
        except StratificationError:
            return False
        return True

    def check_stratified(self) -> None:
        """Raise :class:`StratificationError` if the functions are not stratified."""
        self.stratification_order()


def vocabulary(
    sorts: Iterable[Sort] = (),
    relations: Iterable[RelDecl] = (),
    functions: Iterable[FuncDecl] = (),
) -> Vocabulary:
    """Convenience constructor accepting arbitrary iterables."""
    return Vocabulary(tuple(sorts), tuple(relations), tuple(functions))
