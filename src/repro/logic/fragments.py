"""Quantifier-fragment classification (paper Figure 11).

RML restricts where each fragment may appear:

* relation updates use quantifier-free formulas (``phi_QF``);
* ``assume`` commands and axioms use closed exists*forall* formulas
  (``phi_EA``);
* ``assert`` takes forall*exists* formulas (``phi_AE``);
* ``if`` conditions take alternation-free formulas (``phi_AF``).

The checks here are *semantic up to prenexing*: a formula counts as
exists*forall* if quantifiers from independent subformulas can be interleaved
into that shape (see :func:`repro.logic.transform.prenex`), not merely if it
is written with that literal prefix.
"""

from __future__ import annotations

import re

from . import syntax as s
from .transform import prenex


def is_quantifier_free(formula: s.Formula) -> bool:
    if isinstance(formula, (s.Rel, s.Eq)):
        return True
    if isinstance(formula, s.Not):
        return is_quantifier_free(formula.arg)
    if isinstance(formula, (s.And, s.Or)):
        return all(is_quantifier_free(a) for a in formula.args)
    if isinstance(formula, (s.Implies, s.Iff)):
        return is_quantifier_free(formula.lhs) and is_quantifier_free(formula.rhs)
    if isinstance(formula, (s.Forall, s.Exists)):
        return False
    raise TypeError(f"not a formula: {formula!r}")


def is_alternation_free(formula: s.Formula) -> bool:
    """Membership in ``phi_AF``: quantifiers only directly over QF bodies."""
    if isinstance(formula, (s.Rel, s.Eq)):
        return True
    if isinstance(formula, s.Not):
        return is_alternation_free(formula.arg)
    if isinstance(formula, (s.And, s.Or)):
        return all(is_alternation_free(a) for a in formula.args)
    if isinstance(formula, (s.Implies, s.Iff)):
        return is_alternation_free(formula.lhs) and is_alternation_free(formula.rhs)
    if isinstance(formula, (s.Forall, s.Exists)):
        return is_quantifier_free(formula.body) or (
            type(formula.body) is type(formula) and is_alternation_free(formula.body)
        )
    raise TypeError(f"not a formula: {formula!r}")


def _collapsed_prefix(formula: s.Formula, prefer: str) -> str:
    return prenex(formula, prefer=prefer).collapsed()  # type: ignore[arg-type]


def _require_closed(formula: s.Formula, check: str) -> None:
    free = s.free_vars(formula)
    if free:
        names = ", ".join(sorted(v.name for v in free))
        raise ValueError(
            f"{check} is defined on closed formulas only; free variables: {names}"
        )


def is_exists_forall(formula: s.Formula) -> bool:
    """Membership of a *closed* formula in ``phi_EA`` (exists*forall*) up to prenexing.

    Raises :class:`ValueError` on an open formula: free variables act as
    constants under satisfiability but as outermost universals under
    validity, so classifying an open formula here would silently pick one
    reading.  Callers must check closedness first (and report it as its own
    error) before asking about the fragment.
    """
    _require_closed(formula, "is_exists_forall")
    return re.fullmatch("E?A?", _collapsed_prefix(formula, "E")) is not None


def is_forall_exists(formula: s.Formula) -> bool:
    """Membership of a *closed* formula in ``phi_AE`` (forall*exists*) up to prenexing.

    Raises :class:`ValueError` on an open formula; see :func:`is_exists_forall`.
    """
    _require_closed(formula, "is_forall_exists")
    return re.fullmatch("A?E?", _collapsed_prefix(formula, "A")) is not None


def is_universal(formula: s.Formula) -> bool:
    """True for formulas prenexable to forall* over a QF matrix."""
    return _collapsed_prefix(formula, "A") in ("", "A")


def is_existential(formula: s.Formula) -> bool:
    """True for formulas prenexable to exists* over a QF matrix."""
    return _collapsed_prefix(formula, "E") in ("", "E")
