"""Partial structures, generalization order, diagrams and conjectures.

Implements Definitions 2-5 and Lemma 4.2 of the paper:

* a :class:`PartialStructure` interprets relation symbols as partial maps
  ``D^k -> {0,1}`` and function symbols as partial maps ``D^{k+1} -> {0,1}``
  with at most one positive result per argument tuple (Definition 2);
* the generalization partial order ``s2 <= s1`` (:func:`generalizes`,
  Definition 3) -- ``s2`` leaves more facts undefined, hence represents
  *more* states;
* the diagram ``Diag(s)`` (:func:`diagram`, Definition 4) -- the existential
  formula describing "contains s as a sub-configuration";
* the induced universal conjecture ``phi(s) = ~Diag(s)``
  (:func:`conjecture`, Definition 5), which excludes every state that
  extends ``s`` (Lemma 4.2, checked by :func:`embeds_into` + tests).

Generalization steps of Section 4.5 are provided as pure operations:
:meth:`PartialStructure.restrict_elements`, :meth:`PartialStructure.forget`
(drop positive or negative facts of a symbol) and
:meth:`PartialStructure.drop_fact` (drop a single literal; used by the
UNSAT-core auto-generalizer).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from . import syntax as s
from .sorts import FuncDecl, RelDecl, Sort, Vocabulary
from .structures import Elem, Structure

# A fact key: ("rel", decl, args) with a bool value, or ("func", decl, args+result)
# with a bool value.  Facts are exposed through the `Fact` dataclass below.


@dataclass(frozen=True, slots=True)
class Fact:
    """One defined entry of a partial interpretation.

    For a relation symbol, ``args`` is the argument tuple and ``positive``
    tells whether the tuple is in the relation.  For a function symbol,
    ``args`` is the argument tuple *extended with the result element* (the
    paper's view of a k-ary function as a (k+1)-ary relation) and
    ``positive`` tells whether ``f(args[:-1]) = args[-1]`` holds.
    """

    symbol: RelDecl | FuncDecl
    args: tuple[Elem, ...]
    positive: bool

    def literal(self, var_of: Mapping[Elem, s.Var]) -> s.Formula:
        """Render this fact as a literal over the diagram variables."""
        if isinstance(self.symbol, RelDecl):
            atom: s.Formula = s.Rel(self.symbol, tuple(var_of[e] for e in self.args))
        else:
            *fargs, result = self.args
            atom = s.Eq(
                s.App(self.symbol, tuple(var_of[e] for e in fargs)), var_of[result]
            )
        return atom if self.positive else s.not_(atom)

    def __str__(self) -> str:
        if isinstance(self.symbol, RelDecl):
            body = f"{self.symbol.name}({', '.join(e.name for e in self.args)})"
        else:
            *fargs, result = self.args
            inner = ", ".join(e.name for e in fargs)
            app = f"{self.symbol.name}({inner})" if fargs else self.symbol.name
            body = f"{app} = {result.name}"
        return body if self.positive else f"~{body}"


@dataclass(frozen=True)
class PartialStructure:
    """A partial structure (Definition 2).

    ``facts`` maps (symbol, tuple) pairs to booleans; undefined entries are
    simply absent.  Function facts use (args + result) tuples and must have
    at most one positive result per argument tuple.
    """

    vocab: Vocabulary
    universe: Mapping[Sort, tuple[Elem, ...]]
    rel_facts: Mapping[RelDecl, Mapping[tuple[Elem, ...], bool]]
    func_facts: Mapping[FuncDecl, Mapping[tuple[Elem, ...], bool]]

    def __post_init__(self) -> None:
        for func, table in self.func_facts.items():
            positives: set[tuple[Elem, ...]] = set()
            for entry, value in table.items():
                if len(entry) != func.arity + 1:
                    raise ValueError(f"bad function fact arity for {func.name!r}")
                if value:
                    args = entry[:-1]
                    if args in positives:
                        raise ValueError(
                            f"function {func.name!r} has two positive results for one tuple"
                        )
                    positives.add(args)

    # ------------------------------------------------------------- facts

    def facts(self) -> Iterator[Fact]:
        """All defined facts, relations first, in deterministic order."""
        for rel in self.vocab.relations:
            table = self.rel_facts.get(rel, {})
            for args in sorted(table, key=_tuple_key):
                yield Fact(rel, args, table[args])
        for func in self.vocab.functions:
            table = self.func_facts.get(func, {})
            for args in sorted(table, key=_tuple_key):
                yield Fact(func, args, table[args])

    def fact_count(self) -> int:
        return sum(1 for _ in self.facts())

    def active_elements(self) -> tuple[Elem, ...]:
        """Elements appearing in at least one defined fact (Definition 4)."""
        seen: list[Elem] = []
        for fact in self.facts():
            for elem in fact.args:
                if elem not in seen:
                    seen.append(elem)
        return tuple(sorted(seen, key=lambda e: (e.sort.name, e.name)))

    # ----------------------------------------------------- generalization

    def restrict_elements(self, keep: Iterable[Elem]) -> "PartialStructure":
        """Drop every fact mentioning an element outside ``keep``.

        This is the coarse-grained step of Section 4.5 in which the user
        marks which elements participate in the generalization.
        """
        kept = set(keep)
        universe = {
            sort: tuple(e for e in elems if e in kept)
            for sort, elems in self.universe.items()
        }
        rel_facts = {
            rel: {args: v for args, v in table.items() if set(args) <= kept}
            for rel, table in self.rel_facts.items()
        }
        func_facts = {
            func: {args: v for args, v in table.items() if set(args) <= kept}
            for func, table in self.func_facts.items()
        }
        return PartialStructure(self.vocab, universe, rel_facts, func_facts)

    def forget(
        self, symbol: RelDecl | FuncDecl | str, polarity: bool | None = None
    ) -> "PartialStructure":
        """Make facts of ``symbol`` undefined.

        ``polarity=True`` drops the positive facts, ``False`` the negative
        ones, ``None`` (default) all of them -- matching the per-symbol
        checkboxes of the Ivy UI described in Section 4.5.
        """
        if isinstance(symbol, str):
            decl = self.vocab[symbol]
        else:
            decl = symbol

        def keep(value: bool) -> bool:
            return polarity is not None and value != polarity

        rel_facts = dict(self.rel_facts)
        func_facts = dict(self.func_facts)
        if isinstance(decl, RelDecl):
            table = rel_facts.get(decl, {})
            rel_facts[decl] = {a: v for a, v in table.items() if keep(v)}
        else:
            table = func_facts.get(decl, {})
            func_facts[decl] = {a: v for a, v in table.items() if keep(v)}
        return PartialStructure(self.vocab, self.universe, rel_facts, func_facts)

    def drop_fact(self, fact: Fact) -> "PartialStructure":
        """Make a single fact undefined (UNSAT-core shrinking step)."""
        if isinstance(fact.symbol, RelDecl):
            rel_facts = dict(self.rel_facts)
            table = dict(rel_facts.get(fact.symbol, {}))
            table.pop(fact.args, None)
            rel_facts[fact.symbol] = table
            return PartialStructure(self.vocab, self.universe, rel_facts, self.func_facts)
        func_facts = dict(self.func_facts)
        table = dict(func_facts.get(fact.symbol, {}))
        table.pop(fact.args, None)
        func_facts[fact.symbol] = table
        return PartialStructure(self.vocab, self.universe, self.rel_facts, func_facts)

    def keep_facts(self, facts: Iterable[Fact]) -> "PartialStructure":
        """The generalization retaining exactly the given facts."""
        wanted = set(facts)
        rel_facts: dict[RelDecl, dict[tuple[Elem, ...], bool]] = {}
        func_facts: dict[FuncDecl, dict[tuple[Elem, ...], bool]] = {}
        for fact in self.facts():
            if fact not in wanted:
                continue
            if isinstance(fact.symbol, RelDecl):
                rel_facts.setdefault(fact.symbol, {})[fact.args] = fact.positive
            else:
                func_facts.setdefault(fact.symbol, {})[fact.args] = fact.positive
        return PartialStructure(self.vocab, self.universe, rel_facts, func_facts)

    def __str__(self) -> str:
        from ..viz.text import partial_to_text

        return partial_to_text(self)


def _tuple_key(args: tuple[Elem, ...]) -> tuple[str, ...]:
    return tuple(e.name for e in args)


# ---------------------------------------------------------------------------
# Conversions and the generalization order
# ---------------------------------------------------------------------------


def from_structure(structure: Structure) -> PartialStructure:
    """View a total structure as a (fully defined) partial structure."""
    rel_facts: dict[RelDecl, dict[tuple[Elem, ...], bool]] = {}
    for rel in structure.vocab.relations:
        table: dict[tuple[Elem, ...], bool] = {}
        for args in itertools.product(
            *(structure.universe[sort] for sort in rel.arg_sorts)
        ):
            table[args] = structure.rel_holds(rel, args)
        rel_facts[rel] = table
    func_facts: dict[FuncDecl, dict[tuple[Elem, ...], bool]] = {}
    for func in structure.vocab.functions:
        table = {}
        for args in itertools.product(
            *(structure.universe[sort] for sort in func.arg_sorts)
        ):
            value = structure.func_value(func, args)
            for result in structure.universe[func.sort]:
                table[args + (result,)] = result == value
        func_facts[func] = table
    return PartialStructure(structure.vocab, dict(structure.universe), rel_facts, func_facts)


def generalizes(smaller: PartialStructure, larger: PartialStructure) -> bool:
    """The order of Definition 3: ``smaller <= larger``.

    True when every element of ``smaller``'s universe is in ``larger``'s and
    every fact defined by ``smaller`` is defined identically by ``larger``.
    A smaller (more partial) structure represents more states.
    """
    for sort, elems in smaller.universe.items():
        if not set(elems) <= set(larger.universe.get(sort, ())):
            return False
    for fact in smaller.facts():
        if isinstance(fact.symbol, RelDecl):
            table = larger.rel_facts.get(fact.symbol, {})
        else:
            table = larger.func_facts.get(fact.symbol, {})
        if table.get(fact.args) != fact.positive:
            return False
    return True


# ---------------------------------------------------------------------------
# Diagrams and conjectures (Definitions 4 and 5)
# ---------------------------------------------------------------------------


def diagram(partial: PartialStructure) -> s.Formula:
    """``Diag(s)``: exists x1..xn. distinct(x) & (all defined facts)."""
    elems = partial.active_elements()
    var_of = _diagram_vars(elems)
    literals = [fact.literal(var_of) for fact in partial.facts()]
    per_sort: dict[Sort, list[s.Var]] = {}
    for elem in elems:
        per_sort.setdefault(elem.sort, []).append(var_of[elem])
    distinct_parts = [s.distinct(*vars_) for vars_ in per_sort.values() if len(vars_) > 1]
    body = s.and_(*distinct_parts, *literals)
    if not elems:
        return body
    return s.exists(tuple(var_of[e] for e in elems), body)


def conjecture(partial: PartialStructure) -> s.Formula:
    """``phi(s)``: the universal formula equivalent to ``~Diag(s)``."""
    elems = partial.active_elements()
    var_of = _diagram_vars(elems)
    literals = [fact.literal(var_of) for fact in partial.facts()]
    per_sort: dict[Sort, list[s.Var]] = {}
    for elem in elems:
        per_sort.setdefault(elem.sort, []).append(var_of[elem])
    distinct_parts = [s.distinct(*vars_) for vars_ in per_sort.values() if len(vars_) > 1]
    body = s.not_(s.and_(*distinct_parts, *literals))
    if not elems:
        return body
    return s.forall(tuple(var_of[e] for e in elems), body)


def _diagram_vars(elems: tuple[Elem, ...]) -> dict[Elem, s.Var]:
    used: set[str] = set()
    var_of: dict[Elem, s.Var] = {}
    for elem in elems:
        name = elem.name.upper()
        counter = 0
        while name in used:
            counter += 1
            name = f"{elem.name.upper()}_{counter}"
        used.add(name)
        var_of[elem] = s.Var(name, elem.sort)
    return var_of


# ---------------------------------------------------------------------------
# Embeddings (Lemma 4.2)
# ---------------------------------------------------------------------------


def embeds_into(partial: PartialStructure, structure: Structure) -> dict[Elem, Elem] | None:
    """Find an injective, fact-preserving embedding of ``partial``'s active
    elements into ``structure``, or None.

    A total state satisfies ``conjecture(partial)`` iff no such embedding
    exists; this function is the semantic cross-check used in tests.
    """
    elems = partial.active_elements()
    facts = list(partial.facts())

    def consistent(mapping: dict[Elem, Elem]) -> bool:
        for fact in facts:
            if not all(e in mapping for e in fact.args):
                continue
            image = tuple(mapping[e] for e in fact.args)
            if isinstance(fact.symbol, RelDecl):
                holds = structure.rel_holds(fact.symbol, image)
            else:
                holds = structure.func_value(fact.symbol, image[:-1]) == image[-1]
            if holds != fact.positive:
                return False
        return True

    def extend(index: int, mapping: dict[Elem, Elem], used: set[Elem]) -> dict[Elem, Elem] | None:
        if index == len(elems):
            return dict(mapping)
        elem = elems[index]
        for candidate in structure.universe[elem.sort]:
            if candidate in used:
                continue
            mapping[elem] = candidate
            if consistent(mapping):
                found = extend(index + 1, mapping, used | {candidate})
                if found is not None:
                    return found
            del mapping[elem]
        return None

    return extend(0, {}, set())
