"""Substitution on terms and formulas.

Three substitution operations are needed by the paper's machinery:

* :func:`substitute` -- capture-avoiding substitution of terms for free
  logical variables (quantifier instantiation, diagram construction).
* :func:`replace_rel` / :func:`replace_func` -- the substitutions
  ``Q[phi(s)/r(s)]`` and ``Q[t(s)/f(s)]`` of the weakest-precondition rules
  (Figure 13): every occurrence of an atom ``r(s)`` (resp. term ``f(s)``) is
  replaced by the update formula (resp. term) with its parameters
  instantiated to ``s``.  The replacement is *simultaneous*: symbol
  occurrences inside the replacement body itself denote the pre-state symbol
  and are not rewritten again.
* :func:`rename_symbols` -- uniform renaming of relation/function symbols,
  used to build the timestamped vocabulary copies of the bounded-verification
  encoding.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from . import syntax as s
from .sorts import FuncDecl, RelDecl, Sort


class FreshNames:
    """Generates names that are fresh with respect to a set of used names."""

    def __init__(self, used: Iterable[str] = ()) -> None:
        self._used = set(used)

    def add(self, name: str) -> None:
        self._used.add(name)

    def __call__(self, base: str) -> str:
        """Return ``base`` if unused, else ``base'``, ``base''``... variants."""
        name = base
        counter = 0
        while name in self._used:
            counter += 1
            name = f"{base}_{counter}"
        self._used.add(name)
        return name


def fresh_var(base: str, sort: Sort, avoid: Iterable[s.Var]) -> s.Var:
    """A variable named after ``base`` distinct from every variable in ``avoid``."""
    taken = {v.name for v in avoid}
    name = base
    counter = 0
    while name in taken:
        counter += 1
        name = f"{base}_{counter}"
    return s.Var(name, sort)


# ---------------------------------------------------------------------------
# Variable substitution
# ---------------------------------------------------------------------------


def substitute_term(term: s.Term, mapping: Mapping[s.Var, s.Term]) -> s.Term:
    if isinstance(term, s.Var):
        return mapping.get(term, term)
    if isinstance(term, s.App):
        return s.App(term.func, tuple(substitute_term(a, mapping) for a in term.args), span=term.span)
    if isinstance(term, s.Ite):
        return s.Ite(
            substitute(term.cond, mapping),
            substitute_term(term.then, mapping),
            substitute_term(term.els, mapping),
            span=term.span,
        )
    raise TypeError(f"not a term: {term!r}")


def substitute(formula: s.Formula, mapping: Mapping[s.Var, s.Term]) -> s.Formula:
    """Capture-avoiding substitution of free variables in ``formula``."""
    if not mapping:
        return formula
    if isinstance(formula, s.Rel):
        return s.Rel(formula.rel, tuple(substitute_term(a, mapping) for a in formula.args), span=formula.span)
    if isinstance(formula, s.Eq):
        return s.Eq(
            substitute_term(formula.lhs, mapping),
            substitute_term(formula.rhs, mapping),
            span=formula.span,
        )
    if isinstance(formula, s.Not):
        return s.Not(substitute(formula.arg, mapping), span=formula.span)
    if isinstance(formula, s.And):
        return s.And(tuple(substitute(a, mapping) for a in formula.args), span=formula.span)
    if isinstance(formula, s.Or):
        return s.Or(tuple(substitute(a, mapping) for a in formula.args), span=formula.span)
    if isinstance(formula, s.Implies):
        return s.Implies(
            substitute(formula.lhs, mapping),
            substitute(formula.rhs, mapping),
            span=formula.span,
        )
    if isinstance(formula, s.Iff):
        return s.Iff(
            substitute(formula.lhs, mapping),
            substitute(formula.rhs, mapping),
            span=formula.span,
        )
    if isinstance(formula, (s.Forall, s.Exists)):
        # Drop bindings shadowed by the quantifier.
        inner = {v: t for v, t in mapping.items() if v not in formula.vars}
        if not inner:
            return formula
        # Rename bound variables that would capture free variables of the
        # replacement terms.
        replacement_frees: set[s.Var] = set()
        for repl in inner.values():
            replacement_frees |= s.free_vars(repl)
        bound = list(formula.vars)
        body = formula.body
        if replacement_frees & set(bound):
            avoid = replacement_frees | s.free_vars(body) | set(bound)
            renaming: dict[s.Var, s.Term] = {}
            new_bound: list[s.Var] = []
            for var in bound:
                if var in replacement_frees:
                    new = fresh_var(var.name, var.sort, avoid)
                    avoid = avoid | {new}
                    renaming[var] = new
                    new_bound.append(new)
                else:
                    new_bound.append(var)
            body = substitute(body, renaming)
            bound = new_bound
        body = substitute(body, inner)
        ctor = s.Forall if isinstance(formula, s.Forall) else s.Exists
        return ctor(tuple(bound), body, span=formula.span)
    raise TypeError(f"not a formula: {formula!r}")


def instantiate(quantified: s.Forall | s.Exists, terms: tuple[s.Term, ...]) -> s.Formula:
    """Plug ``terms`` in for the bound variables of a quantified formula."""
    if len(terms) != len(quantified.vars):
        raise ValueError("arity mismatch in quantifier instantiation")
    return substitute(quantified.body, dict(zip(quantified.vars, terms)))


# ---------------------------------------------------------------------------
# Symbol replacement (wp substitutions)
# ---------------------------------------------------------------------------


def replace_rel(
    formula: s.Formula,
    rel: RelDecl,
    params: tuple[s.Var, ...],
    definition: s.Formula,
) -> s.Formula:
    """Compute ``formula[definition(s)/rel(s)]``.

    Every atom ``rel(t1..tn)`` becomes ``definition[t1..tn / params]``; the
    arguments ``ti`` are rewritten first, so nested occurrences of ``rel``
    inside ``ite`` conditions are handled, while occurrences of ``rel``
    inside ``definition`` itself are left alone (they denote the old value).
    """
    if len(params) != rel.arity:
        raise ValueError("parameter arity mismatch")

    def on_term(term: s.Term) -> s.Term:
        if isinstance(term, s.Var):
            return term
        if isinstance(term, s.App):
            return s.App(term.func, tuple(on_term(a) for a in term.args), span=term.span)
        if isinstance(term, s.Ite):
            return s.Ite(
                on_formula(term.cond), on_term(term.then), on_term(term.els), span=term.span
            )
        raise TypeError(f"not a term: {term!r}")

    def on_formula(fml: s.Formula) -> s.Formula:
        if isinstance(fml, s.Rel):
            args = tuple(on_term(a) for a in fml.args)
            if fml.rel == rel:
                return substitute(definition, dict(zip(params, args)))
            return s.Rel(fml.rel, args, span=fml.span)
        if isinstance(fml, s.Eq):
            return s.Eq(on_term(fml.lhs), on_term(fml.rhs), span=fml.span)
        if isinstance(fml, s.Not):
            return s.Not(on_formula(fml.arg), span=fml.span)
        if isinstance(fml, s.And):
            return s.And(tuple(on_formula(a) for a in fml.args), span=fml.span)
        if isinstance(fml, s.Or):
            return s.Or(tuple(on_formula(a) for a in fml.args), span=fml.span)
        if isinstance(fml, s.Implies):
            return s.Implies(on_formula(fml.lhs), on_formula(fml.rhs), span=fml.span)
        if isinstance(fml, s.Iff):
            return s.Iff(on_formula(fml.lhs), on_formula(fml.rhs), span=fml.span)
        if isinstance(fml, (s.Forall, s.Exists)):
            clash = set(fml.vars) & (s.free_vars(definition) | set(params))
            if clash:
                # Rename the bound variables out of the way first.
                avoid = set(fml.vars) | s.free_vars(fml.body) | s.free_vars(definition) | set(params)
                renaming: dict[s.Var, s.Term] = {}
                new_vars = []
                for var in fml.vars:
                    if var in clash:
                        new = fresh_var(var.name, var.sort, avoid)
                        avoid.add(new)
                        renaming[var] = new
                        new_vars.append(new)
                    else:
                        new_vars.append(var)
                body = substitute(fml.body, renaming)
            else:
                new_vars = list(fml.vars)
                body = fml.body
            ctor = s.Forall if isinstance(fml, s.Forall) else s.Exists
            return ctor(tuple(new_vars), on_formula(body), span=fml.span)
        raise TypeError(f"not a formula: {fml!r}")

    return on_formula(formula)


def replace_func(
    formula: s.Formula,
    func: FuncDecl,
    params: tuple[s.Var, ...],
    definition: s.Term,
) -> s.Formula:
    """Compute ``formula[definition(s)/func(s)]`` (function-update wp rule)."""
    if len(params) != func.arity:
        raise ValueError("parameter arity mismatch")

    def on_term(term: s.Term) -> s.Term:
        if isinstance(term, s.Var):
            return term
        if isinstance(term, s.App):
            args = tuple(on_term(a) for a in term.args)
            if term.func == func:
                return substitute_term(definition, dict(zip(params, args)))
            return s.App(term.func, args, span=term.span)
        if isinstance(term, s.Ite):
            return s.Ite(
                on_formula(term.cond), on_term(term.then), on_term(term.els), span=term.span
            )
        raise TypeError(f"not a term: {term!r}")

    def on_formula(fml: s.Formula) -> s.Formula:
        if isinstance(fml, s.Rel):
            return s.Rel(fml.rel, tuple(on_term(a) for a in fml.args), span=fml.span)
        if isinstance(fml, s.Eq):
            return s.Eq(on_term(fml.lhs), on_term(fml.rhs), span=fml.span)
        if isinstance(fml, s.Not):
            return s.Not(on_formula(fml.arg), span=fml.span)
        if isinstance(fml, s.And):
            return s.And(tuple(on_formula(a) for a in fml.args), span=fml.span)
        if isinstance(fml, s.Or):
            return s.Or(tuple(on_formula(a) for a in fml.args), span=fml.span)
        if isinstance(fml, s.Implies):
            return s.Implies(on_formula(fml.lhs), on_formula(fml.rhs), span=fml.span)
        if isinstance(fml, s.Iff):
            return s.Iff(on_formula(fml.lhs), on_formula(fml.rhs), span=fml.span)
        if isinstance(fml, (s.Forall, s.Exists)):
            clash = set(fml.vars) & (s.free_vars(definition) | set(params))
            if clash:
                avoid = set(fml.vars) | s.free_vars(fml.body) | s.free_vars(definition) | set(params)
                renaming: dict[s.Var, s.Term] = {}
                new_vars = []
                for var in fml.vars:
                    if var in clash:
                        new = fresh_var(var.name, var.sort, avoid)
                        avoid.add(new)
                        renaming[var] = new
                        new_vars.append(new)
                    else:
                        new_vars.append(var)
                body = substitute(fml.body, renaming)
            else:
                new_vars = list(fml.vars)
                body = fml.body
            ctor = s.Forall if isinstance(fml, s.Forall) else s.Exists
            return ctor(tuple(new_vars), on_formula(body), span=fml.span)
        raise TypeError(f"not a formula: {fml!r}")

    return on_formula(formula)


# ---------------------------------------------------------------------------
# Symbol renaming
# ---------------------------------------------------------------------------


def rename_symbols(
    node: s.Formula | s.Term,
    mapping: Mapping[RelDecl | FuncDecl, RelDecl | FuncDecl],
) -> s.Formula | s.Term:
    """Uniformly rename relation/function symbols according to ``mapping``.

    The renamed declarations must have identical sorts and arities; used for
    the per-step vocabulary copies of the transition-relation encoding.
    """
    for old, new in mapping.items():
        if type(old) is not type(new):
            raise ValueError(f"cannot rename {old.name!r} across symbol kinds")
        if old.arg_sorts != new.arg_sorts:
            raise ValueError(f"arity/sort mismatch renaming {old.name!r}")

    def on_term(term: s.Term) -> s.Term:
        if isinstance(term, s.Var):
            return term
        if isinstance(term, s.App):
            func = mapping.get(term.func, term.func)
            return s.App(func, tuple(on_term(a) for a in term.args), span=term.span)
        if isinstance(term, s.Ite):
            return s.Ite(
                on_formula(term.cond), on_term(term.then), on_term(term.els), span=term.span
            )
        raise TypeError(f"not a term: {term!r}")

    def on_formula(fml: s.Formula) -> s.Formula:
        if isinstance(fml, s.Rel):
            rel = mapping.get(fml.rel, fml.rel)
            return s.Rel(rel, tuple(on_term(a) for a in fml.args), span=fml.span)
        if isinstance(fml, s.Eq):
            return s.Eq(on_term(fml.lhs), on_term(fml.rhs), span=fml.span)
        if isinstance(fml, s.Not):
            return s.Not(on_formula(fml.arg), span=fml.span)
        if isinstance(fml, s.And):
            return s.And(tuple(on_formula(a) for a in fml.args), span=fml.span)
        if isinstance(fml, s.Or):
            return s.Or(tuple(on_formula(a) for a in fml.args), span=fml.span)
        if isinstance(fml, s.Implies):
            return s.Implies(on_formula(fml.lhs), on_formula(fml.rhs), span=fml.span)
        if isinstance(fml, s.Iff):
            return s.Iff(on_formula(fml.lhs), on_formula(fml.rhs), span=fml.span)
        if isinstance(fml, (s.Forall, s.Exists)):
            ctor = s.Forall if isinstance(fml, s.Forall) else s.Exists
            return ctor(fml.vars, on_formula(fml.body), span=fml.span)
        raise TypeError(f"not a formula: {fml!r}")

    if isinstance(node, (s.Var, s.App, s.Ite)):
        return on_term(node)
    return on_formula(node)


TransformFn = Callable[[s.Formula], s.Formula]
