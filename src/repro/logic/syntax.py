"""Terms and formulas of sorted first-order logic (paper Figure 11).

The grammar follows Figure 11 of the paper:

* terms: logical variables, program variables / constants (nullary function
  application), function application, and ``ite`` terms;
* formulas: relation membership, equality, boolean connectives, and
  quantifiers.

All AST nodes are immutable.  Equality is structural and hashes are cached so
formulas can be used freely as dictionary keys during substitution, grounding
and hash-consed rewriting.

The module-level smart constructors (:func:`and_`, :func:`or_`, :func:`not_`,
:func:`implies`, :func:`iff`, :func:`forall`, :func:`exists`, :func:`eq`)
perform light, semantics-preserving simplification (flattening of nested
conjunctions, boolean unit laws, empty quantifier elimination) and are the
recommended way to build formulas.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterable, Iterator, Union

from .lexer import Span
from .sorts import FuncDecl, RelDecl, Sort


def _span_field() -> Span | None:
    """The optional source-span slot every AST node carries.

    Spans are provenance only: they are excluded from structural equality
    and hashing, so two occurrences of the same formula parsed from
    different places still compare (and dedupe) as equal.
    """
    return field(default=None, compare=False, repr=False)


class _Node:
    """Base class giving all AST nodes a cached structural hash."""

    __hash_cache: int

    def __hash__(self) -> int:
        try:
            return self.__hash_cache
        except AttributeError:
            value = hash(
                tuple(getattr(self, f.name) for f in fields(self) if f.compare)
            )
            value ^= hash(type(self).__name__)
            object.__setattr__(self, "_Node__hash_cache", value)
            return value

    def __str__(self) -> str:
        from .printer import to_str

        return to_str(self)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self}>"


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=True, repr=False)
class Var(_Node):
    """A sorted logical variable (distinct from RML program variables)."""

    name: str
    sort: Sort
    span: Span | None = _span_field()

    __hash__ = _Node.__hash__


@dataclass(frozen=True, eq=True, repr=False)
class App(_Node):
    """Application ``f(t1, ..., tn)`` of a function symbol.

    With ``args == ()`` this is a constant / program-variable occurrence.
    """

    func: FuncDecl
    args: tuple["Term", ...] = ()
    span: Span | None = _span_field()

    __hash__ = _Node.__hash__

    def __post_init__(self) -> None:
        if len(self.args) != self.func.arity:
            raise ValueError(
                f"function {self.func.name!r} expects {self.func.arity} "
                f"arguments, got {len(self.args)}"
            )

    @property
    def sort(self) -> Sort:
        return self.func.sort


@dataclass(frozen=True, eq=True, repr=False)
class Ite(_Node):
    """The if-then-else term ``ite(cond, then, els)`` of Figure 11."""

    cond: "Formula"
    then: "Term"
    els: "Term"
    span: Span | None = _span_field()

    __hash__ = _Node.__hash__

    def __post_init__(self) -> None:
        if self.then.sort != self.els.sort:
            raise ValueError(
                f"ite branches have different sorts: "
                f"{self.then.sort.name} vs {self.els.sort.name}"
            )

    @property
    def sort(self) -> Sort:
        return self.then.sort


Term = Union[Var, App, Ite]


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=True, repr=False)
class Rel(_Node):
    """Membership ``r(t1, ..., tn)`` in relation ``r``."""

    rel: RelDecl
    args: tuple[Term, ...] = ()
    span: Span | None = _span_field()

    __hash__ = _Node.__hash__

    def __post_init__(self) -> None:
        if len(self.args) != self.rel.arity:
            raise ValueError(
                f"relation {self.rel.name!r} expects {self.rel.arity} "
                f"arguments, got {len(self.args)}"
            )


@dataclass(frozen=True, eq=True, repr=False)
class Eq(_Node):
    """Equality between two terms of the same sort."""

    lhs: Term
    rhs: Term
    span: Span | None = _span_field()

    __hash__ = _Node.__hash__

    def __post_init__(self) -> None:
        if self.lhs.sort != self.rhs.sort:
            raise ValueError(
                f"equality between different sorts: "
                f"{self.lhs.sort.name} vs {self.rhs.sort.name}"
            )


@dataclass(frozen=True, eq=True, repr=False)
class Not(_Node):
    arg: "Formula"
    span: Span | None = _span_field()

    __hash__ = _Node.__hash__


@dataclass(frozen=True, eq=True, repr=False)
class And(_Node):
    """N-ary conjunction; ``And(())`` is the constant *true*."""

    args: tuple["Formula", ...] = ()
    span: Span | None = _span_field()

    __hash__ = _Node.__hash__


@dataclass(frozen=True, eq=True, repr=False)
class Or(_Node):
    """N-ary disjunction; ``Or(())`` is the constant *false*."""

    args: tuple["Formula", ...] = ()
    span: Span | None = _span_field()

    __hash__ = _Node.__hash__


@dataclass(frozen=True, eq=True, repr=False)
class Implies(_Node):
    lhs: "Formula"
    rhs: "Formula"
    span: Span | None = _span_field()

    __hash__ = _Node.__hash__


@dataclass(frozen=True, eq=True, repr=False)
class Iff(_Node):
    lhs: "Formula"
    rhs: "Formula"
    span: Span | None = _span_field()

    __hash__ = _Node.__hash__


@dataclass(frozen=True, eq=True, repr=False)
class Forall(_Node):
    vars: tuple[Var, ...]
    body: "Formula"
    span: Span | None = _span_field()

    __hash__ = _Node.__hash__

    def __post_init__(self) -> None:
        if not self.vars:
            raise ValueError("quantifier must bind at least one variable")


@dataclass(frozen=True, eq=True, repr=False)
class Exists(_Node):
    vars: tuple[Var, ...]
    body: "Formula"
    span: Span | None = _span_field()

    __hash__ = _Node.__hash__

    def __post_init__(self) -> None:
        if not self.vars:
            raise ValueError("quantifier must bind at least one variable")


Formula = Union[Rel, Eq, Not, And, Or, Implies, Iff, Forall, Exists]
Quantifier = (Forall, Exists)

TRUE: Formula = And(())
FALSE: Formula = Or(())


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------


def and_(*args: Formula) -> Formula:
    """Conjunction with flattening, deduplication-free unit/zero laws."""
    flat: list[Formula] = []
    for arg in args:
        if isinstance(arg, And):
            flat.extend(arg.args)
        elif arg == FALSE:
            return FALSE
        else:
            flat.append(arg)
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def or_(*args: Formula) -> Formula:
    """Disjunction with flattening and unit/zero laws."""
    flat: list[Formula] = []
    for arg in args:
        if isinstance(arg, Or):
            flat.extend(arg.args)
        elif arg == TRUE:
            return TRUE
        else:
            flat.append(arg)
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def not_(arg: Formula) -> Formula:
    """Negation with double-negation and constant elimination."""
    if isinstance(arg, Not):
        return arg.arg
    if arg == TRUE:
        return FALSE
    if arg == FALSE:
        return TRUE
    return Not(arg)


def implies(lhs: Formula, rhs: Formula) -> Formula:
    if lhs == TRUE:
        return rhs
    if lhs == FALSE or rhs == TRUE:
        return TRUE
    if rhs == FALSE:
        return not_(lhs)
    return Implies(lhs, rhs)


def iff(lhs: Formula, rhs: Formula) -> Formula:
    if lhs == TRUE:
        return rhs
    if rhs == TRUE:
        return lhs
    if lhs == FALSE:
        return not_(rhs)
    if rhs == FALSE:
        return not_(lhs)
    if lhs == rhs:
        return TRUE
    return Iff(lhs, rhs)


def eq(lhs: Term, rhs: Term) -> Formula:
    if lhs == rhs:
        return TRUE
    return Eq(lhs, rhs)


def forall(vars: Iterable[Var], body: Formula) -> Formula:
    """Universal quantification; merges directly-nested foralls."""
    bound = tuple(vars)
    if not bound:
        return body
    if isinstance(body, Forall):
        return Forall(bound + body.vars, body.body)
    return Forall(bound, body)


def exists(vars: Iterable[Var], body: Formula) -> Formula:
    """Existential quantification; merges directly-nested exists."""
    bound = tuple(vars)
    if not bound:
        return body
    if isinstance(body, Exists):
        return Exists(bound + body.vars, body.body)
    return Exists(bound, body)


def distinct(*terms: Term) -> Formula:
    """Pairwise disequality, as used by the diagram construction (Def. 4)."""
    parts = [not_(eq(a, b)) for i, a in enumerate(terms) for b in terms[i + 1 :]]
    return and_(*parts)


def literal(atom: Formula, positive: bool) -> Formula:
    """Build a literal from an atom and a polarity."""
    return atom if positive else not_(atom)


# ---------------------------------------------------------------------------
# Span helpers
# ---------------------------------------------------------------------------


def with_span(node: Formula | Term, span: Span | None) -> Formula | Term:
    """Attach ``span`` to ``node`` in place (spans never affect equality).

    Only call this on freshly-constructed nodes (e.g. the output of a smart
    constructor during parsing): AST nodes are shared freely, and mutating
    the span of a shared node -- in particular the ``TRUE``/``FALSE``
    singletons -- would corrupt unrelated provenance.  Nodes that already
    carry a span keep it.
    """
    if span is not None and node.span is None and node not in (TRUE, FALSE):
        object.__setattr__(node, "span", span)
    return node


def span_of(node: Formula | Term) -> Span | None:
    """The node's own span, or the first span found in its subtree.

    Generated formulas (wp output, substitution results) keep the spans of
    the source fragments embedded in them; this digs one out so diagnostics
    on derived formulas can still point somewhere useful.
    """
    found = node.span
    if found is not None:
        return found
    if isinstance(node, (App,)):
        children: tuple = node.args
    elif isinstance(node, Ite):
        children = (node.cond, node.then, node.els)
    elif isinstance(node, Rel):
        children = node.args
    elif isinstance(node, Eq):
        children = (node.lhs, node.rhs)
    elif isinstance(node, Not):
        children = (node.arg,)
    elif isinstance(node, (And, Or)):
        children = node.args
    elif isinstance(node, (Implies, Iff)):
        children = (node.lhs, node.rhs)
    elif isinstance(node, (Forall, Exists)):
        children = (node.body,)
    else:
        children = ()
    for child in children:
        found = span_of(child)
        if found is not None:
            return found
    return None


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def subterms(term: Term) -> Iterator[Term]:
    """Yield ``term`` and all its transitive subterms (pre-order)."""
    yield term
    if isinstance(term, App):
        for arg in term.args:
            yield from subterms(arg)
    elif isinstance(term, Ite):
        for arg in terms_of(term.cond):
            yield from subterms(arg)
        yield from subterms(term.then)
        yield from subterms(term.els)


def terms_of(formula: Formula) -> Iterator[Term]:
    """Yield the top-level terms occurring in ``formula``."""
    if isinstance(formula, Rel):
        yield from formula.args
    elif isinstance(formula, Eq):
        yield formula.lhs
        yield formula.rhs
    elif isinstance(formula, Not):
        yield from terms_of(formula.arg)
    elif isinstance(formula, (And, Or)):
        for arg in formula.args:
            yield from terms_of(arg)
    elif isinstance(formula, (Implies, Iff)):
        yield from terms_of(formula.lhs)
        yield from terms_of(formula.rhs)
    elif isinstance(formula, (Forall, Exists)):
        yield from terms_of(formula.body)
    else:  # pragma: no cover - exhaustive match
        raise TypeError(f"not a formula: {formula!r}")


def free_vars(node: Formula | Term) -> frozenset[Var]:
    """The free logical variables of a formula or term."""
    if isinstance(node, Var):
        return frozenset((node,))
    if isinstance(node, App):
        out: frozenset[Var] = frozenset()
        for arg in node.args:
            out |= free_vars(arg)
        return out
    if isinstance(node, Ite):
        return free_vars(node.cond) | free_vars(node.then) | free_vars(node.els)
    if isinstance(node, Rel):
        out = frozenset()
        for arg in node.args:
            out |= free_vars(arg)
        return out
    if isinstance(node, Eq):
        return free_vars(node.lhs) | free_vars(node.rhs)
    if isinstance(node, Not):
        return free_vars(node.arg)
    if isinstance(node, (And, Or)):
        out = frozenset()
        for arg in node.args:
            out |= free_vars(arg)
        return out
    if isinstance(node, (Implies, Iff)):
        return free_vars(node.lhs) | free_vars(node.rhs)
    if isinstance(node, (Forall, Exists)):
        return free_vars(node.body) - frozenset(node.vars)
    raise TypeError(f"not a formula or term: {node!r}")


def is_closed(formula: Formula) -> bool:
    """True when the formula has no free logical variables (an *assertion*)."""
    return not free_vars(formula)


def symbols_of(node: Formula | Term) -> frozenset[RelDecl | FuncDecl]:
    """All relation and function symbols occurring in ``node``."""
    out: set[RelDecl | FuncDecl] = set()

    def visit_term(term: Term) -> None:
        if isinstance(term, App):
            out.add(term.func)
            for arg in term.args:
                visit_term(arg)
        elif isinstance(term, Ite):
            visit(term.cond)
            visit_term(term.then)
            visit_term(term.els)

    def visit(fml: Formula) -> None:
        if isinstance(fml, Rel):
            out.add(fml.rel)
            for arg in fml.args:
                visit_term(arg)
        elif isinstance(fml, Eq):
            visit_term(fml.lhs)
            visit_term(fml.rhs)
        elif isinstance(fml, Not):
            visit(fml.arg)
        elif isinstance(fml, (And, Or)):
            for arg in fml.args:
                visit(arg)
        elif isinstance(fml, (Implies, Iff)):
            visit(fml.lhs)
            visit(fml.rhs)
        elif isinstance(fml, (Forall, Exists)):
            visit(fml.body)

    if isinstance(node, (Var, App, Ite)):
        visit_term(node)
    else:
        visit(node)
    return frozenset(out)


def constant(func: FuncDecl) -> App:
    """Shorthand for a nullary application."""
    if not func.is_constant:
        raise ValueError(f"{func.name!r} is not nullary")
    return App(func, ())
