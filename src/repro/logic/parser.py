"""Parser for the concrete formula syntax, with sort inference.

Grammar (loosest to tightest binding)::

    formula  := iff
    iff      := implies ("<->" implies)*
    implies  := or ("->" implies)?            # right associative
    or       := and ("|" and)*
    and      := unary ("&" unary)*
    unary    := "~" unary | quantified | atom
    quantified := ("forall" | "exists") binders "." formula
    binders  := name (":" sort)? ("," name (":" sort)?)*
    atom     := "true" | "false" | "(" formula ")"
              | term (("=" | "~=") term)?     # relation atom or equality
    term     := name ("(" term ("," term)* ")")?
              | "ite" "(" formula "," term "," term ")"

Identifiers are resolved against a :class:`~repro.logic.sorts.Vocabulary`:
names declared as relations/functions become applications, all other names
become logical variables.  Variable sorts may be annotated (``forall X:node``)
or inferred from use (argument positions, equalities); unresolvable sorts are
an error.  Free variables are permitted when their sorts are supplied via
``free`` or inferable -- RML update formulas use this for their parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from . import syntax as s
from .lexer import ParseError, Token, TokenStream, tokenize
from .sorts import FuncDecl, RelDecl, Sort, Vocabulary

_KEYWORDS = {"forall", "exists", "true", "false", "ite"}


# ---------------------------------------------------------------------------
# Untyped parse tree
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _UApp:
    name: str
    args: tuple["_UTerm", ...]
    token: Token


@dataclass(frozen=True)
class _UIte:
    cond: "_UFormula"
    then: "_UTerm"
    els: "_UTerm"
    token: Token


_UTerm = _UApp | _UIte


@dataclass(frozen=True)
class _UAtom:
    """A term in formula position -- a relation atom after elaboration."""

    term: _UApp
    token: Token


@dataclass(frozen=True)
class _UEq:
    lhs: _UTerm
    rhs: _UTerm
    negated: bool
    token: Token


@dataclass(frozen=True)
class _UConst:
    value: bool


@dataclass(frozen=True)
class _UNot:
    arg: "_UFormula"


@dataclass(frozen=True)
class _UBin:
    op: str  # "&", "|", "->", "<->"
    lhs: "_UFormula"
    rhs: "_UFormula"


@dataclass(frozen=True)
class _UQuant:
    kind: str  # "forall" | "exists"
    binders: tuple[tuple[str, str | None], ...]
    body: "_UFormula"
    token: Token


_UFormula = _UAtom | _UEq | _UConst | _UNot | _UBin | _UQuant


# ---------------------------------------------------------------------------
# Syntax
# ---------------------------------------------------------------------------


class _FormulaParser:
    def __init__(self, stream: TokenStream) -> None:
        self.stream = stream

    def formula(self) -> _UFormula:
        out = self._implies()
        while self.stream.at("<->"):
            self.stream.advance()
            out = _UBin("<->", out, self._implies())
        return out

    def _implies(self) -> _UFormula:
        lhs = self._or()
        if self.stream.accept("->"):
            return _UBin("->", lhs, self._implies())
        return lhs

    def _or(self) -> _UFormula:
        out = self._and()
        while self.stream.accept("|"):
            out = _UBin("|", out, self._and())
        return out

    def _and(self) -> _UFormula:
        out = self._unary()
        while self.stream.accept("&"):
            out = _UBin("&", out, self._unary())
        return out

    def _unary(self) -> _UFormula:
        if self.stream.accept("~"):
            return _UNot(self._unary())
        token = self.stream.current
        if token.kind == "ident" and token.text in ("forall", "exists"):
            self.stream.advance()
            binders = self._binders()
            self.stream.expect(".")
            return _UQuant(token.text, binders, self.formula(), token)
        return self._atom()

    def _binders(self) -> tuple[tuple[str, str | None], ...]:
        binders: list[tuple[str, str | None]] = []
        while True:
            name = self.stream.expect_ident("variable name").text
            sort_name = None
            if self.stream.accept(":"):
                sort_name = self.stream.expect_ident("sort name").text
            binders.append((name, sort_name))
            if not self.stream.accept(","):
                return tuple(binders)

    def _atom(self) -> _UFormula:
        token = self.stream.current
        if token.kind == "ident" and token.text == "true":
            self.stream.advance()
            return _UConst(True)
        if token.kind == "ident" and token.text == "false":
            self.stream.advance()
            return _UConst(False)
        if self.stream.accept("("):
            inner = self.formula()
            self.stream.expect(")")
            return inner
        lhs = self.term()
        if self.stream.at("=") or self.stream.at("~="):
            negated = self.stream.advance().text == "~="
            return _UEq(lhs, self.term(), negated, token)
        if isinstance(lhs, _UIte):
            raise ParseError("an ite term cannot stand as a formula", token)
        return _UAtom(lhs, token)

    def term(self) -> _UTerm:
        token = self.stream.expect_ident("term")
        if token.text == "ite":
            self.stream.expect("(")
            cond = self.formula()
            self.stream.expect(",")
            then = self.term()
            self.stream.expect(",")
            els = self.term()
            self.stream.expect(")")
            return _UIte(cond, then, els, token)
        if token.text in _KEYWORDS:
            raise ParseError(f"keyword {token.text!r} used as a term", token)
        args: tuple[_UTerm, ...] = ()
        if self.stream.accept("("):
            parts = [self.term()]
            while self.stream.accept(","):
                parts.append(self.term())
            self.stream.expect(")")
            args = tuple(parts)
        return _UApp(token.text, args, token)


# ---------------------------------------------------------------------------
# Sort inference
# ---------------------------------------------------------------------------


class _Slot:
    """Union-find node carrying an optional resolved sort."""

    def __init__(self, name: str, sort: Sort | None = None) -> None:
        self.name = name
        self.sort = sort
        self.parent: "_Slot" = self

    def find(self) -> "_Slot":
        root = self
        while root.parent is not root:
            root = root.parent
        node = self
        while node.parent is not node:
            node.parent, node = root, node.parent
        return root

    def assign(self, sort: Sort, token: Token) -> None:
        root = self.find()
        if root.sort is None:
            root.sort = sort
        elif root.sort != sort:
            raise ParseError(
                f"variable {self.name!r} used at sorts "
                f"{root.sort.name!r} and {sort.name!r}",
                token,
            )

    def unify(self, other: "_Slot", token: Token) -> None:
        a, b = self.find(), other.find()
        if a is b:
            return
        if a.sort is not None and b.sort is not None and a.sort != b.sort:
            raise ParseError(
                f"variables {self.name!r} and {other.name!r} have "
                f"incompatible sorts",
                token,
            )
        if a.sort is None:
            a.parent = b
            return
        b.parent = a


@dataclass
class _Scope:
    """Lexical scope mapping variable names to slots."""

    slots: dict[str, _Slot]
    parent: "_Scope | None" = None

    def lookup(self, name: str) -> _Slot | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.slots:
                return scope.slots[name]
            scope = scope.parent
        return None


class _Elaborator:
    """Two passes over the untyped tree: infer sorts, then build the AST."""

    def __init__(self, vocab: Vocabulary, free: Mapping[str, Sort]) -> None:
        self.vocab = vocab
        self.free_scope = _Scope({name: _Slot(name, sort) for name, sort in free.items()})

    # -------------------------------------------------------------- pass 1

    def infer(self, fml: _UFormula, scope: _Scope) -> None:
        if isinstance(fml, _UConst):
            return
        if isinstance(fml, _UAtom):
            decl = self.vocab.get(fml.term.name)
            if scope.lookup(fml.term.name) is not None and not fml.term.args:
                raise ParseError(
                    f"variable {fml.term.name!r} used as a formula", fml.token
                )
            if not isinstance(decl, RelDecl):
                raise ParseError(
                    f"{fml.term.name!r} is not a declared relation", fml.token
                )
            self._infer_args(fml.term, decl.arg_sorts, scope)
            return
        if isinstance(fml, _UEq):
            lhs_sort = self.infer_term(fml.lhs, None, scope)
            rhs_sort = self.infer_term(fml.rhs, lhs_sort, scope)
            if lhs_sort is None and rhs_sort is not None:
                self.infer_term(fml.lhs, rhs_sort, scope)
            elif lhs_sort is None and rhs_sort is None:
                lhs_slot = self._var_slot(fml.lhs, scope)
                rhs_slot = self._var_slot(fml.rhs, scope)
                lhs_slot.unify(rhs_slot, fml.token)
            return
        if isinstance(fml, _UNot):
            self.infer(fml.arg, scope)
            return
        if isinstance(fml, _UBin):
            self.infer(fml.lhs, scope)
            self.infer(fml.rhs, scope)
            return
        if isinstance(fml, _UQuant):
            slots: dict[str, _Slot] = {}
            for name, sort_name in fml.binders:
                if name in self.vocab:
                    raise ParseError(
                        f"bound variable {name!r} shadows a declared symbol", fml.token
                    )
                sort = self._resolve_sort(sort_name, fml.token)
                slots[name] = _Slot(name, sort)
            self.infer(fml.body, _Scope(slots, scope))
            # Stash the slots for pass 2.
            self._quant_slots[id(fml)] = slots
            return
        raise TypeError(f"unexpected node: {fml!r}")

    _quant_slots: dict[int, dict[str, _Slot]]

    def _resolve_sort(self, sort_name: str | None, token: Token) -> Sort | None:
        if sort_name is None:
            return None
        sort = Sort(sort_name)
        if sort not in self.vocab.sorts:
            raise ParseError(f"unknown sort {sort_name!r}", token)
        return sort

    def _var_slot(self, term: _UTerm, scope: _Scope) -> _Slot:
        if not isinstance(term, _UApp) or term.args or term.name in self.vocab:
            raise ParseError(
                "cannot infer a sort for this equality; annotate a variable",
                term.token,
            )
        return self._lookup_or_free(term.name, scope)

    def _lookup_or_free(self, name: str, scope: _Scope) -> _Slot:
        slot = scope.lookup(name)
        if slot is not None:
            return slot
        slot = self.free_scope.lookup(name)
        if slot is None:
            slot = _Slot(name)
            self.free_scope.slots[name] = slot
        return slot

    def infer_term(self, term: _UTerm, expected: Sort | None, scope: _Scope) -> Sort | None:
        if isinstance(term, _UIte):
            self.infer(term.cond, scope)
            then_sort = self.infer_term(term.then, expected, scope)
            els_sort = self.infer_term(term.els, expected or then_sort, scope)
            if then_sort is None and els_sort is not None:
                then_sort = self.infer_term(term.then, els_sort, scope)
            return then_sort or els_sort
        decl = self.vocab.get(term.name)
        if scope.lookup(term.name) is None and self.free_scope.lookup(term.name) is None and decl is not None:
            if isinstance(decl, RelDecl):
                raise ParseError(f"relation {term.name!r} used as a term", term.token)
            if expected is not None and decl.sort != expected:
                raise ParseError(
                    f"{term.name!r} has sort {decl.sort.name!r}, "
                    f"expected {expected.name!r}",
                    term.token,
                )
            self._infer_args(term, decl.arg_sorts, scope)
            return decl.sort
        if term.args:
            raise ParseError(f"unknown function {term.name!r}", term.token)
        slot = self._lookup_or_free(term.name, scope)
        if expected is not None:
            slot.assign(expected, term.token)
        return slot.find().sort

    def _infer_args(self, app: _UApp, sorts: Sequence[Sort], scope: _Scope) -> None:
        if len(app.args) != len(sorts):
            raise ParseError(
                f"{app.name!r} expects {len(sorts)} arguments, got {len(app.args)}",
                app.token,
            )
        for arg, sort in zip(app.args, sorts):
            self.infer_term(arg, sort, scope)

    # -------------------------------------------------------------- pass 2

    def build(self, fml: _UFormula, scope: _Scope) -> s.Formula:
        if isinstance(fml, _UConst):
            return s.TRUE if fml.value else s.FALSE
        if isinstance(fml, _UAtom):
            decl = self.vocab.relation(fml.term.name)
            args = tuple(self.build_term(a, scope) for a in fml.term.args)
            return s.Rel(decl, args, span=fml.token.span)
        if isinstance(fml, _UEq):
            atom = s.Eq(
                self.build_term(fml.lhs, scope),
                self.build_term(fml.rhs, scope),
                span=fml.token.span,
            )
            if fml.negated:
                return s.with_span(s.not_(atom), fml.token.span)
            return atom
        if isinstance(fml, _UNot):
            return s.not_(self.build(fml.arg, scope))
        if isinstance(fml, _UBin):
            lhs = self.build(fml.lhs, scope)
            rhs = self.build(fml.rhs, scope)
            if fml.op == "&":
                return s.and_(lhs, rhs)
            if fml.op == "|":
                return s.or_(lhs, rhs)
            if fml.op == "->":
                return s.implies(lhs, rhs)
            return s.iff(lhs, rhs)
        if isinstance(fml, _UQuant):
            slots = self._quant_slots[id(fml)]
            vars_: list[s.Var] = []
            for name, _ in fml.binders:
                sort = slots[name].find().sort
                if sort is None:
                    raise ParseError(
                        f"cannot infer the sort of variable {name!r}; "
                        f"annotate it (e.g. {name}:sort)",
                        fml.token,
                    )
                vars_.append(s.Var(name, sort))
            body = self.build(fml.body, _Scope(slots, scope))
            ctor = s.forall if fml.kind == "forall" else s.exists
            return s.with_span(ctor(tuple(vars_), body), fml.token.span)
        raise TypeError(f"unexpected node: {fml!r}")

    def build_term(self, term: _UTerm, scope: _Scope) -> s.Term:
        if isinstance(term, _UIte):
            return s.Ite(
                self.build(term.cond, scope),
                self.build_term(term.then, scope),
                self.build_term(term.els, scope),
                span=term.token.span,
            )
        if scope.lookup(term.name) is None and self.free_scope.lookup(term.name) is None:
            decl = self.vocab.get(term.name)
            if isinstance(decl, FuncDecl):
                args = tuple(self.build_term(a, scope) for a in term.args)
                return s.App(decl, args, span=term.token.span)
        slot = scope.lookup(term.name) or self.free_scope.lookup(term.name)
        if slot is None:
            raise ParseError(f"unknown identifier {term.name!r}", term.token)
        sort = slot.find().sort
        if sort is None:
            raise ParseError(
                f"cannot infer the sort of variable {term.name!r}", term.token
            )
        return s.Var(term.name, sort, span=term.token.span)


def parse_formula(
    source: str, vocab: Vocabulary, free: Mapping[str, Sort] | None = None
) -> s.Formula:
    """Parse ``source`` against ``vocab``.

    ``free`` optionally supplies sorts for free variables; sorts of other
    variables are taken from annotations or inferred from use.
    """
    stream = TokenStream(tokenize(source))
    parser = _FormulaParser(stream)
    tree = parser.formula()
    stream.expect_eof()
    return elaborate_formula(tree, vocab, free)


def elaborate_formula(
    tree: _UFormula, vocab: Vocabulary, free: Mapping[str, Sort] | None = None
) -> s.Formula:
    """Resolve sorts in a parsed tree and build the typed AST."""
    elaborator = _Elaborator(vocab, dict(free or {}))
    elaborator._quant_slots = {}
    scope = _Scope({})
    elaborator.infer(tree, scope)
    return elaborator.build(tree, scope)


def parse_term(
    source: str, vocab: Vocabulary, free: Mapping[str, Sort] | None = None
) -> s.Term:
    """Parse a single term (sorts of free variables must be resolvable)."""
    stream = TokenStream(tokenize(source))
    parser = _FormulaParser(stream)
    tree = parser.term()
    stream.expect_eof()
    elaborator = _Elaborator(vocab, dict(free or {}))
    elaborator._quant_slots = {}
    scope = _Scope({})
    elaborator.infer_term(tree, None, scope)
    return elaborator.build_term(tree, scope)
