"""Finite first-order structures and formula evaluation (paper Definition 1).

A state of an RML program is a finite sorted structure: a finite domain per
sort plus interpretations for every relation, function and program variable
of the vocabulary.  This module provides:

* :class:`Elem` -- a named domain element of a given sort;
* :class:`Structure` -- a total structure with full formula evaluation
  (quantifiers range over the finite universe);
* helpers to build and modify structures functionally.

Evaluation is the ground truth the rest of the system is tested against: the
EPR solver's extracted models, the concrete RML interpreter, and the wp
calculus are all differentially checked using :meth:`Structure.satisfies`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from . import syntax as s
from .sorts import FuncDecl, RelDecl, Sort, Vocabulary


@dataclass(frozen=True, slots=True)
class Elem:
    """A domain element, identified by name and sort."""

    name: str
    sort: Sort

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Elem({self.name!r}, {self.sort.name!r})"


Assignment = Mapping[s.Var, Elem]


class EvaluationError(Exception):
    """Raised when evaluating over an ill-formed or incomplete structure."""


@dataclass(frozen=True)
class Structure:
    """A total finite structure over a vocabulary.

    ``universe`` maps each sort to its (non-empty) domain; ``rels`` maps each
    relation symbol to the set of tuples where it holds; ``funcs`` maps each
    function symbol to a total map from argument tuples to a result element
    (constants are keyed by the empty tuple).
    """

    vocab: Vocabulary
    universe: Mapping[Sort, tuple[Elem, ...]]
    rels: Mapping[RelDecl, frozenset[tuple[Elem, ...]]]
    funcs: Mapping[FuncDecl, Mapping[tuple[Elem, ...], Elem]]

    def __post_init__(self) -> None:
        for sort in self.vocab.sorts:
            if not self.universe.get(sort):
                raise EvaluationError(f"empty or missing domain for sort {sort.name!r}")
        for rel in self.vocab.relations:
            for tup in self.rels.get(rel, frozenset()):
                self._check_tuple(rel.name, tup, rel.arg_sorts)
        for func in self.vocab.functions:
            table = self.funcs.get(func)
            if table is None:
                raise EvaluationError(f"missing interpretation for function {func.name!r}")
            expected = itertools.product(*(self.universe[sort] for sort in func.arg_sorts))
            for args in expected:
                if args not in table:
                    raise EvaluationError(
                        f"function {func.name!r} undefined on {tuple(e.name for e in args)}"
                    )
                result = table[args]
                if result.sort != func.sort or result not in self.universe[func.sort]:
                    raise EvaluationError(
                        f"function {func.name!r} maps outside its result domain"
                    )
            self._check_no_extra(func, table)

    def _check_tuple(self, name: str, tup: tuple[Elem, ...], sorts: tuple[Sort, ...]) -> None:
        if len(tup) != len(sorts):
            raise EvaluationError(f"arity mismatch in interpretation of {name!r}")
        for elem, sort in zip(tup, sorts):
            if elem.sort != sort or elem not in self.universe[sort]:
                raise EvaluationError(f"element {elem.name!r} outside domain in {name!r}")

    def _check_no_extra(self, func: FuncDecl, table: Mapping[tuple[Elem, ...], Elem]) -> None:
        domain_size = 1
        for sort in func.arg_sorts:
            domain_size *= len(self.universe[sort])
        if len(table) != domain_size:
            raise EvaluationError(f"function {func.name!r} has out-of-domain entries")

    # ----------------------------------------------------------- accessors

    def sort_size(self, sort: Sort) -> int:
        return len(self.universe[sort])

    def elements(self) -> Iterator[Elem]:
        for sort in self.vocab.sorts:
            yield from self.universe[sort]

    def rel_holds(self, rel: RelDecl, args: tuple[Elem, ...]) -> bool:
        return args in self.rels.get(rel, frozenset())

    def func_value(self, func: FuncDecl, args: tuple[Elem, ...] = ()) -> Elem:
        return self.funcs[func][args]

    # ---------------------------------------------------------- evaluation

    def eval_term(self, term: s.Term, assignment: Assignment | None = None) -> Elem:
        assignment = assignment or {}
        if isinstance(term, s.Var):
            try:
                return assignment[term]
            except KeyError:
                raise EvaluationError(f"unbound variable {term.name!r}") from None
        if isinstance(term, s.App):
            args = tuple(self.eval_term(a, assignment) for a in term.args)
            try:
                return self.funcs[term.func][args]
            except KeyError:
                raise EvaluationError(
                    f"function {term.func.name!r} undefined on given arguments"
                ) from None
        if isinstance(term, s.Ite):
            if self.eval_formula(term.cond, assignment):
                return self.eval_term(term.then, assignment)
            return self.eval_term(term.els, assignment)
        raise TypeError(f"not a term: {term!r}")

    def eval_formula(self, formula: s.Formula, assignment: Assignment | None = None) -> bool:
        assignment = assignment or {}
        if isinstance(formula, s.Rel):
            args = tuple(self.eval_term(a, assignment) for a in formula.args)
            return args in self.rels.get(formula.rel, frozenset())
        if isinstance(formula, s.Eq):
            return self.eval_term(formula.lhs, assignment) == self.eval_term(
                formula.rhs, assignment
            )
        if isinstance(formula, s.Not):
            return not self.eval_formula(formula.arg, assignment)
        if isinstance(formula, s.And):
            return all(self.eval_formula(a, assignment) for a in formula.args)
        if isinstance(formula, s.Or):
            return any(self.eval_formula(a, assignment) for a in formula.args)
        if isinstance(formula, s.Implies):
            return (not self.eval_formula(formula.lhs, assignment)) or self.eval_formula(
                formula.rhs, assignment
            )
        if isinstance(formula, s.Iff):
            return self.eval_formula(formula.lhs, assignment) == self.eval_formula(
                formula.rhs, assignment
            )
        if isinstance(formula, (s.Forall, s.Exists)):
            domains = [self.universe[v.sort] for v in formula.vars]
            want_all = isinstance(formula, s.Forall)
            for combo in itertools.product(*domains):
                extended = dict(assignment)
                extended.update(zip(formula.vars, combo))
                holds = self.eval_formula(formula.body, extended)
                if want_all and not holds:
                    return False
                if not want_all and holds:
                    return True
            return want_all
        raise TypeError(f"not a formula: {formula!r}")

    def satisfies(self, formula: s.Formula) -> bool:
        """Evaluate a closed formula."""
        return self.eval_formula(formula, {})

    def satisfies_all(self, formulas: Iterable[s.Formula]) -> bool:
        return all(self.satisfies(f) for f in formulas)

    # -------------------------------------------------------- modification

    def with_rel(self, rel: RelDecl, tuples: Iterable[tuple[Elem, ...]]) -> "Structure":
        """A copy of this structure with relation ``rel`` reinterpreted."""
        rels = dict(self.rels)
        rels[rel] = frozenset(tuples)
        return Structure(self.vocab, self.universe, rels, self.funcs)

    def with_func(
        self, func: FuncDecl, table: Mapping[tuple[Elem, ...], Elem]
    ) -> "Structure":
        """A copy of this structure with function ``func`` reinterpreted."""
        funcs = dict(self.funcs)
        funcs[func] = dict(table)
        return Structure(self.vocab, self.universe, funcs=funcs, rels=self.rels)

    # -------------------------------------------------------------- counts

    def positive_count(self, rel: RelDecl) -> int:
        """Number of tuples in ``rel`` (a minimization measure, Sec. 4.3)."""
        return len(self.rels.get(rel, frozenset()))

    def negative_count(self, rel: RelDecl) -> int:
        """Number of tuples *not* in ``rel`` (a minimization measure)."""
        total = 1
        for sort in rel.arg_sorts:
            total *= len(self.universe[sort])
        return total - self.positive_count(rel)

    def __str__(self) -> str:
        from ..viz.text import structure_to_text

        return structure_to_text(self)


def make_structure(
    vocab: Vocabulary,
    universe: Mapping[Sort, Iterable[Elem] | Iterable[str] | int],
    rels: Mapping[RelDecl | str, Iterable[tuple[Elem, ...]]] | None = None,
    funcs: Mapping[FuncDecl | str, Mapping[tuple[Elem, ...], Elem]] | None = None,
) -> Structure:
    """Convenience constructor.

    ``universe`` values may be element iterables, name iterables, or a bare
    integer ``n`` (producing elements ``<sort>0 .. <sort>{n-1}``).  Relation
    and function keys may be declarations or names.  Missing relations
    default to empty; missing *constants* must still be supplied.
    """
    dom: dict[Sort, tuple[Elem, ...]] = {}
    for sort in vocab.sorts:
        spec = universe.get(sort, None)
        if spec is None:
            raise EvaluationError(f"no domain given for sort {sort.name!r}")
        if isinstance(spec, int):
            dom[sort] = tuple(Elem(f"{sort.name}{i}", sort) for i in range(spec))
        else:
            elems = []
            for item in spec:
                elems.append(item if isinstance(item, Elem) else Elem(item, sort))
            dom[sort] = tuple(elems)

    rel_interp: dict[RelDecl, frozenset[tuple[Elem, ...]]] = {}
    for key, tuples in (rels or {}).items():
        decl = vocab.relation(key) if isinstance(key, str) else key
        rel_interp[decl] = frozenset(tuples)
    for rel in vocab.relations:
        rel_interp.setdefault(rel, frozenset())

    func_interp: dict[FuncDecl, dict[tuple[Elem, ...], Elem]] = {}
    for key, table in (funcs or {}).items():
        decl = vocab.function(key) if isinstance(key, str) else key
        func_interp[decl] = dict(table)
    return Structure(vocab, dom, rel_interp, func_interp)


def all_structures(
    vocab: Vocabulary, sizes: Mapping[Sort, int], max_count: int | None = None
) -> Iterator[Structure]:
    """Enumerate every structure with the given domain sizes.

    Used by exhaustive differential tests on tiny vocabularies; the count is
    exponential, so ``max_count`` can cap the enumeration.
    """
    universe = {
        sort: tuple(Elem(f"{sort.name}{i}", sort) for i in range(sizes[sort]))
        for sort in vocab.sorts
    }
    rel_spaces = []
    for rel in vocab.relations:
        tuples = list(itertools.product(*(universe[sort] for sort in rel.arg_sorts)))
        subsets = []
        for mask in range(2 ** len(tuples)):
            subsets.append(frozenset(t for i, t in enumerate(tuples) if mask >> i & 1))
        rel_spaces.append(subsets)
    func_spaces = []
    for func in vocab.functions:
        arg_tuples = list(itertools.product(*(universe[sort] for sort in func.arg_sorts)))
        results = universe[func.sort]
        tables = [
            dict(zip(arg_tuples, choice))
            for choice in itertools.product(results, repeat=len(arg_tuples))
        ]
        func_spaces.append(tables)
    count = 0
    for rel_choice in itertools.product(*rel_spaces):
        for func_choice in itertools.product(*func_spaces):
            yield Structure(
                vocab,
                universe,
                dict(zip(vocab.relations, rel_choice)),
                dict(zip(vocab.functions, func_choice)),
            )
            count += 1
            if max_count is not None and count >= max_count:
                return
