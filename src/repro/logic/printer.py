"""Pretty-printing of terms and formulas.

The concrete syntax mirrors the one accepted by :mod:`repro.logic.parser`::

    forall N1, N2. ~(leader(N1) & leader(N2) & N1 ~= N2)

Operator precedence (loosest to tightest): quantifiers, ``<->``, ``->``,
``|``, ``&``, ``~``, atoms.  Output of :func:`to_str` parses back to an equal
AST, a property exercised by the round-trip tests.

This module is also the **order-deterministic fingerprint path**: the
printer walks the AST's tuples in declaration order and never iterates a
set, so :func:`canonical_str` (and its :func:`fingerprint` digest) is
byte-identical across interpreters regardless of ``PYTHONHASHSEED``.  The
proven-lemma ledger (:mod:`repro.proof.ledger`) keys formulas through it,
the same way the disk query cache relies on sorted symbol adoption in
:meth:`repro.solver.epr.EprSolver._working_vocabulary`.
"""

from __future__ import annotations

import hashlib

from . import syntax as s

_PREC_QUANT = 0
_PREC_IFF = 1
_PREC_IMPLIES = 2
_PREC_OR = 3
_PREC_AND = 4
_PREC_NOT = 5
_PREC_ATOM = 6


def term_to_str(term: s.Term) -> str:
    if isinstance(term, s.Var):
        return term.name
    if isinstance(term, s.App):
        if not term.args:
            return term.func.name
        args = ", ".join(term_to_str(arg) for arg in term.args)
        return f"{term.func.name}({args})"
    if isinstance(term, s.Ite):
        return (
            f"ite({formula_to_str(term.cond)}, "
            f"{term_to_str(term.then)}, {term_to_str(term.els)})"
        )
    raise TypeError(f"not a term: {term!r}")


def _wrap(text: str, prec: int, parent_prec: int) -> str:
    return f"({text})" if prec < parent_prec else text


def _fml(formula: s.Formula, parent_prec: int) -> str:
    if formula == s.TRUE:
        return "true"
    if formula == s.FALSE:
        return "false"
    if isinstance(formula, s.Rel):
        if not formula.args:
            return formula.rel.name
        args = ", ".join(term_to_str(arg) for arg in formula.args)
        return f"{formula.rel.name}({args})"
    if isinstance(formula, s.Eq):
        return f"{term_to_str(formula.lhs)} = {term_to_str(formula.rhs)}"
    if isinstance(formula, s.Not):
        if isinstance(formula.arg, s.Eq):
            inner = formula.arg
            return f"{term_to_str(inner.lhs)} ~= {term_to_str(inner.rhs)}"
        return f"~{_fml(formula.arg, _PREC_NOT)}"
    if isinstance(formula, s.And):
        text = " & ".join(_fml(arg, _PREC_AND + 1) for arg in formula.args)
        return _wrap(text, _PREC_AND, parent_prec)
    if isinstance(formula, s.Or):
        text = " | ".join(_fml(arg, _PREC_OR + 1) for arg in formula.args)
        return _wrap(text, _PREC_OR, parent_prec)
    if isinstance(formula, s.Implies):
        text = f"{_fml(formula.lhs, _PREC_IMPLIES + 1)} -> {_fml(formula.rhs, _PREC_IMPLIES)}"
        return _wrap(text, _PREC_IMPLIES, parent_prec)
    if isinstance(formula, s.Iff):
        text = f"{_fml(formula.lhs, _PREC_IFF + 1)} <-> {_fml(formula.rhs, _PREC_IFF + 1)}"
        return _wrap(text, _PREC_IFF, parent_prec)
    if isinstance(formula, (s.Forall, s.Exists)):
        word = "forall" if isinstance(formula, s.Forall) else "exists"
        # Binders are annotated so output always reparses: a variable that
        # is unused (or used only in equalities) has no inferable sort.
        names = ", ".join(f"{v.name}:{v.sort.name}" for v in formula.vars)
        text = f"{word} {names}. {_fml(formula.body, _PREC_QUANT)}"
        return _wrap(text, _PREC_QUANT, parent_prec)
    raise TypeError(f"not a formula: {formula!r}")


def formula_to_str(formula: s.Formula) -> str:
    return _fml(formula, _PREC_QUANT)


def to_str(node: s.Formula | s.Term) -> str:
    """Render a term or formula to concrete syntax."""
    if isinstance(node, (s.Var, s.App, s.Ite)):
        return term_to_str(node)
    return formula_to_str(node)


def canonical_str(node: s.Formula | s.Term) -> str:
    """The deterministic rendering used for content-addressed keys.

    Identical to :func:`to_str` today; named separately so key producers
    (the proven-lemma ledger, telemetry) declare their dependence on
    hash-seed-independent output rather than on pretty-printing per se.
    """
    return to_str(node)


def fingerprint(node: s.Formula | s.Term) -> str:
    """SHA-256 of the canonical rendering, stable across interpreters."""
    return hashlib.sha256(canonical_str(node).encode()).hexdigest()
