"""Formula normal forms: NNF, ite-elimination, prenexing, skolemization.

These transformations implement the logical plumbing behind the paper's
decidability argument (Section 3.3): RML verification conditions are
``exists* forall*`` (EPR) formulas; deciding them requires negation-normal
form, pulling quantifiers to the front, and replacing the leading
existentials with fresh Skolem constants.

Quantifiers originating from *different* subformulas bind different
variables and therefore commute, so when prenexing a conjunction or
disjunction we may interleave the children's prefixes arbitrarily.
:func:`prenex` exploits this with a greedy merge that produces an
``exists*forall*`` (or ``forall*exists*``) prefix whenever one exists, which
makes the fragment checks in :mod:`repro.logic.fragments` exact rather than
syntax-dependent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal

from . import syntax as s
from .sorts import FuncDecl
from .subst import FreshNames, fresh_var, substitute


# ---------------------------------------------------------------------------
# Negation normal form
# ---------------------------------------------------------------------------


def nnf(formula: s.Formula) -> s.Formula:
    """Negation normal form: negations only on atoms, no Implies/Iff.

    ``Iff`` is expanded to ``(a & b) | (~a & ~b)``; this duplicates the
    operands, which is acceptable for the shallow boolean structure RML
    produces (Tseitin conversion happens later at the ground level).
    """
    return _nnf(formula, positive=True)


def _nnf(formula: s.Formula, positive: bool) -> s.Formula:
    if isinstance(formula, (s.Rel, s.Eq)):
        return formula if positive else s.not_(formula)
    if isinstance(formula, s.Not):
        return _nnf(formula.arg, not positive)
    if isinstance(formula, s.And):
        parts = tuple(_nnf(a, positive) for a in formula.args)
        return s.and_(*parts) if positive else s.or_(*parts)
    if isinstance(formula, s.Or):
        parts = tuple(_nnf(a, positive) for a in formula.args)
        return s.or_(*parts) if positive else s.and_(*parts)
    if isinstance(formula, s.Implies):
        if positive:
            return s.or_(_nnf(formula.lhs, False), _nnf(formula.rhs, True))
        return s.and_(_nnf(formula.lhs, True), _nnf(formula.rhs, False))
    if isinstance(formula, s.Iff):
        both = s.and_(_nnf(formula.lhs, positive), _nnf(formula.rhs, True))
        neither = s.and_(_nnf(formula.lhs, not positive), _nnf(formula.rhs, False))
        return s.or_(both, neither)
    if isinstance(formula, s.Forall):
        body = _nnf(formula.body, positive)
        return s.forall(formula.vars, body) if positive else s.exists(formula.vars, body)
    if isinstance(formula, s.Exists):
        body = _nnf(formula.body, positive)
        return s.exists(formula.vars, body) if positive else s.forall(formula.vars, body)
    raise TypeError(f"not a formula: {formula!r}")


# ---------------------------------------------------------------------------
# ite elimination
# ---------------------------------------------------------------------------


def eliminate_ite(formula: s.Formula) -> s.Formula:
    """Remove all ``ite`` terms by case-splitting the enclosing atom.

    An atom ``A[ite(c, t, e)]`` becomes ``(c & A[t]) | (~c & A[e])``.  The
    conditions of RML ``ite`` terms are quantifier free, so the result stays
    in the same quantifier fragment as the input.
    """
    if isinstance(formula, (s.Rel, s.Eq)):
        return _split_atom(formula)
    if isinstance(formula, s.Not):
        return s.not_(eliminate_ite(formula.arg))
    if isinstance(formula, s.And):
        return s.and_(*(eliminate_ite(a) for a in formula.args))
    if isinstance(formula, s.Or):
        return s.or_(*(eliminate_ite(a) for a in formula.args))
    if isinstance(formula, s.Implies):
        return s.implies(eliminate_ite(formula.lhs), eliminate_ite(formula.rhs))
    if isinstance(formula, s.Iff):
        return s.iff(eliminate_ite(formula.lhs), eliminate_ite(formula.rhs))
    if isinstance(formula, s.Forall):
        return s.forall(formula.vars, eliminate_ite(formula.body))
    if isinstance(formula, s.Exists):
        return s.exists(formula.vars, eliminate_ite(formula.body))
    raise TypeError(f"not a formula: {formula!r}")


def _find_ite(term: s.Term) -> s.Ite | None:
    """Locate an innermost ``ite`` subterm, or None."""
    if isinstance(term, s.Var):
        return None
    if isinstance(term, s.App):
        for arg in term.args:
            found = _find_ite(arg)
            if found is not None:
                return found
        return None
    if isinstance(term, s.Ite):
        for arg in (term.then, term.els):
            found = _find_ite(arg)
            if found is not None:
                return found
        for sub in s.terms_of(term.cond):
            found = _find_ite(sub)
            if found is not None:
                return found
        return term
    raise TypeError(f"not a term: {term!r}")


def _replace_term(term: s.Term, old: s.Term, new: s.Term) -> s.Term:
    if term == old:
        return new
    if isinstance(term, s.App):
        return s.App(term.func, tuple(_replace_term(a, old, new) for a in term.args))
    if isinstance(term, s.Ite):
        return s.Ite(
            _replace_in_atom_args(term.cond, old, new),
            _replace_term(term.then, old, new),
            _replace_term(term.els, old, new),
        )
    return term


def _replace_in_atom_args(formula: s.Formula, old: s.Term, new: s.Term) -> s.Formula:
    if isinstance(formula, s.Rel):
        return s.Rel(formula.rel, tuple(_replace_term(a, old, new) for a in formula.args))
    if isinstance(formula, s.Eq):
        return s.Eq(_replace_term(formula.lhs, old, new), _replace_term(formula.rhs, old, new))
    if isinstance(formula, s.Not):
        return s.Not(_replace_in_atom_args(formula.arg, old, new))
    if isinstance(formula, s.And):
        return s.And(tuple(_replace_in_atom_args(a, old, new) for a in formula.args))
    if isinstance(formula, s.Or):
        return s.Or(tuple(_replace_in_atom_args(a, old, new) for a in formula.args))
    raise TypeError(f"unexpected connective inside an atom: {formula!r}")


def _split_atom(atom: s.Formula) -> s.Formula:
    ite = None
    for term in s.terms_of(atom):
        ite = _find_ite(term)
        if ite is not None:
            break
    if ite is None:
        return atom
    cond = eliminate_ite(ite.cond)
    then_atom = _replace_in_atom_args(atom, ite, ite.then)
    else_atom = _replace_in_atom_args(atom, ite, ite.els)
    return s.or_(
        s.and_(cond, _split_atom(then_atom)),
        s.and_(s.not_(cond), _split_atom(else_atom)),
    )


# ---------------------------------------------------------------------------
# Prenex normal form
# ---------------------------------------------------------------------------

QuantKind = Literal["A", "E"]


@dataclass(frozen=True)
class Prenex:
    """A formula in prenex form: a quantifier prefix over a QF matrix."""

    prefix: tuple[tuple[QuantKind, s.Var], ...]
    matrix: s.Formula

    def to_formula(self) -> s.Formula:
        out = self.matrix
        for kind, var in reversed(self.prefix):
            ctor = s.forall if kind == "A" else s.exists
            out = ctor((var,), out)
        return out

    def collapsed(self) -> str:
        """The prefix with runs collapsed, e.g. ``"EA"`` for exists*forall*."""
        out: list[str] = []
        for kind, _ in self.prefix:
            if not out or out[-1] != kind:
                out.append(kind)
        return "".join(out)


def prenex(formula: s.Formula, prefer: QuantKind = "E") -> Prenex:
    """Prenex normal form of ``formula`` (NNF is applied first).

    ``prefer`` chooses which quantifier kind the greedy merge pulls forward
    at each step when children allow a choice: ``"E"`` yields an
    exists*forall* prefix whenever one exists, ``"A"`` a forall*exists* one.
    Bound variables are renamed apart.
    """
    fresh = FreshNames(v.name for v in _all_vars(formula))
    return _prenex(nnf(formula), prefer, fresh)


def _all_vars(formula: s.Formula) -> set[s.Var]:
    out: set[s.Var] = set(s.free_vars(formula))

    def visit(fml: s.Formula) -> None:
        if isinstance(fml, (s.Forall, s.Exists)):
            out.update(fml.vars)
            visit(fml.body)
        elif isinstance(fml, s.Not):
            visit(fml.arg)
        elif isinstance(fml, (s.And, s.Or)):
            for arg in fml.args:
                visit(arg)
        elif isinstance(fml, (s.Implies, s.Iff)):
            visit(fml.lhs)
            visit(fml.rhs)

    visit(formula)
    return out


def _prenex(formula: s.Formula, prefer: QuantKind, fresh: FreshNames) -> Prenex:
    if isinstance(formula, (s.Rel, s.Eq)):
        return Prenex((), formula)
    if isinstance(formula, s.Not):
        # NNF input: negation only wraps atoms.
        return Prenex((), formula)
    if isinstance(formula, (s.Forall, s.Exists)):
        kind: QuantKind = "A" if isinstance(formula, s.Forall) else "E"
        renaming: dict[s.Var, s.Term] = {}
        bound: list[tuple[QuantKind, s.Var]] = []
        for var in formula.vars:
            new = s.Var(fresh(var.name), var.sort)
            if new != var:
                renaming[var] = new
            bound.append((kind, new))
        body = substitute(formula.body, renaming) if renaming else formula.body
        inner = _prenex(body, prefer, fresh)
        return Prenex(tuple(bound) + inner.prefix, inner.matrix)
    if isinstance(formula, (s.And, s.Or)):
        children = [_prenex(arg, prefer, fresh) for arg in formula.args]
        prefix = _merge_prefixes([list(c.prefix) for c in children], prefer)
        ctor = s.and_ if isinstance(formula, s.And) else s.or_
        return Prenex(tuple(prefix), ctor(*(c.matrix for c in children)))
    raise TypeError(f"formula not in NNF: {formula!r}")


def _merge_prefixes(
    prefixes: list[list[tuple[QuantKind, s.Var]]], prefer: QuantKind
) -> list[tuple[QuantKind, s.Var]]:
    """Greedy fair merge: drain every child's preferred-kind run first."""
    merged: list[tuple[QuantKind, s.Var]] = []
    pending = [list(p) for p in prefixes if p]
    while pending:
        progressed = False
        for child in pending:
            while child and child[0][0] == prefer:
                merged.append(child.pop(0))
                progressed = True
        pending = [c for c in pending if c]
        if not pending:
            break
        if not progressed:
            # No child offers the preferred kind next; emit one quantifier of
            # the other kind from each child and retry.
            for child in pending:
                merged.append(child.pop(0))
            pending = [c for c in pending if c]
    return merged


# ---------------------------------------------------------------------------
# Skolemization
# ---------------------------------------------------------------------------


class NotInFragment(Exception):
    """Raised when a formula falls outside the expected quantifier fragment."""


@dataclass(frozen=True)
class Skolemized:
    """Result of skolemizing a closed exists*forall* formula."""

    universal: s.Formula  # forall* QF (or plain QF)
    constants: tuple[FuncDecl, ...]  # the fresh Skolem constants introduced


def skolemize_ea(formula: s.Formula, fresh: FreshNames) -> Skolemized:
    """Skolemize a closed ``exists* forall*`` formula.

    The leading existentials become fresh constants; the result is a
    universally quantified (or quantifier-free) formula equisatisfiable with
    the input.  Raises :class:`NotInFragment` if the formula cannot be
    prenexed into exists*forall* form.
    """
    if s.free_vars(formula):
        raise ValueError("skolemize_ea expects a closed formula")
    pnf = prenex(eliminate_ite(formula), prefer="E")
    collapsed = pnf.collapsed()
    if collapsed not in ("", "E", "A", "EA"):
        raise NotInFragment(
            f"formula is not exists*forall* (prefix {collapsed}): {formula}"
        )
    constants: list[FuncDecl] = []
    mapping: dict[s.Var, s.Term] = {}
    universals: list[s.Var] = []
    for kind, var in pnf.prefix:
        if kind == "E":
            const = FuncDecl(fresh(f"sk_{var.name}"), (), var.sort)
            constants.append(const)
            mapping[var] = s.App(const, ())
        else:
            universals.append(var)
    matrix = substitute(pnf.matrix, mapping) if mapping else pnf.matrix
    universal = s.forall(tuple(universals), matrix) if universals else matrix
    return Skolemized(universal, tuple(constants))
