"""A small hand-written lexer shared by the formula and RML parsers.

Tokens carry their source position for error reporting.  Comments run from
``#`` to end of line.  Multi-character operators are matched longest-first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

_PUNCTUATION = (
    ":=",
    "~=",
    "->",
    "<->",
    "(",
    ")",
    "{",
    "}",
    ",",
    ".",
    ":",
    ";",
    "=",
    "&",
    "|",
    "~",
    "*",
)


@dataclass(frozen=True, slots=True)
class Span:
    """A half-open source region ``[start, end)`` in 1-based line/column.

    Spans flow from :class:`Token` through both parsers into the logic and
    RML ASTs (as non-comparing ``span`` fields) so that static analysis can
    point diagnostics at the offending source text.  Spans never affect
    structural equality or hashing of the nodes that carry them.
    """

    line: int
    col: int
    end_line: int
    end_col: int

    def union(self, other: "Span | None") -> "Span":
        """The smallest span covering both operands."""
        if other is None:
            return self
        start = min((self.line, self.col), (other.line, other.col))
        end = max((self.end_line, self.end_col), (other.end_line, other.end_col))
        return Span(start[0], start[1], end[0], end[1])

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"


class LexError(Exception):
    """Raised on an unrecognized character; carries its source position."""

    def __init__(self, message: str, line: int, col: int) -> None:
        super().__init__(f"{message} (line {line}, column {col})")
        self.line = line
        self.col = col
        self.span = Span(line, col, line, col + 1)


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # "ident", "punct", or "eof"
    text: str
    line: int
    col: int

    @property
    def span(self) -> Span:
        """The source region this token occupies (single line)."""
        return Span(self.line, self.col, self.line, self.col + max(len(self.text), 1))

    def __str__(self) -> str:
        return "end of input" if self.kind == "eof" else repr(self.text)


def tokenize(source: str) -> list[Token]:
    """Split ``source`` into tokens, ending with a single EOF token."""
    tokens: list[Token] = []
    line, col = 1, 1
    i = 0
    length = len(source)
    while i < length:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#":
            while i < length and source[i] != "\n":
                i += 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (source[i].isalnum() or source[i] in "_'"):
                i += 1
            text = source[start:i]
            tokens.append(Token("ident", text, line, col))
            col += len(text)
            continue
        for punct in _PUNCTUATION:
            if source.startswith(punct, i):
                tokens.append(Token("punct", punct, line, col))
                i += len(punct)
                col += len(punct)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", "", line, col))
    return tokens


class TokenStream:
    """Cursor over a token list with one-token lookahead helpers."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def at(self, text: str) -> bool:
        return self.current.kind != "eof" and self.current.text == text

    def at_ident(self) -> bool:
        return self.current.kind == "ident"

    def peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self._pos += 1
        return token

    def accept(self, text: str) -> bool:
        if self.at(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.at(text):
            raise ParseError(f"expected {text!r}, found {self.current}", self.current)
        return self.advance()

    def expect_ident(self, description: str = "identifier") -> Token:
        if self.current.kind != "ident":
            raise ParseError(f"expected {description}, found {self.current}", self.current)
        return self.advance()

    def expect_eof(self) -> None:
        if self.current.kind != "eof":
            raise ParseError(f"trailing input: {self.current}", self.current)


class ParseError(Exception):
    """A syntax or sort-resolution error with source position.

    The raw message, the offending token, and its :class:`Span` are kept as
    attributes (``bare_message``, ``token``, ``span``) so callers --
    notably the diagnostics engine in :mod:`repro.analysis` -- can render
    the error with a source excerpt instead of reparsing ``str(error)``.
    """

    def __init__(self, message: str, token: Token | None = None) -> None:
        self.bare_message = message
        self.token = token
        self.span: Span | None = token.span if token is not None else None
        if token is not None:
            message = f"{message} (line {token.line}, column {token.col})"
        super().__init__(message)


def idents(stream: TokenStream) -> Iterator[str]:
    """Parse a comma-separated identifier list."""
    yield stream.expect_ident().text
    while stream.accept(","):
        yield stream.expect_ident().text
