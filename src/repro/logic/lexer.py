"""A small hand-written lexer shared by the formula and RML parsers.

Tokens carry their source position for error reporting.  Comments run from
``#`` to end of line.  Multi-character operators are matched longest-first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

_PUNCTUATION = (
    ":=",
    "~=",
    "->",
    "<->",
    "(",
    ")",
    "{",
    "}",
    ",",
    ".",
    ":",
    ";",
    "=",
    "&",
    "|",
    "~",
    "*",
)


class LexError(Exception):
    """Raised on an unrecognized character."""


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # "ident", "punct", or "eof"
    text: str
    line: int
    col: int

    def __str__(self) -> str:
        return "end of input" if self.kind == "eof" else repr(self.text)


def tokenize(source: str) -> list[Token]:
    """Split ``source`` into tokens, ending with a single EOF token."""
    tokens: list[Token] = []
    line, col = 1, 1
    i = 0
    length = len(source)
    while i < length:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#":
            while i < length and source[i] != "\n":
                i += 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (source[i].isalnum() or source[i] in "_'"):
                i += 1
            text = source[start:i]
            tokens.append(Token("ident", text, line, col))
            col += len(text)
            continue
        for punct in _PUNCTUATION:
            if source.startswith(punct, i):
                tokens.append(Token("punct", punct, line, col))
                i += len(punct)
                col += len(punct)
                break
        else:
            raise LexError(f"unexpected character {ch!r} at line {line}, column {col}")
    tokens.append(Token("eof", "", line, col))
    return tokens


class TokenStream:
    """Cursor over a token list with one-token lookahead helpers."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def at(self, text: str) -> bool:
        return self.current.kind != "eof" and self.current.text == text

    def at_ident(self) -> bool:
        return self.current.kind == "ident"

    def peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self._pos += 1
        return token

    def accept(self, text: str) -> bool:
        if self.at(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.at(text):
            raise ParseError(f"expected {text!r}, found {self.current}", self.current)
        return self.advance()

    def expect_ident(self, description: str = "identifier") -> Token:
        if self.current.kind != "ident":
            raise ParseError(f"expected {description}, found {self.current}", self.current)
        return self.advance()

    def expect_eof(self) -> None:
        if self.current.kind != "eof":
            raise ParseError(f"trailing input: {self.current}", self.current)


class ParseError(Exception):
    """A syntax or sort-resolution error with source position."""

    def __init__(self, message: str, token: Token | None = None) -> None:
        if token is not None:
            message = f"{message} (line {token.line}, column {token.col})"
        super().__init__(message)


def idents(stream: TokenStream) -> Iterator[str]:
    """Parse a comma-separated identifier list."""
    yield stream.expect_ident().text
    while stream.accept(","):
        yield stream.expect_ident().text
