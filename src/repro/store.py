"""Shared machinery for on-disk content-addressed stores.

Both persistent stores -- the solver's :class:`~repro.solver.cache.DiskCache`
and the proof ledger (:mod:`repro.proof.ledger`) -- keep one small file per
entry, named by a SHA-256 digest and sharded into 256 two-hex-digit
subdirectories.  They share the same durability obligations:

* **atomic writes** (temp file + ``os.replace``) so a reader never sees a
  partial entry, even when the writer is SIGKILLed mid-write;
* **corruption tolerance**: an unreadable entry is a miss, deleted so the
  next write can heal it, with a warn-once message through the
  ``repro.store`` logger -- a damaged store degrades to recomputing,
  never to a wrong answer or a crash;
* **multi-process safety**: concurrent runs sharing one store directory
  (parallel CI jobs, pool workers) must never corrupt it or lose each
  other's entries.

Reads are **lock-free**: ``os.replace`` guarantees a complete file, and
keys are content addresses, so any complete entry anywhere is valid.  The
one operation that needs coordination is *deleting* a corrupt entry --
without a lock, process A can read a truncated entry, decide to heal it,
and unlink the *fresh* entry process B just renamed into place.
:meth:`ShardedStore.heal` therefore takes an ``fcntl`` advisory lock on a
per-store lockfile and re-validates the entry under the lock before
unlinking: if the bytes now parse, the entry was concurrently repaired
and is returned instead of deleted.

Transient I/O errors during writes (``EAGAIN``/``EINTR``/``ENOSPC``-
adjacent hiccups on network or pressured filesystems) are retried with
bounded jittered backoff (:func:`with_retry`); each retry increments the
``store_retries_total`` counter and emits a ``store.retry`` trace point so
``repro report`` surfaces them.  A write that still fails after the
retries is counted in ``write_errors`` and swallowed -- a read-only or
full disk must never fail a verification run.
"""

from __future__ import annotations

import contextlib
import errno
import logging
import os
import random
import tempfile
import time
from typing import Callable, Iterator

from . import obs

try:  # pragma: no cover - POSIX only; gated at use sites
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

logger = logging.getLogger("repro.store")

#: errno values worth retrying: the operation may succeed a moment later.
TRANSIENT_ERRNOS = frozenset(
    {
        errno.EAGAIN,
        errno.EINTR,
        errno.EBUSY,
        errno.ENOSPC,  # space is routinely freed under log rotation / GC
        errno.EDQUOT,
        getattr(errno, "EWOULDBLOCK", errno.EAGAIN),
    }
)

#: write attempts per entry (1 initial + 2 retries)
RETRY_ATTEMPTS = 3

#: base backoff in seconds; attempt ``i`` sleeps ``base * 2**i`` plus jitter
RETRY_BASE_SECONDS = 0.01


def is_transient(error: OSError) -> bool:
    """Is this the kind of I/O error a short backoff can outwait?"""
    return getattr(error, "errno", None) in TRANSIENT_ERRNOS


def with_retry(
    operation: Callable[[], None],
    describe: str,
    attempts: int = RETRY_ATTEMPTS,
    base: float = RETRY_BASE_SECONDS,
) -> None:
    """Run ``operation``, retrying transient ``OSError`` with backoff.

    Non-transient errors (and the final transient failure) propagate to
    the caller, which decides whether they are fatal.  Each retry sleeps
    ``base * 2**attempt`` seconds plus up to 50% uniform jitter -- two
    processes hitting the same hiccup must not re-collide in lockstep.
    """
    for attempt in range(attempts):
        try:
            operation()
            return
        except OSError as error:
            if attempt == attempts - 1 or not is_transient(error):
                raise
            obs.inc("store_retries_total")
            obs.point(
                "store.retry",
                op=describe,
                errno=error.errno,
                attempt=attempt + 1,
            )
            delay = base * (2**attempt)
            time.sleep(delay * (1.0 + random.random() * 0.5))


class ShardedStore:
    """One-file-per-entry store, sharded by digest prefix.

    ``suffix`` distinguishes the entry format (``.pkl``, ``.json``); the
    bytes themselves are opaque here -- owners serialize/validate.
    ``write_errors`` counts entries that could not be persisted even
    after retries.
    """

    def __init__(self, root: str, suffix: str) -> None:
        self.root = root
        self.suffix = suffix
        self.write_errors = 0
        self._warned: set[str] = set()

    # ------------------------------------------------------------ layout

    def path_of(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], digest + self.suffix)

    def _lock_path(self) -> str:
        return os.path.join(self.root, ".lock")

    @contextlib.contextmanager
    def lock(self) -> Iterator[None]:
        """Advisory exclusive lock over the store's mutation-sensitive ops.

        Reads never take it (atomic renames keep them safe); only
        corrupt-entry deletion does, to close the heal-vs-rewrite race.
        Degrades to lockless on platforms without ``fcntl`` or when the
        lockfile cannot be created (read-only store).
        """
        if fcntl is None:
            yield
            return
        handle = None
        try:
            os.makedirs(self.root, exist_ok=True)
            handle = open(self._lock_path(), "a+")
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        except OSError:
            if handle is not None:
                handle.close()
                handle = None
        try:
            yield
        finally:
            if handle is not None:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
                except OSError:  # pragma: no cover - unlock is best effort
                    pass
                handle.close()

    # ------------------------------------------------------------- reads

    def read(self, digest: str) -> bytes | None:
        """The entry's bytes, or None when absent.  Lock-free.

        May return bytes that fail the owner's validation (truncated by a
        crashed writer on a non-atomic filesystem, hand-edited, stale
        format) -- the owner then calls :meth:`heal`.
        """
        try:
            with open(self.path_of(digest), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None
        except OSError:
            return None

    # ------------------------------------------------------------ writes

    def write(self, digest: str, payload: bytes) -> bool:
        """Atomically persist one entry; True on success.

        Failures after retries are absorbed into ``write_errors``: losing
        a cache/ledger entry costs a future re-solve, never correctness.
        """
        path = self.path_of(digest)
        directory = os.path.dirname(path)

        def attempt() -> None:
            os.makedirs(directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp, path)  # atomic: readers never see partials
            except BaseException:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
                raise

        try:
            with_retry(attempt, f"write {digest[:8]}")
        except OSError:
            self.write_errors += 1
            return False
        return True

    # ----------------------------------------------------------- healing

    def heal(
        self,
        digest: str,
        validate: Callable[[bytes], bool],
        reason: str,
    ) -> bytes | None:
        """Resolve an entry that failed validation on a lock-free read.

        Under the store lock, the entry is re-read and re-validated: a
        concurrent writer may have replaced the bad bytes with a good
        entry between our read and now, and unlinking blindly would lose
        it.  Returns the repaired bytes when that happened; otherwise
        deletes the entry (so the next write heals it), warns once per
        ``(store, reason)`` through the ``repro.store`` logger, and
        returns None.
        """
        path = self.path_of(digest)
        with self.lock():
            current: bytes | None
            try:
                with open(path, "rb") as handle:
                    current = handle.read()
            except OSError:
                return None  # already gone: someone else healed it
            try:
                if validate(current):
                    return current  # concurrently repaired; keep it
            except Exception:
                pass
            try:
                os.remove(path)
            except OSError:
                pass
        self.warn_once(
            reason,
            f"{self.root}: entry {digest[:12]}... {reason}; "
            "removed and will be recomputed",
        )
        return None

    def warn_once(self, key: str, message: str) -> None:
        """Log ``message`` once per (store instance, key)."""
        if key in self._warned:
            return
        self._warned.add(key)
        logger.warning(message)

    # --------------------------------------------------------- inventory

    def digests(self) -> Iterator[str]:
        """Every entry digest currently in the store, sorted."""
        try:
            shards = sorted(os.listdir(self.root))
        except OSError:
            return
        for shard in shards:
            if len(shard) != 2:
                continue
            try:
                names = sorted(os.listdir(os.path.join(self.root, shard)))
            except OSError:
                continue
            for name in names:
                if name.endswith(self.suffix):
                    yield name[: -len(self.suffix)]

    def __len__(self) -> int:
        return sum(1 for _ in self.digests())
