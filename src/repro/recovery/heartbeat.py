"""Worker liveness heartbeats.

The dispatch parent's only liveness signals used to be the result pipe
(EOF = crash) and the 2x-wall external deadline (silence = hang).  A
worker wedged in a pathological grounding loop is indistinguishable from
one legitimately solving a hard query until that deadline -- which for a
large wall budget means minutes of a pool slot burning CPU for nothing.

Each pool worker gets a third, dedicated **heartbeat pipe**.  The worker
arms it after fork (:func:`arm`); the solver's long-running loops (CDCL
decisions, CEGAR refinement, grounding) call :func:`beat` as they spin.
``beat`` is engineered to sit inside hot loops:

* disarmed (the parent process, the serial fallback, tests) it is one
  global ``is None`` check;
* armed, it rate-limits itself to one byte per :data:`BEAT_INTERVAL`
  seconds, so the pipe never fills and the cost never shows in profiles;
* a broken pipe (parent died) disarms quietly -- the worker is about to
  be reaped anyway and must not crash mid-solve with a stack trace.

The parent side (:mod:`repro.solver.dispatch`) drains the pipe inside its
``connection.wait`` loop and timestamps each drain; a busy worker whose
last beat is older than :func:`heartbeat_timeout` seconds is declared
wedged and killed *before* the external deadline, and its query is
retried like any other worker loss.
"""

from __future__ import annotations

import os
import time
from multiprocessing.connection import Connection

#: minimum seconds between bytes actually written by :func:`beat`
BEAT_INTERVAL = 0.25

#: default seconds of beat silence after which a busy worker is wedged
DEFAULT_TIMEOUT = 300.0

_conn: Connection | None = None
_last_sent = 0.0


def arm(conn: Connection) -> None:
    """Called in a freshly forked worker: subsequent beats go to ``conn``."""
    global _conn, _last_sent
    _conn = conn
    _last_sent = 0.0


def disarm() -> None:
    global _conn
    _conn = None


def armed() -> bool:
    return _conn is not None


def beat(force: bool = False) -> None:
    """Tell the dispatch parent this worker is alive (rate-limited).

    Safe to call from any solver loop at any frequency; a no-op unless
    :func:`arm` ran in this process.  ``force=True`` bypasses the rate
    limit -- used once at task start so the parent's staleness clock
    starts from the task, not from the previous task's last beat.
    """
    global _last_sent
    conn = _conn
    if conn is None:
        return
    now = time.monotonic()
    if not force and now - _last_sent < BEAT_INTERVAL:
        return
    _last_sent = now
    try:
        conn.send_bytes(b".")
    except (OSError, ValueError):
        disarm()  # parent gone; die quietly when it reaps us


def heartbeat_timeout() -> float:
    """``REPRO_HEARTBEAT_TIMEOUT`` seconds (default 300; <= 0 disables)."""
    raw = os.environ.get("REPRO_HEARTBEAT_TIMEOUT", "").strip()
    if not raw:
        return DEFAULT_TIMEOUT
    try:
        return float(raw)
    except ValueError:
        return DEFAULT_TIMEOUT
