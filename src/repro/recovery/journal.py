"""The write-ahead run journal.

An append-only JSONL file under the run directory, recording engine
progress as it happens so a killed run can resume where it stopped.  One
JSON object per line::

    {"v": 1, "seq": 0, "kind": "header", "key": "", "data": {...meta...}}
    {"v": 1, "seq": 1, "kind": "obligation", "key": "<sha>", "data": {...}}
    ...

Durability discipline (write-ahead semantics):

* every :meth:`Journal.append` writes one complete line, flushes, and
  ``os.fsync``'s before returning -- an event is either fully on disk or
  absent, never half-written *and relied upon*;
* the file is only ever appended to; resume never rewrites history;
* loading tolerates a **truncated tail**: the one line a crash can leave
  half-written is detected (bad JSON, wrong schema, non-monotonic seq),
  the file is truncated back to the last durable line, and replay
  proceeds -- a torn tail costs one event, never the run;
* a schema version (``v``) guards replay across format changes: a journal
  written by a different schema is ignored wholesale rather than
  misread.

Replay is the engines' contract: before solving, an engine asks
:meth:`replay` (last event for a kind/key) or scans :attr:`events` (for
multi-event state like UPDR frame snapshots plus trailing learned
clauses) and skips work the journal proves complete.  ``reused`` /
``recorded`` feed the ``resume_reused_ratio`` gauge.

Chaos integration: immediately after each durable append the journal
calls :func:`repro.solver.faults.maybe_inject_main`, giving the
``REPRO_FAULT=kill9:<p>`` harness a deterministic SIGKILL point at every
journal boundary -- exactly the states a resume must be able to
reconstruct.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass
from typing import Any, Iterable

from .. import obs
from ..store import with_retry

logger = logging.getLogger("repro.recovery")

#: journal schema version; any other version on disk is ignored wholesale
JOURNAL_FORMAT = 1

#: the journal file's name inside a run directory
JOURNAL_NAME = "journal.jsonl"


@dataclass(frozen=True)
class JournalEvent:
    """One replayed journal line."""

    seq: int
    kind: str
    key: str
    data: dict[str, Any]


class Journal:
    """The write-ahead journal of one verification run.

    Construct through :meth:`fresh` (new run: truncate, write the header)
    or :meth:`resume` (replay an existing journal, truncate a torn tail,
    reopen for appending).  Not safe for concurrent use from multiple
    processes -- each run owns its run directory; the *shared* stores
    (cache, ledger) are what concurrent runs coordinate through.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.events: list[JournalEvent] = []
        self.reused = 0
        self.recorded = 0
        self._handle = None
        self._seq = 0
        self._latest: dict[tuple[str, str], dict[str, Any]] = {}

    # ------------------------------------------------------------ lifecycle

    @classmethod
    def fresh(cls, path: str, meta: dict[str, Any] | None = None) -> "Journal":
        """Start a new journal, discarding any previous file at ``path``."""
        journal = cls(path)
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        journal._handle = open(path, "w", encoding="utf-8")
        journal._write_line("header", "", meta or {})
        return journal

    @classmethod
    def resume(cls, path: str) -> "Journal":
        """Replay an existing journal and reopen it for appending.

        Tolerates a truncated tail: reading stops at the first malformed
        or out-of-order line, the file is truncated back to the last good
        byte, and everything before it is replayed.  A journal whose
        header carries a different schema version is ignored wholesale
        (replayed as empty) -- stale-format progress must not be trusted.
        """
        journal = cls(path)
        good_end = 0
        expected_seq = 0
        with obs.span("journal.load", path=path) as sp:
            with open(path, "rb") as handle:
                blob = handle.read()
            pos = 0
            while pos < len(blob):
                newline = blob.find(b"\n", pos)
                if newline == -1:
                    # A final line with no newline is by definition a torn
                    # tail: appends always write "line\n" in one call.
                    error: Exception | str = "no trailing newline"
                    record = None
                else:
                    raw = blob[pos:newline]
                    try:
                        record = json.loads(raw.decode("utf-8"))
                        if record["v"] != JOURNAL_FORMAT:
                            raise ValueError(f"schema {record['v']}")
                        if record["seq"] != expected_seq:
                            raise ValueError("non-monotonic seq")
                        if not isinstance(record["data"], dict):
                            raise ValueError("data is not an object")
                        error = ""
                    except Exception as bad:
                        error = bad
                        record = None
                if record is None:
                    if expected_seq == 0:
                        # Bad header: a stale schema or a foreign file --
                        # none of its progress can be trusted.
                        logger.warning(
                            "%s: unreadable journal header (%s); "
                            "starting over",
                            path,
                            error,
                        )
                        journal.events = []
                        journal._latest = {}
                        good_end = 0
                        expected_seq = 0
                    else:
                        logger.warning(
                            "%s: truncated tail at line %d (%s); "
                            "replaying the %d durable event(s) before it",
                            path,
                            expected_seq + 1,
                            error,
                            expected_seq,
                        )
                    break
                expected_seq += 1
                good_end = newline + 1
                pos = newline + 1
                if record["kind"] != "header":
                    event = JournalEvent(
                        record["seq"], record["kind"], record["key"],
                        record["data"],
                    )
                    journal.events.append(event)
                    journal._latest[(event.kind, event.key)] = event.data
            journal._seq = expected_seq
            # Truncate the torn tail so the next append leaves valid JSONL.
            with open(path, "r+b") as handle:
                handle.truncate(good_end)
            journal._handle = open(path, "a", encoding="utf-8")
            if expected_seq == 0:
                journal._write_line("header", "", {})
            sp.set(events=len(journal.events))
        return journal

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except (OSError, ValueError):
                pass
            self._handle.close()
            self._handle = None

    @property
    def closed(self) -> bool:
        return self._handle is None

    # -------------------------------------------------------------- writes

    def _write_line(self, kind: str, key: str, data: dict[str, Any]) -> None:
        assert self._handle is not None, "journal is closed"
        line = json.dumps(
            {
                "v": JOURNAL_FORMAT,
                "seq": self._seq,
                "kind": kind,
                "key": key,
                "data": data,
            },
            sort_keys=True,
        )
        handle = self._handle

        def write() -> None:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

        with_retry(write, f"journal {kind}")
        self._seq += 1

    def append(self, kind: str, key: str, **data: Any) -> None:
        """Durably record one progress event (then: chaos kill point).

        The event is fsync'd before this returns -- work recorded here is
        work a resumed run will never redo, so the record must hit disk
        before the engine moves on (write-ahead, not write-behind).
        """
        if self._handle is None:
            return
        self._write_line(kind, key, data)
        self._latest[(kind, key)] = data
        self.recorded += 1
        obs.point("journal.append", kind=kind)
        # Deterministic SIGKILL point for the kill9 chaos harness: right
        # after the event is durable, i.e. at exactly the states resume
        # must reconstruct.  Imported lazily: repro.solver pulls in
        # dispatch, which needs repro.recovery.heartbeat.
        from ..solver import faults

        faults.maybe_inject_main(f"journal:{kind}:{self._seq}")

    # -------------------------------------------------------------- replay

    def replay(self, kind: str, key: str) -> dict[str, Any] | None:
        """The last recorded data for ``(kind, key)``, or None.

        A hit counts toward ``reused`` -- the caller is expected to skip
        the corresponding work.
        """
        data = self._latest.get((kind, key))
        if data is not None:
            self.reused += 1
        return data

    def peek(self, kind: str, key: str) -> dict[str, Any] | None:
        """Like :meth:`replay` but without counting a reuse."""
        return self._latest.get((kind, key))

    def events_of(self, kinds: Iterable[str], key: str) -> list[JournalEvent]:
        """All replayed events of the given kinds for ``key``, in order."""
        wanted = set(kinds)
        return [
            event
            for event in self.events
            if event.key == key and event.kind in wanted
        ]

    def mark_reused(self, count: int = 1) -> None:
        """Count ``count`` replayed events as reused (custom replay paths)."""
        self.reused += count

    # ------------------------------------------------------------- metrics

    def reused_ratio(self) -> float:
        """Fraction of this run's events that came from the journal."""
        total = self.reused + self.recorded
        return self.reused / total if total else 0.0
