"""Crash-safe verification runs: journal, resume, signals, supervision.

PR 2's fault tolerance stops at the single query -- a crashed *worker* is
retried, but a crashed *main process* (OOM kill, SIGTERM at minute 30,
Ctrl-C) discards every Houdini round and UPDR frame not already in the
ledger.  This package makes whole runs durable:

* :mod:`.journal` -- a write-ahead run journal: append-only JSONL with
  fsync'd atomic appends, a schema version, and truncated-tail tolerance,
  recording engine progress events (Houdini surviving pools per round,
  UPDR frame snapshots and learned clauses, BMC probes refuted, discharged
  prove/induction obligations);
* :mod:`.resume` -- run directories (``.repro-runs/``), the ``meta.json``
  argv record that lets ``repro resume RUN_DIR`` re-invoke the original
  command, and the resumable exit code;
* :mod:`.signals` -- SIGINT/SIGTERM translated into a catchable
  :class:`Interrupted` so the CLI can flush the journal, shut down the
  worker pool (no orphaned children), and exit resumable;
* :mod:`.heartbeat` -- worker-side heartbeats over a dedicated pipe, so
  the dispatch watchdog can detect a silently wedged worker long before
  its 2x-wall external deadline.

Engines accept ``journal=`` and replay completed work from it before
solving anything -- the same skip-if-recorded discipline the proof ledger
established, but scoped to one run and covering *intermediate* state
(candidate pools, frames) the content-addressed ledger can never hold.
"""

from .journal import JOURNAL_FORMAT, Journal, JournalEvent
from .resume import (
    EXIT_RESUMABLE,
    RunMeta,
    default_run_dir,
    load_meta,
    runs_root,
    write_meta,
)
from .signals import Interrupted, install_handlers

#: the process-wide active journal, so signal handlers reached from
#: anywhere can flush it (set by the CLI, cleared on close)
_active: Journal | None = None


def set_active_journal(journal: Journal | None) -> Journal | None:
    """Register the run's journal for signal-time flushing; returns the old."""
    global _active
    old = _active
    _active = journal
    return old


def active_journal() -> Journal | None:
    return _active


__all__ = [
    "EXIT_RESUMABLE",
    "JOURNAL_FORMAT",
    "Interrupted",
    "Journal",
    "JournalEvent",
    "RunMeta",
    "active_journal",
    "default_run_dir",
    "install_handlers",
    "load_meta",
    "runs_root",
    "set_active_journal",
    "write_meta",
]
