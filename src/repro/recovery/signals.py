"""SIGINT/SIGTERM as a catchable exception.

Default signal handling is the enemy of durability: SIGTERM kills the
main process mid-append, and Python's KeyboardInterrupt can surface
anywhere -- including inside a pool worker's fork window, which is how
Ctrl-C used to orphan workers.  :func:`install_handlers` converts both
signals into :class:`Interrupted`, raised at the next bytecode boundary
of the *main* process only, so the CLI's one ``except Interrupted``
block can flush the journal, shut down the worker pool, and exit with
:data:`~repro.recovery.resume.EXIT_RESUMABLE`.

Pool workers never see these handlers: they ignore SIGINT outright
(terminal Ctrl-C broadcasts to the whole foreground process group) and
are reaped explicitly by :func:`repro.solver.dispatch.shutdown_pool`.
"""

from __future__ import annotations

import signal
from typing import Callable


class Interrupted(Exception):
    """A termination signal arrived; unwind, flush, exit resumable."""

    def __init__(self, signum: int) -> None:
        super().__init__(signal.Signals(signum).name)
        self.signum = signum


def install_handlers(
    signums: tuple[int, ...] = (signal.SIGINT, signal.SIGTERM),
) -> Callable[[], None]:
    """Route the given signals into :class:`Interrupted`; returns a restore.

    Degrades to a no-op off the main thread (Python only allows signal
    handling there) -- embedding callers lose graceful shutdown, not
    functionality.
    """

    def raise_interrupted(signum: int, frame) -> None:
        raise Interrupted(signum)

    previous = {}
    try:
        for signum in signums:
            previous[signum] = signal.signal(signum, raise_interrupted)
    except ValueError:  # not the main thread
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        return lambda: None

    def restore() -> None:
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    return restore
