"""Run directories, ``meta.json``, and the resumable exit code.

A *run directory* holds everything one verification run needs to be
resumed after a crash: the write-ahead journal (:mod:`.journal`) and a
``meta.json`` recording the original command line.  Run directories live
under ``.repro-runs/`` (override with ``REPRO_RUNS_DIR``) and are named
deterministically from the command and target, so

    repro verify examples/lock_server.rml --resume

finds the same directory the killed run wrote to -- no bookkeeping
required.  ``repro resume RUN_DIR`` goes the other way: it reads
``meta.json`` and re-invokes the recorded argv with ``--resume`` added.

A run interrupted by SIGINT/SIGTERM exits with :data:`EXIT_RESUMABLE`
(75, BSD ``EX_TEMPFAIL``), distinct from the verdict codes (0 verified,
1 violation, 2 unknown) -- wrappers can distinguish "try again" from
"the protocol is broken".
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import time
from dataclasses import asdict, dataclass
from typing import Sequence

#: exit code of a run interrupted resumably (BSD sysexits EX_TEMPFAIL)
EXIT_RESUMABLE = 75

#: default run-directory root, relative to the working directory
DEFAULT_RUNS_DIR = ".repro-runs"

#: meta.json schema version
META_FORMAT = 1

#: the metadata file's name inside a run directory
META_NAME = "meta.json"


@dataclass(frozen=True)
class RunMeta:
    """What ``repro resume`` needs to re-invoke a killed run."""

    command: str  # the subcommand ("verify", "check", ...)
    argv: tuple[str, ...]  # the full original argv (without the program name)
    target: str  # the protocol file or name being verified
    created_unix: float = 0.0


def runs_root() -> str:
    """``REPRO_RUNS_DIR`` or the default ``.repro-runs``."""
    return os.environ.get("REPRO_RUNS_DIR", "").strip() or DEFAULT_RUNS_DIR


def default_run_dir(command: str, target: str) -> str:
    """The deterministic run directory for ``(command, target)``.

    Deterministic on purpose: a ``--resume`` without ``--run-dir`` must
    land on the directory the killed run used.  The readable slug keeps
    ``ls .repro-runs`` meaningful; the digest disambiguates targets that
    share a basename.
    """
    base = os.path.splitext(os.path.basename(target))[0] or "run"
    slug = re.sub(r"[^A-Za-z0-9_.-]+", "-", base).strip("-") or "run"
    digest = hashlib.sha256(f"{command}:{target}".encode()).hexdigest()[:8]
    return os.path.join(runs_root(), f"{command}-{slug}-{digest}")


def write_meta(
    run_dir: str,
    command: str,
    argv: Sequence[str],
    target: str,
) -> RunMeta:
    """Atomically write ``meta.json`` into ``run_dir`` (best effort)."""
    meta = RunMeta(
        command=command,
        argv=tuple(argv),
        target=target,
        created_unix=time.time(),
    )
    payload = json.dumps(
        {"format": META_FORMAT, "meta": asdict(meta)},
        indent=1,
        sort_keys=True,
    )
    try:
        os.makedirs(run_dir, exist_ok=True)
        handle, staging = tempfile.mkstemp(dir=run_dir, suffix=".tmp")
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as out:
                out.write(payload)
            os.replace(staging, os.path.join(run_dir, META_NAME))
        except BaseException:
            try:
                os.unlink(staging)
            except OSError:
                pass
            raise
    except OSError:
        pass  # an unwritable run dir degrades `repro resume`, not the run
    return meta


def load_meta(run_dir: str) -> RunMeta | None:
    """The :class:`RunMeta` recorded in ``run_dir``, or None."""
    try:
        with open(os.path.join(run_dir, META_NAME), encoding="utf-8") as src:
            document = json.load(src)
        if document.get("format") != META_FORMAT:
            return None
        fields = dict(document["meta"])
        fields["argv"] = tuple(fields.get("argv", ()))
        return RunMeta(**fields)
    except (OSError, ValueError, KeyError, TypeError):
        return None
