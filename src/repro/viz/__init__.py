"""Renderers for states, conjectures and traces (text and Graphviz DOT)."""

from .dot import partial_to_dot, structure_to_dot, trace_to_dot
from .text import diff_to_text, partial_to_text, structure_to_text, trace_to_text

__all__ = [
    "diff_to_text",
    "partial_to_dot",
    "partial_to_text",
    "structure_to_dot",
    "structure_to_text",
    "trace_to_dot",
    "trace_to_text",
]
