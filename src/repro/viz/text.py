"""ASCII rendering of structures, partial structures and traces.

The paper's Ivy displays states and conjectures graphically in an IPython
notebook; this reproduction renders the same information as text (this
module) and as Graphviz DOT (:mod:`repro.viz.dot`).  These renderers are
what example scripts and the interactive session print.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..logic.partial import PartialStructure
    from ..logic.structures import Structure


def structure_to_text(structure: "Structure") -> str:
    """A compact multi-line description of a total structure."""
    lines: list[str] = []
    for sort in structure.vocab.sorts:
        names = ", ".join(e.name for e in structure.universe[sort])
        lines.append(f"sort {sort.name} = {{{names}}}")
    for rel in structure.vocab.relations:
        tuples = sorted(
            structure.rels.get(rel, frozenset()),
            key=lambda tup: tuple(e.name for e in tup),
        )
        shown = ", ".join("(" + ", ".join(e.name for e in t) + ")" for t in tuples)
        lines.append(f"{rel.name} = {{{shown}}}")
    for func in structure.vocab.functions:
        table = structure.funcs[func]
        if func.is_constant:
            lines.append(f"{func.name} = {table[()].name}")
            continue
        entries = []
        for args in sorted(table, key=lambda tup: tuple(e.name for e in tup)):
            inner = ", ".join(e.name for e in args)
            entries.append(f"{func.name}({inner}) = {table[args].name}")
        lines.append("; ".join(entries))
    return "\n".join(lines)


def partial_to_text(partial: "PartialStructure") -> str:
    """List the defined facts of a partial structure (its generalization)."""
    lines: list[str] = []
    active = partial.active_elements()
    names = ", ".join(e.name for e in active) if active else "(none)"
    lines.append(f"elements: {names}")
    for fact in partial.facts():
        lines.append(f"  {fact}")
    return "\n".join(lines)


def diff_to_text(before: "Structure", after: "Structure") -> str:
    """Describe the mutable-symbol differences between two states.

    Used when printing traces: each step shows only what the transition
    changed, which is how the paper narrates Figures 4 and 7-9.
    """
    lines: list[str] = []
    for rel in before.vocab.relations:
        old = before.rels.get(rel, frozenset())
        new = after.rels.get(rel, frozenset())
        for tup in sorted(new - old, key=lambda t: tuple(e.name for e in t)):
            lines.append(f"  + {rel.name}(" + ", ".join(e.name for e in tup) + ")")
        for tup in sorted(old - new, key=lambda t: tuple(e.name for e in t)):
            lines.append(f"  - {rel.name}(" + ", ".join(e.name for e in tup) + ")")
    for func in before.vocab.functions:
        old_table = before.funcs[func]
        new_table = after.funcs[func]
        for args in sorted(old_table, key=lambda t: tuple(e.name for e in t)):
            if old_table[args] != new_table.get(args):
                inner = ", ".join(e.name for e in args)
                app = f"{func.name}({inner})" if args else func.name
                lines.append(f"  {app}: {old_table[args].name} -> {new_table[args].name}")
    if not lines:
        lines.append("  (no change)")
    return "\n".join(lines)


def trace_to_text(states: Iterable["Structure"], labels: Iterable[str] | None = None) -> str:
    """Render an execution trace as state 0 plus per-step diffs."""
    states = list(states)
    if not states:
        return "(empty trace)"
    labels = list(labels or [])
    lines = ["state 0:"]
    lines.extend("  " + line for line in structure_to_text(states[0]).splitlines())
    for index, (before, after) in enumerate(itertools.pairwise(states)):
        label = f" ({labels[index]})" if index < len(labels) else ""
        lines.append(f"step {index + 1}{label}:")
        lines.append(diff_to_text(before, after))
    return "\n".join(lines)
