"""Graphviz DOT rendering of structures and partial structures.

Follows the visual conventions of Section 2.1 of the paper:

* domain elements are vertices, with a different shape per sort;
* unary relations appear as vertex labels (``leader`` / ``~leader``);
* binary relations and unary functions are directed, labeled edges;
* higher-arity relations are rendered through user-supplied *derived*
  binary relations (e.g. the ring's ``btw`` displayed as ``next``), or
  listed in a note node when no projection is given.

The output is plain DOT text; no Graphviz binary is required to produce it,
and any renderer can consume it.
"""

from __future__ import annotations

import itertools
from typing import Callable, Mapping

from ..logic.partial import PartialStructure
from ..logic.sorts import RelDecl
from ..logic.structures import Elem, Structure

_SHAPES = ("ellipse", "box", "diamond", "hexagon", "trapezium", "octagon")

DerivedRelation = Callable[[Structure], set[tuple[Elem, Elem]]]


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def structure_to_dot(
    structure: Structure,
    name: str = "state",
    derived: Mapping[str, DerivedRelation] | None = None,
    hide: set[str] | None = None,
) -> str:
    """Render a total structure as a DOT digraph.

    ``derived`` maps display names to functions computing binary edge sets
    (used to project high-arity relations); ``hide`` suppresses symbols by
    name (e.g. hide ``btw`` once its ``next`` projection is shown).
    """
    hide = hide or set()
    lines = [f'digraph "{_escape(name)}" {{', "  rankdir=LR;"]
    shape_of = {
        sort: _SHAPES[i % len(_SHAPES)] for i, sort in enumerate(structure.vocab.sorts)
    }
    unary = [
        rel
        for rel in structure.vocab.relations
        if rel.arity == 1 and rel.name not in hide
    ]
    for sort in structure.vocab.sorts:
        for elem in structure.universe[sort]:
            labels = [elem.name]
            for rel in unary:
                if rel.arg_sorts[0] != sort:
                    continue
                mark = "" if structure.rel_holds(rel, (elem,)) else "~"
                labels.append(f"{mark}{rel.name}")
            label = _escape("\\n".join(labels))
            lines.append(
                f'  "{_escape(elem.name)}" [shape={shape_of[sort]}, label="{label}"];'
            )
    for rel in structure.vocab.relations:
        if rel.name in hide or rel.arity != 2:
            continue
        for src, dst in sorted(
            structure.rels.get(rel, frozenset()), key=lambda t: (t[0].name, t[1].name)
        ):
            lines.append(
                f'  "{_escape(src.name)}" -> "{_escape(dst.name)}" '
                f'[label="{_escape(rel.name)}"];'
            )
    for func in structure.vocab.functions:
        if func.name in hide or func.arity != 1:
            continue
        table = structure.funcs[func]
        for (arg,), value in sorted(table.items(), key=lambda kv: kv[0][0].name):
            lines.append(
                f'  "{_escape(arg.name)}" -> "{_escape(value.name)}" '
                f'[label="{_escape(func.name)}", style=dashed];'
            )
    for display_name, compute in (derived or {}).items():
        for src, dst in sorted(compute(structure), key=lambda t: (t[0].name, t[1].name)):
            lines.append(
                f'  "{_escape(src.name)}" -> "{_escape(dst.name)}" '
                f'[label="{_escape(display_name)}", color=blue];'
            )
    notes = _high_arity_notes(structure, hide, derived or {})
    if notes:
        lines.append(f'  "notes" [shape=note, label="{_escape(notes)}"];')
    lines.append("}")
    return "\n".join(lines)


def _high_arity_notes(
    structure: Structure, hide: set[str], derived: Mapping[str, DerivedRelation]
) -> str:
    parts: list[str] = []
    for rel in structure.vocab.relations:
        if rel.arity < 3 or rel.name in hide:
            continue
        tuples = sorted(
            structure.rels.get(rel, frozenset()),
            key=lambda t: tuple(e.name for e in t),
        )
        for tup in tuples:
            parts.append(f"{rel.name}(" + ", ".join(e.name for e in tup) + ")")
    return "\\n".join(parts)


def partial_to_dot(partial: PartialStructure, name: str = "conjecture") -> str:
    """Render a partial structure (a conjecture's forbidden sub-configuration).

    Only *defined* facts are shown, matching the paper's convention that a
    generalization omits the information abstracted away.
    """
    lines = [f'digraph "{_escape(name)}" {{', "  rankdir=LR;"]
    shape_of = {
        sort: _SHAPES[i % len(_SHAPES)] for i, sort in enumerate(partial.vocab.sorts)
    }
    active = partial.active_elements()
    unary_labels: dict[Elem, list[str]] = {elem: [elem.name] for elem in active}
    edge_lines: list[str] = []
    note_parts: list[str] = []
    for fact in partial.facts():
        symbol = fact.symbol
        if isinstance(symbol, RelDecl) and symbol.arity == 1:
            mark = "" if fact.positive else "~"
            unary_labels[fact.args[0]].append(f"{mark}{symbol.name}")
        elif isinstance(symbol, RelDecl) and symbol.arity == 2:
            src, dst = fact.args
            style = "solid" if fact.positive else "dotted"
            label = symbol.name if fact.positive else f"~{symbol.name}"
            edge_lines.append(
                f'  "{_escape(src.name)}" -> "{_escape(dst.name)}" '
                f'[label="{_escape(label)}", style={style}];'
            )
        elif not isinstance(symbol, RelDecl) and symbol.arity == 1:
            arg, value = fact.args
            label = symbol.name if fact.positive else f"~{symbol.name}"
            edge_lines.append(
                f'  "{_escape(arg.name)}" -> "{_escape(value.name)}" '
                f'[label="{_escape(label)}", style=dashed];'
            )
        else:
            note_parts.append(str(fact))
    for elem in active:
        label = _escape("\\n".join(unary_labels[elem]))
        lines.append(
            f'  "{_escape(elem.name)}" [shape={shape_of[elem.sort]}, label="{label}"];'
        )
    lines.extend(edge_lines)
    if note_parts:
        lines.append(f'  "notes" [shape=note, label="{_escape(chr(92) + "n".join(note_parts))}"];')
    lines.append("}")
    return "\n".join(lines)


def trace_to_dot(states: list[Structure], name: str = "trace") -> str:
    """Render a trace as one DOT cluster per state."""
    lines = [f'digraph "{_escape(name)}" {{', "  compound=true;"]
    for index, state in enumerate(states):
        inner = structure_to_dot(state, name=f"state{index}")
        body = inner.splitlines()[2:-1]  # strip header/rankdir/closing brace
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f'    label="state {index}";')
        for line in body:
            lines.append("  " + _rename_nodes(line, index))
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def _rename_nodes(line: str, index: int) -> str:
    # Prefix node identifiers so identically named elements in different
    # states stay distinct in the combined graph.
    return line.replace('"', f'"s{index}.', 1).replace('-> "', f'-> "s{index}.')
