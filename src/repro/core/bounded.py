"""Bounded verification: k-invariance checking and symbolic debugging.

Implements Section 4.1 of the paper.  An assertion ``phi`` is *k-invariant*
when it holds in every state reachable at the loop head within ``k`` loop
iterations (Eq. 3) -- with no bound on the size of the input configuration.
The checks here decide that exactly (Theorem 3.3), and when a check fails
they return a concrete finite :class:`~repro.core.trace.Trace` that can be
displayed to the user, reproducing the Figure 3 debugging workflow and the
Figure 4 error trace.

Two entry points:

* :func:`check_k_invariance` -- is a forall*exists* assertion k-invariant?
* :func:`find_error_trace` -- can any assertion (``abort``) be violated
  within ``k`` iterations?  This is the "debug the model first" phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..obs import profile
from ..logic import syntax as s
from ..logic.fragments import is_forall_exists
from ..logic.structures import Structure
from ..rml.ast import Program
from ..rml.encode import Env, StepEncoding, TransitionEncoder, project_state
from ..solver.budget import Budget, FailureReason
from ..solver.dispatch import query_of, resolve_jobs, solve_queries
from ..solver.epr import EprResult, EprSolver
from ..solver.stats import SolverStats
from .trace import Trace


@dataclass(frozen=True)
class BoundedResult:
    """Outcome of a bounded check.

    Three verdicts.  ``holds`` means every depth up to ``bound`` was
    conclusively refuted.  A violation carries a ``trace`` (and is a real
    violation regardless of unknowns at other depths).  When some depth
    exhausted its budget and no violation was found, ``unknown`` is True:
    ``verified_depth`` is the deepest prefix of conclusively-safe depths
    ("safe up to depth d") and ``failures`` lists the ``(depth, reason)``
    pairs that went unanswered.
    """

    holds: bool
    bound: int
    trace: Trace | None = None  # counterexample when the check fails
    depth: int | None = None  # loop iterations executed by the counterexample
    statistics: dict[str, int] = field(default_factory=dict)
    unknown: bool = False
    verified_depth: int | None = None
    failures: tuple[tuple[int, FailureReason], ...] = ()

    def __bool__(self) -> bool:
        return self.holds


class _Unroller:
    """Incrementally unrolls a program, sharing encodings across depths."""

    def __init__(self, program: Program, budget: Budget | None = None) -> None:
        self.program = program
        self.budget = budget
        self.encoder = TransitionEncoder(program)
        init = self.encoder.encode_step(program.init, self.encoder.base_env(), "init")
        self.init = init
        self.base_constraints: list[s.Formula] = [
            axiom.formula for axiom in program.axioms
        ]
        self.base_constraints.append(init.formula)
        self.envs: list[Env] = [init.post_env]  # state after j iterations
        self.steps: list[StepEncoding] = []

    def extend_to(self, depth: int) -> None:
        while len(self.steps) < depth:
            index = len(self.steps)
            step = self.encoder.encode_step(
                self.program.body, self.envs[-1], f"step{index}"
            )
            self.steps.append(step)
            self.envs.append(step.post_env)

    def solver_at(self, depth: int) -> EprSolver:
        """A solver loaded with init plus ``depth`` body transitions.

        The solver's vocabulary is the program vocabulary plus only the
        version/selector symbols these constraints mention: the encoder
        keeps minting symbols as deeper steps (and abort probes) are
        encoded, and dragging unused havoc constants into the universe
        would blow up axiom instantiation at high arities.
        """
        self.extend_to(depth)
        constraints = list(self.base_constraints)
        constraints.extend(self.steps[index].formula for index in range(depth))
        used: set = set()
        for constraint in constraints:
            used |= s.symbols_of(constraint)
        known = set(self.program.vocab.relations) | set(self.program.vocab.functions)
        extra_rels = [
            decl for decl in self.encoder.new_relations if decl in used and decl not in known
        ]
        extra_funcs = [
            decl for decl in self.encoder.new_functions if decl in used and decl not in known
        ]
        vocab = self.program.vocab.extended(relations=extra_rels, functions=extra_funcs)
        solver = EprSolver(vocab, budget=self.budget)
        for index, constraint in enumerate(constraints):
            solver.add(constraint, name=f"c{index}")
        return solver

    def trace_from(self, result: EprResult, depth: int, aborted: bool) -> Trace:
        assert result.model is not None
        states: list[Structure] = []
        for env in self.envs[: depth + 1]:
            states.append(project_state(result.model, self.program, env))
        labels = tuple(
            self._step_label(result.model, self.steps[index])
            for index in range(depth)
        )
        return Trace(self.program, tuple(states), labels, aborted=aborted)

    @staticmethod
    def _step_label(model: Structure, step: StepEncoding) -> str:
        for selector, labels in step.selectors:
            if model.rel_holds(selector, ()):
                return " / ".join(labels) if labels else "step"
        return "step"


def _replayed_unsat() -> EprResult:
    """A synthetic conclusive-unsat result standing in for journaled work."""
    return EprResult(False, statistics={"journal_hits": 1})


def _invariance_keys(program: Program, phi: s.Formula, k: int, journal) -> dict:
    """Journal keys for every depth of one k-invariance check."""
    if journal is None:
        return {}
    from ..logic.printer import fingerprint
    from ..proof.ledger import program_fingerprint

    program_hash = program_fingerprint(program)
    phi_hash = fingerprint(phi)
    return {
        depth: f"{program_hash}:kinv:{phi_hash}:{depth}"
        for depth in range(k + 1)
    }


def check_k_invariance(
    program: Program,
    phi: s.Formula,
    k: int,
    unroller: _Unroller | None = None,
    jobs: int | None = None,
    stats: SolverStats | None = None,
    budget: Budget | None = None,
    journal=None,
) -> BoundedResult:
    """Decide Eq. 3: does ``phi`` hold at the loop head for all j <= k?

    ``phi`` must be a closed forall*exists* assertion (so its negation is
    exists*forall*).  On failure the returned trace ends in a state
    violating ``phi`` after ``depth`` iterations.

    The per-depth queries are independent; with ``jobs > 1`` (or
    ``REPRO_JOBS`` set) they are solved in parallel across worker
    processes, reporting the shallowest violation.  Serial mode stops at
    the first violating depth instead.

    With a ``budget``, depths that exhaust it degrade to UNKNOWN instead
    of hanging: a violation found at *any* depth is still reported (it is
    real regardless of unanswered siblings); otherwise the result reports
    "safe up to ``verified_depth``" with the unanswered depths and their
    failure reasons.

    With a ``journal``, each depth conclusively refuted is recorded, and
    a resumed run answers recorded depths without building a solver.
    Only *unsat* is journaled: a violation needs its model re-solved for
    the trace, and unknowns must be retried.
    """
    if s.free_vars(phi):
        raise ValueError(f"k-invariance needs a closed formula, got: {phi}")
    if not is_forall_exists(phi):
        raise ValueError(f"k-invariance needs a forall*exists* formula, got: {phi}")
    unroller = unroller or _Unroller(program, budget)
    statistics: dict[str, int] = {}
    keys = _invariance_keys(program, phi, k, journal)
    with profile.engine("bmc"), obs.span("bmc", kind="invariance", bound=k) as sp:
        replayed: dict[int, EprResult] = {}
        if journal is not None:
            for depth in range(k + 1):
                data = journal.replay("bmc.depth", keys[depth])
                if data is not None and data.get("verdict") == "unsat":
                    replayed[depth] = _replayed_unsat()
        if resolve_jobs(jobs) > 1 and k > 0:
            depths = [d for d in range(k + 1) if d not in replayed]
            queries = []
            for depth in depths:
                solver = unroller.solver_at(depth)
                goal = unroller.encoder._rename(s.not_(phi), unroller.envs[depth])
                solver.add(goal, name="goal")
                queries.append(query_of(solver, name=f"depth{depth}"))
            with obs.span("bmc.dispatch", queries=len(queries)):
                batches = solve_queries(queries, jobs=jobs, stats=stats)
            solved = dict(zip(depths, (result for (result,) in batches)))
            if journal is not None:
                for depth in depths:
                    if solved[depth].is_unsat:
                        journal.append("bmc.depth", keys[depth], verdict="unsat")
            results = [
                replayed.get(depth, solved.get(depth)) for depth in range(k + 1)
            ]
        else:
            results = []
            for depth in range(k + 1):
                if depth in replayed:
                    results.append(replayed[depth])
                    continue
                solver = unroller.solver_at(depth)
                goal = unroller.encoder._rename(s.not_(phi), unroller.envs[depth])
                solver.add(goal, name="goal")
                with obs.span("bmc.depth", depth=depth) as depth_span:
                    result = solver.check()
                    depth_span.set(verdict=result.verdict)
                _record(stats, result)
                if journal is not None and result.is_unsat:
                    journal.append("bmc.depth", keys[depth], verdict="unsat")
                results.append(result)
                if result.satisfiable:
                    break
        _engine_metrics("bmc", [r for r in results if r is not None])
        failures: list[tuple[int, FailureReason]] = []
        for depth, result in enumerate(results):
            _accumulate(statistics, result.statistics)
            if result.satisfiable:
                trace = unroller.trace_from(result, depth, aborted=False)
                sp.set(holds=False, violation_depth=depth)
                return BoundedResult(False, k, trace, depth, statistics)
            if result.unknown:
                failures.append((depth, result.failure))
        if failures:
            sp.set(holds=False, unknown=True)
            return BoundedResult(
                False, k, statistics=statistics, unknown=True,
                verified_depth=min(depth for depth, _ in failures) - 1,
                failures=tuple(failures),
            )
        sp.set(holds=True)
        return BoundedResult(True, k, statistics=statistics)


def find_error_trace(
    program: Program,
    k: int,
    jobs: int | None = None,
    stats: SolverStats | None = None,
    budget: Budget | None = None,
    journal=None,
) -> BoundedResult:
    """Search for an assertion violation within ``k`` loop iterations.

    Checks, at each depth j <= k, whether executing the body or the
    finalization command from the j-th loop-head state can reach ``abort``.
    This is the bounded-debugging phase of Figure 3.  The depth/command
    probes are independent and are fanned out like
    :func:`check_k_invariance` when ``jobs > 1``.  Probes that exhaust the
    ``budget`` degrade to UNKNOWN; see :class:`BoundedResult`.

    With a ``journal``, conclusively refuted probes are recorded as they
    complete and replayed on resume without building their solvers; a sat
    probe is never journaled (its model -- the error trace -- is not
    persisted, so it must be re-solved), which keeps the resumed verdict
    identical.
    """
    unroller = _Unroller(program, budget)
    statistics: dict[str, int] = {}
    program_hash = ""
    if journal is not None:
        from ..proof.ledger import program_fingerprint

        program_hash = program_fingerprint(program)
    with profile.engine("bmc"), obs.span("bmc", kind="error-trace", bound=k) as sp:
        probes: list[tuple[int, EprSolver | None, str]] = []
        replayed: dict[int, EprResult] = {}
        for depth in range(k + 1):
            unroller.extend_to(depth)
            env = unroller.envs[depth]
            for command, label in ((program.body, "body"), (program.final, "final")):
                # encode_step runs even for replayed probes: it advances
                # the encoder's symbol minting, keeping later probes'
                # encodings identical to the killed run's.
                abort = unroller.encoder.encode_step(
                    command, env, f"abort{depth}_{label}"
                ).abort_formula
                if abort == s.FALSE:
                    continue
                key = f"{program_hash}:abort:{depth}:{label}"
                if journal is not None:
                    data = journal.replay("bmc.probe", key)
                    if data is not None and data.get("verdict") == "unsat":
                        replayed[len(probes)] = _replayed_unsat()
                        probes.append((depth, None, key))
                        continue
                solver = unroller.solver_at(depth)
                solver.add(abort, name="abort")
                probes.append((depth, solver, key))
        if resolve_jobs(jobs) > 1 and len(probes) - len(replayed) > 1:
            live = [
                (index, solver)
                for index, (_, solver, _) in enumerate(probes)
                if solver is not None
            ]
            queries = [
                query_of(solver, name=f"abort{index}") for index, solver in live
            ]
            with obs.span("bmc.dispatch", queries=len(queries)):
                batches = solve_queries(queries, jobs=jobs, stats=stats)
            solved = dict(
                zip((index for index, _ in live), (result for (result,) in batches))
            )
            if journal is not None:
                for index, _ in live:
                    if solved[index].is_unsat:
                        journal.append(
                            "bmc.probe", probes[index][2], verdict="unsat"
                        )
            results = [
                replayed.get(index, solved.get(index))
                for index in range(len(probes))
            ]
        else:
            results = []
            for index, (depth, solver, key) in enumerate(probes):
                if solver is None:
                    results.append(replayed[index])
                    continue
                with obs.span("bmc.probe", depth=depth) as probe_span:
                    result = solver.check()
                    probe_span.set(verdict=result.verdict)
                _record(stats, result)
                if journal is not None and result.is_unsat:
                    journal.append("bmc.probe", key, verdict="unsat")
                results.append(result)
                if result.satisfiable:
                    break
        _engine_metrics("bmc", results)
        failures: list[tuple[int, FailureReason]] = []
        for (depth, _, _), result in zip(probes, results):
            _accumulate(statistics, result.statistics)
            if result.satisfiable:
                trace = unroller.trace_from(result, depth, aborted=True)
                sp.set(holds=False, violation_depth=depth)
                return BoundedResult(False, k, trace, depth, statistics)
            if result.unknown:
                failures.append((depth, result.failure))
        if failures:
            sp.set(holds=False, unknown=True)
            return BoundedResult(
                False, k, statistics=statistics, unknown=True,
                verified_depth=min(depth for depth, _ in failures) - 1,
                failures=tuple(failures),
            )
        sp.set(holds=True)
        return BoundedResult(True, k, statistics=statistics)


def make_unroller(program: Program, budget: Budget | None = None) -> _Unroller:
    """Expose the incremental unroller for callers issuing repeated checks."""
    return _Unroller(program, budget)


#: per-engine query/unknown metrics (no-op when metrics are off)
_engine_metrics = obs.count_engine_queries


def _accumulate(into: dict[str, int], new: dict[str, int]) -> None:
    for key, value in new.items():
        into[key] = into.get(key, 0) + value


def _record(stats: SolverStats | None, result: EprResult) -> None:
    """Fold one in-process solver result into an optional SolverStats."""
    if stats is not None:
        stats.record_result(result)
