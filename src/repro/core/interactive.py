"""A terminal-interactive session driver -- the paper's UI, headless.

The original Ivy runs in an IPython notebook with graphical states and
per-symbol checkboxes; this module provides the same interaction over a
text terminal (``python -m repro interactive <protocol>``).  At each CTI
the user sees the minimized pre-state, the violated conjecture, and the
successor, then chooses:

* ``generalize`` -- pick the elements/symbols to keep (the coarse-grained
  upper bound s_u of Section 4.5), run BMC + Auto Generalize at a chosen
  bound, inspect the suggested conjecture, and accept or retry;
* ``add <formula>`` -- type a conjecture directly;
* ``remove <name>`` -- weaken (Figure 5's left edge);
* ``show`` / ``dot`` -- re-display the CTI (optionally as Graphviz);
* ``quit``.

The prompt machinery reads from an injectable input stream, so scripted
terminals in the test suite can drive full sessions.
"""

from __future__ import annotations

import sys
from typing import Callable, TextIO

from ..logic import parse_formula
from ..logic.partial import PartialStructure
from ..viz.dot import structure_to_dot
from .induction import CTI, Conjecture
from .session import AddConjecture, Action, RemoveConjecture, Session, Stop


class TerminalPolicy:
    """Interactive policy reading decisions from a stream (stdin by default)."""

    def __init__(
        self,
        input_stream: TextIO | None = None,
        output: TextIO | None = None,
    ) -> None:
        self.input = input_stream or sys.stdin
        self.output = output or sys.stdout
        self._counter = 0

    # ------------------------------------------------------------- plumbing

    def _say(self, text: str = "") -> None:
        print(text, file=self.output)

    def _ask(self, prompt: str) -> str:
        print(prompt, end="", file=self.output, flush=True)
        line = self.input.readline()
        if not line:
            return "quit"
        return line.strip()

    # ------------------------------------------------------------- decision

    def decide(self, session: Session, cti: CTI) -> Action:
        self._say()
        self._say(f"=== CTI: {cti.obligation.description} ===")
        self._say("pre-state:")
        self._say(str(cti.state))
        if cti.successor is not None:
            self._say(f"successor via {' / '.join(cti.action)}:")
            self._say(str(cti.successor))
        while True:
            command = self._ask("ivy> ")
            word, _, rest = command.partition(" ")
            if word in ("quit", "q", "stop"):
                return Stop("user quit")
            if word == "show":
                self._say(str(cti.state))
                continue
            if word == "dot":
                self._say(structure_to_dot(cti.state, name="cti"))
                continue
            if word == "conjectures":
                for conjecture in session.conjectures:
                    self._say(f"  {conjecture.name}: {conjecture.formula}")
                continue
            if word == "remove":
                name = rest.strip()
                if session.conjecture_named(name) is None:
                    self._say(f"no conjecture named {name!r}")
                    continue
                return RemoveConjecture(name)
            if word == "add":
                try:
                    formula = parse_formula(rest, session.program.vocab)
                    conjecture = Conjecture(self._fresh_name(session), formula)
                except Exception as error:  # show, stay in the loop
                    self._say(f"error: {error}")
                    continue
                return AddConjecture(conjecture)
            if word == "generalize":
                action = self._generalize(session, cti)
                if action is not None:
                    return action
                continue
            self._say(
                "commands: generalize | add <formula> | remove <name> | "
                "show | dot | conjectures | quit"
            )

    def _fresh_name(self, session: Session) -> str:
        while True:
            self._counter += 1
            name = f"U{self._counter}"
            if session.conjecture_named(name) is None:
                return name

    # -------------------------------------------------------- generalization

    def _generalize(self, session: Session, cti: CTI) -> Action | None:
        partial = session.cti_partial(cti)
        keep = self._ask(
            "elements to keep (comma separated, empty = all): "
        )
        if keep.strip():
            names = {name.strip() for name in keep.split(",")}
            elements = [
                elem
                for elem in cti.state.elements()
                if elem.name in names
            ]
            partial = partial.restrict_elements(elements)
        forget = self._ask("symbols to forget (comma separated, empty = none): ")
        for name in filter(None, (part.strip() for part in forget.split(","))):
            if session.program.vocab.get(name) is None:
                self._say(f"  (no symbol named {name!r}; skipped)")
                continue
            partial = partial.forget(name)
        bound_text = self._ask(f"BMC bound [default {session.bmc_bound}]: ")
        bound = int(bound_text) if bound_text.strip() else None
        self._say("running BMC + Auto Generalize ...")
        outcome = session.generalize(partial, bound)
        if not outcome.ok:
            self._say(
                f"generalization is reachable in {outcome.depth} steps; "
                "witness trace:"
            )
            self._say(str(outcome.trace))
            return None
        self._say("suggested conjecture:")
        self._say(f"  {outcome.conjecture}")
        self._say("kept facts:")
        for fact in outcome.partial.facts():
            self._say(f"  {fact}")
        answer = self._ask("accept? [y/n] ")
        if answer.lower().startswith("y"):
            return AddConjecture(
                Conjecture(self._fresh_name(session), outcome.conjecture)
            )
        return None


def run_interactive(
    session: Session,
    input_stream: TextIO | None = None,
    output: TextIO | None = None,
    max_iterations: int = 64,
):
    """Run the Figure 5 loop with a human (or scripted terminal) as policy."""
    policy = TerminalPolicy(input_stream, output)
    outcome = session.run(policy, max_iterations=max_iterations)
    stream = output or sys.stdout
    print(file=stream)
    if outcome.success:
        print(
            f"inductive invariant found after {outcome.cti_count} CTIs:",
            file=stream,
        )
        for conjecture in outcome.conjectures:
            print(f"  {conjecture.name}: {conjecture.formula}", file=stream)
    else:
        print(f"session ended: {outcome.reason}", file=stream)
    return outcome
