"""The interactive invariant-search session (paper Figure 5).

:class:`Session` maintains the candidate invariant as a set of named
universal conjectures and drives the loop:

1. check inductiveness (Eq. 2); done if it holds;
2. otherwise obtain a (minimal) CTI and hand it to the *user*;
3. the user strengthens (adds a conjecture -- usually produced by
   interactive generalization), weakens (removes a conjecture), or stops.

The paper's user is a person in front of a graphical UI; here the user is a
*policy object* (:mod:`repro.core.policy`), which makes sessions replayable
and testable while preserving the division of labor: everything the session
does itself is automatic and decidable, every creative choice goes through
the policy.  The session records a transcript and counts CTIs -- column G
of Figure 14 is exactly ``Session.cti_count`` after a successful run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

from ..logic import syntax as s
from ..logic.partial import PartialStructure, from_structure
from ..rml.ast import Program
from .bounded import _Unroller, make_unroller
from .generalize import GeneralizeResult, auto_generalize, check_unreachable
from .induction import CTI, Conjecture, InductionResult, check_inductive, check_initiation
from .minimize import Measure, MinimalCTIResult, find_minimal_cti


class SessionError(Exception):
    """An invalid session operation (duplicate names, failing initiation...)."""


@dataclass(frozen=True)
class AddConjecture:
    conjecture: Conjecture


@dataclass(frozen=True)
class RemoveConjecture:
    name: str


@dataclass(frozen=True)
class Stop:
    reason: str


Action = AddConjecture | RemoveConjecture | Stop


class Policy(Protocol):
    """The "user": decides how to respond to a CTI."""

    def decide(self, session: "Session", cti: CTI) -> Action: ...


@dataclass(frozen=True)
class SearchOutcome:
    success: bool
    conjectures: tuple[Conjecture, ...]
    cti_count: int  # column G of Figure 14
    iterations: int
    reason: str = ""
    transcript: tuple[str, ...] = ()


class Session:
    """One interactive verification session over a fixed program."""

    def __init__(
        self,
        program: Program,
        initial: Sequence[Conjecture] = (),
        bmc_bound: int = 3,
        measures: Sequence[Measure] | None = None,
        ledger=None,
    ) -> None:
        self.program = program
        self.conjectures: list[Conjecture] = list(initial)
        names = [c.name for c in self.conjectures]
        if len(set(names)) != len(names):
            raise SessionError("duplicate conjecture names in the initial set")
        self.bmc_bound = bmc_bound
        self.measures = measures
        #: optional :class:`repro.proof.ledger.Ledger`; inductiveness
        #: checks consult it before solving and record discharged
        #: obligations, so a rerun of a finished session is free.
        self.ledger = ledger
        self.cti_count = 0
        self.transcript: list[str] = []
        # One shared unroller: generalization checks at several depths reuse
        # the same transition encodings.
        self._unroller: _Unroller | None = None

    @classmethod
    def from_program(
        cls,
        program: Program,
        extra: Sequence[Conjecture] = (),
        **kwargs,
    ) -> "Session":
        """A session seeded from the program's named ``invariant`` decls.

        Declared invariants become the initial conjecture set (in
        declaration order), followed by any ``extra`` conjectures whose
        names are not already taken.
        """
        initial: list[Conjecture] = [
            Conjecture(inv.name, inv.formula) for inv in program.invariants
        ]
        names = {c.name for c in initial}
        initial.extend(c for c in extra if c.name not in names)
        return cls(program, initial, **kwargs)

    # ------------------------------------------------------------- plumbing

    def _log(self, message: str) -> None:
        self.transcript.append(message)

    @property
    def unroller(self) -> _Unroller:
        if self._unroller is None:
            self._unroller = make_unroller(self.program)
        return self._unroller

    def conjecture_named(self, name: str) -> Conjecture | None:
        for conjecture in self.conjectures:
            if conjecture.name == name:
                return conjecture
        return None

    @property
    def invariant_formula(self) -> s.Formula:
        return s.and_(*(c.formula for c in self.conjectures))

    # ------------------------------------------------------------ the loop

    def check(self) -> InductionResult:
        """One inductiveness check of the current conjecture set."""
        return check_inductive(
            self.program, self.conjectures, ledger=self.ledger,
            engine="session",
        )

    def find_cti(self) -> MinimalCTIResult:
        """A minimal CTI for the current conjecture set (Algorithm 1)."""
        measures = self.measures if self.measures is not None else ()
        return find_minimal_cti(self.program, self.conjectures, measures)

    def add_conjecture(self, conjecture: Conjecture, require_initiation: bool = True) -> None:
        """Strengthen the candidate invariant.

        Conjectures must satisfy initiation (the session maintains that
        invariant of the search, Section 4.2); violating ones are rejected.
        """
        if self.conjecture_named(conjecture.name) is not None:
            raise SessionError(f"conjecture {conjecture.name!r} already present")
        if require_initiation:
            result = check_initiation(self.program, conjecture)
            if result.satisfiable:
                raise SessionError(
                    f"conjecture {conjecture.name!r} fails initiation"
                )
        self.conjectures.append(conjecture)
        self._log(f"add {conjecture.name}: {conjecture.formula}")

    def remove_conjecture(self, name: str) -> None:
        """Weaken the candidate invariant."""
        conjecture = self.conjecture_named(name)
        if conjecture is None:
            raise SessionError(f"no conjecture named {name!r}")
        self.conjectures.remove(conjecture)
        self._log(f"remove {name}")

    # ------------------------------------------------------ generalization

    def cti_partial(self, cti: CTI, include_scratch: bool = False) -> PartialStructure:
        """The CTI state as a partial structure.

        Facts about havocked scratch variables are dropped by default: they
        are not protocol state, and keeping them lets Auto Generalize
        produce bogus conjectures that are k-unreachable only because the
        scratch value is incidental.
        """
        from ..rml.ast import havocked_symbols

        partial = from_structure(cti.state)
        if not include_scratch:
            scratch = (
                havocked_symbols(self.program.init)
                | havocked_symbols(self.program.body)
                | havocked_symbols(self.program.final)
            )
            for decl in scratch:
                partial = partial.forget(decl)
        return partial

    def generalize(
        self, upper_bound: PartialStructure, bound: int | None = None
    ) -> GeneralizeResult:
        """BMC + Auto Generalize with the session's shared unroller."""
        k = bound if bound is not None else self.bmc_bound
        return auto_generalize(self.program, upper_bound, k, self.unroller)

    def validate_generalization(
        self, upper_bound: PartialStructure, bound: int | None = None
    ):
        k = bound if bound is not None else self.bmc_bound
        return check_unreachable(self.program, upper_bound, k, self.unroller)

    # ----------------------------------------------------------------- run

    def run(self, policy: Policy, max_iterations: int = 64) -> SearchOutcome:
        """Drive the Figure 5 loop until an inductive invariant is found."""
        for iteration in range(max_iterations):
            result = self.find_cti()
            if result.cti is None:
                self._log(f"inductive after {iteration} iterations")
                return SearchOutcome(
                    True,
                    tuple(self.conjectures),
                    self.cti_count,
                    iteration,
                    "inductive invariant found",
                    tuple(self.transcript),
                )
            self.cti_count += 1
            self._log(f"CTI #{self.cti_count}: {result.cti.obligation.description}")
            action = policy.decide(self, result.cti)
            if isinstance(action, AddConjecture):
                if result.cti.state.satisfies(action.conjecture.formula):
                    self._log(
                        f"warning: {action.conjecture.name} does not eliminate the CTI"
                    )
                self.add_conjecture(action.conjecture)
            elif isinstance(action, RemoveConjecture):
                self.remove_conjecture(action.name)
            elif isinstance(action, Stop):
                self._log(f"stopped: {action.reason}")
                return SearchOutcome(
                    False,
                    tuple(self.conjectures),
                    self.cti_count,
                    iteration + 1,
                    action.reason,
                    tuple(self.transcript),
                )
            else:  # pragma: no cover - exhaustive
                raise TypeError(f"not an action: {action!r}")
        return SearchOutcome(
            False,
            tuple(self.conjectures),
            self.cti_count,
            max_iterations,
            "iteration limit reached",
            tuple(self.transcript),
        )
