"""User policies for the interactive session.

The paper's "user" inspects CTIs graphically and chooses generalizations;
these policy objects reproduce the common user behaviors in a scripted,
deterministic way:

* :class:`OraclePolicy` -- a user who already knows the final invariant and
  at each CTI contributes the conjecture that eliminates it.  Replaying a
  session with the paper's published invariant measures the number of
  CTI iterations (Figure 14's G column).
* :class:`GeneralizingOraclePolicy` -- a user who knows which facts matter:
  at each CTI it builds the upper bound ``s_u`` by keeping only the facts
  relevant to a known target conjecture, then lets BMC + Auto Generalize
  produce the conjecture actually added, as in the Section 2.3 walkthrough.
* :class:`ScriptedPolicy` -- an explicit script of per-CTI callbacks, used
  by the leader-election walkthrough tests to reproduce Figures 7-9
  generalization by generalization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..logic import syntax as s
from ..logic.partial import PartialStructure, from_structure
from .induction import CTI, Conjecture
from .session import Action, AddConjecture, Session, Stop


@dataclass
class OraclePolicy:
    """Knows the target invariant; adds the conjecture each CTI falsifies."""

    invariant: Sequence[Conjecture]

    def decide(self, session: Session, cti: CTI) -> Action:
        for conjecture in self.invariant:
            if session.conjecture_named(conjecture.name) is not None:
                continue
            if not cti.state.satisfies(conjecture.formula):
                return AddConjecture(conjecture)
        return Stop("no remaining oracle conjecture eliminates this CTI")


@dataclass
class GeneralizingOraclePolicy:
    """Knows *which facts matter* and delegates the rest to Auto Generalize.

    For each CTI, finds the first target conjecture the CTI state falsifies,
    computes the sub-configuration of the CTI that witnesses the violation
    (the facts of the conjecture's falsified instance), uses it as the upper
    bound ``s_u``, and adds ``phi(s_m)`` from BMC + Auto Generalize.  This
    mimics a user whose intuition identifies the relevant features while the
    tool does the precise generalization.
    """

    invariant: Sequence[Conjecture]
    bound: int | None = None

    def decide(self, session: Session, cti: CTI) -> Action:
        for target in self.invariant:
            if not cti.state.satisfies(target.formula):
                upper = violation_subconfiguration(cti.state, target.formula)
                if upper is None:
                    continue
                outcome = session.generalize(upper, self.bound)
                if not outcome.ok:
                    continue
                name = self._fresh_name(session, target.name)
                assert outcome.conjecture is not None
                return AddConjecture(Conjecture(name, outcome.conjecture))
        return Stop("no generalization found for this CTI")

    @staticmethod
    def _fresh_name(session: Session, base: str) -> str:
        name = base
        counter = 0
        while session.conjecture_named(name) is not None:
            counter += 1
            name = f"{base}_{counter}"
        return name


@dataclass
class ScriptedPolicy:
    """Replays an explicit list of per-CTI decisions."""

    steps: Sequence[Callable[[Session, CTI], Action]]
    _cursor: int = 0

    def decide(self, session: Session, cti: CTI) -> Action:
        if self._cursor >= len(self.steps):
            return Stop("script exhausted")
        step = self.steps[self._cursor]
        self._cursor += 1
        return step(session, cti)


def violation_subconfiguration(
    state, formula: s.Formula
) -> PartialStructure | None:
    """The sub-configuration of ``state`` witnessing ``state |/= formula``.

    For a universal conjecture ``forall x. ~(l1 & ... & ln)``, finds an
    assignment falsifying the body and keeps exactly the facts of the
    literals under that assignment -- the natural "what went wrong here"
    slice a user would keep when defining the generalization upper bound.
    """
    if not isinstance(formula, s.Forall):
        return None
    full = from_structure(state)
    domains = [state.universe[v.sort] for v in formula.vars]
    import itertools

    for combo in itertools.product(*domains):
        assignment = dict(zip(formula.vars, combo))
        if state.eval_formula(formula.body, assignment):
            continue
        # Collect the atomic facts of the body under this assignment,
        # including the function facts of every application term inside the
        # atoms -- the literal ``pnd(idn(N1), N1)`` contributes both the
        # ``pnd`` fact and the ``idn`` binding that connects its arguments.
        facts = []
        for atom, value in _atom_values(state, formula.body, assignment):
            fact = _atom_to_fact(state, atom, assignment, value)
            if fact is not None:
                facts.append(fact)
            for term in s.terms_of(atom):
                _term_facts(state, term, assignment, facts)
        return full.keep_facts(facts)
    return None


def _term_facts(state, term: s.Term, assignment, facts: list) -> None:
    """Record positive function facts for application subterms."""
    from ..logic.partial import Fact

    if isinstance(term, s.App) and term.func.arity > 0:
        args = tuple(state.eval_term(t, assignment) for t in term.args)
        result = state.eval_term(term, assignment)
        facts.append(Fact(term.func, args + (result,), True))
        for sub in term.args:
            _term_facts(state, sub, assignment, facts)
    elif isinstance(term, s.Ite):
        _term_facts(state, term.then, assignment, facts)
        _term_facts(state, term.els, assignment, facts)


def _atom_values(state, formula: s.Formula, assignment):
    """Yield (atom, truth value) for every atom of a QF formula body."""
    if isinstance(formula, (s.Rel, s.Eq)):
        yield formula, state.eval_formula(formula, assignment)
        return
    if isinstance(formula, s.Not):
        yield from _atom_values(state, formula.arg, assignment)
        return
    if isinstance(formula, (s.And, s.Or)):
        for arg in formula.args:
            yield from _atom_values(state, arg, assignment)
        return
    if isinstance(formula, (s.Implies, s.Iff)):
        yield from _atom_values(state, formula.lhs, assignment)
        yield from _atom_values(state, formula.rhs, assignment)
        return
    raise ValueError("violation_subconfiguration expects a QF conjecture body")


def _atom_to_fact(state, atom: s.Formula, assignment, value: bool):
    """Convert a ground-evaluated atom into a partial-structure fact."""
    from ..logic.partial import Fact

    if isinstance(atom, s.Rel):
        args = tuple(state.eval_term(t, assignment) for t in atom.args)
        return Fact(atom.rel, args, value)
    if isinstance(atom, s.Eq):
        # Equalities between diagram variables are element identity, which
        # the diagram's distinctness already covers; function applications
        # become function facts.
        lhs, rhs = atom.lhs, atom.rhs
        if isinstance(lhs, s.App) and lhs.func.arity > 0:
            args = tuple(state.eval_term(t, assignment) for t in lhs.args)
            result = state.eval_term(rhs, assignment)
            if value:
                return Fact(lhs.func, args + (result,), True)
            actual = state.eval_term(lhs, assignment)
            return Fact(lhs.func, args + (actual,), True)
        if isinstance(rhs, s.App) and rhs.func.arity > 0:
            args = tuple(state.eval_term(t, assignment) for t in rhs.args)
            result = state.eval_term(lhs, assignment)
            if value:
                return Fact(rhs.func, args + (result,), True)
            actual = state.eval_term(rhs, assignment)
            return Fact(rhs.func, args + (actual,), True)
        return None
    return None
