"""Minimal counterexamples to induction (Section 4.3, Algorithm 1).

A CTI is easier to generalize from when it is small.  The paper lets the
user pick a tuple of *measures* -- sort sizes, positive tuple counts,
negative tuple counts -- and finds a CTI minimal in the induced
lexicographic order, by conjoining cardinality constraints ``phi_m(n)``
("the value of measure m is at most n") onto the inductiveness query and
searching upward for the least satisfiable ``n`` per measure.

Each ``phi_m(n)`` is itself an exists*forall* formula (shown in the paper
for positive tuple counts): ``exists x_1..x_n. forall y. r(y) -> \\/ y = x_i``
-- so the minimized queries stay decidable EPR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from ..logic import syntax as s
from ..logic.sorts import RelDecl, Sort
from ..rml.ast import Program
from ..solver.epr import EprResult, EprSolver
from .induction import CTI, Conjecture, Obligation, cti_from_model, obligations


class Measure(Protocol):
    """A quantitative measure on structures, ordered by "at most n"."""

    def describe(self) -> str: ...

    def at_most(self, n: int) -> s.Formula:
        """The exists*forall* constraint ``value of this measure <= n``."""


@dataclass(frozen=True)
class SortSize:
    """Measure: the number of elements of ``sort``."""

    sort: Sort

    def describe(self) -> str:
        return f"|{self.sort.name}|"

    def at_most(self, n: int) -> s.Formula:
        if n <= 0:
            # Domains are non-empty; "at most 0" is unsatisfiable, encoded
            # directly so the search loop moves on to n = 1.
            return s.FALSE
        witnesses = tuple(s.Var(f"W{i}", self.sort) for i in range(n))
        y = s.Var("Y", self.sort)
        body = s.forall((y,), s.or_(*(s.eq(y, w) for w in witnesses)))
        return s.exists(witnesses, body)


@dataclass(frozen=True)
class PositiveTuples:
    """Measure: the number of tuples in relation ``rel``."""

    rel: RelDecl

    def describe(self) -> str:
        return f"#{self.rel.name}"

    def at_most(self, n: int) -> s.Formula:
        return _tuple_bound(self.rel, n, positive=True)


@dataclass(frozen=True)
class NegativeTuples:
    """Measure: the number of tuples *not* in relation ``rel``."""

    rel: RelDecl

    def describe(self) -> str:
        return f"#~{self.rel.name}"

    def at_most(self, n: int) -> s.Formula:
        return _tuple_bound(self.rel, n, positive=False)


def _tuple_bound(rel: RelDecl, n: int, positive: bool) -> s.Formula:
    arity = rel.arity
    witness_rows = [
        tuple(s.Var(f"W{row}_{col}", sort) for col, sort in enumerate(rel.arg_sorts))
        for row in range(n)
    ]
    ys = tuple(s.Var(f"Y{col}", sort) for col, sort in enumerate(rel.arg_sorts))
    atom: s.Formula = s.Rel(rel, ys)
    if not positive:
        atom = s.not_(atom)
    matches = [
        s.and_(*(s.eq(y, w) for y, w in zip(ys, row))) for row in witness_rows
    ]
    body = s.forall(ys, s.implies(atom, s.or_(*matches))) if arity else s.implies(atom, s.FALSE if not witness_rows else s.TRUE)
    flat_witnesses = tuple(v for row in witness_rows for v in row)
    if not flat_witnesses:
        return body
    return s.exists(flat_witnesses, body)


@dataclass(frozen=True)
class MinimalCTIResult:
    cti: CTI | None
    bounds: tuple[tuple[str, int], ...]  # achieved minimum per measure
    statistics: dict[str, int]


def find_minimal_cti(
    program: Program,
    conjectures: Sequence[Conjecture],
    measures: Sequence[Measure] = (),
    max_bound: int = 8,
) -> MinimalCTIResult:
    """Algorithm 1: a CTI minimal in the lexicographic measure order.

    Obligations are examined in the usual order; the first one admitting a
    counterexample is minimized.  Returns ``cti=None`` when the candidate
    invariant is inductive.
    """
    statistics: dict[str, int] = {}
    for obligation in obligations(program, conjectures):
        result = _solve(program, obligation, (), statistics)
        if not result.satisfiable:
            continue
        return _minimize(program, obligation, measures, max_bound, statistics, result)
    return MinimalCTIResult(None, (), statistics)


def minimize_obligation(
    program: Program,
    obligation: Obligation,
    measures: Sequence[Measure],
    max_bound: int = 8,
) -> MinimalCTIResult:
    """Minimize a specific failing obligation (used by the session loop)."""
    statistics: dict[str, int] = {}
    result = _solve(program, obligation, (), statistics)
    if not result.satisfiable:
        return MinimalCTIResult(None, (), statistics)
    return _minimize(program, obligation, measures, max_bound, statistics, result)


def _minimize(
    program: Program,
    obligation: Obligation,
    measures: Sequence[Measure],
    max_bound: int,
    statistics: dict[str, int],
    first: EprResult,
) -> MinimalCTIResult:
    psi_min: list[s.Formula] = []
    bounds: list[tuple[str, int]] = []
    best = first
    for measure in measures:
        for n in range(max_bound + 1):
            constraint = measure.at_most(n)
            result = _solve(program, obligation, (*psi_min, constraint), statistics)
            if result.satisfiable:
                psi_min.append(constraint)
                bounds.append((measure.describe(), n))
                best = result
                break
        else:
            # No bound up to max_bound is satisfiable together with the
            # earlier constraints; leave this measure unconstrained.
            bounds.append((measure.describe(), -1))
    # Measures pin the CTI's *size*, not its identity: several
    # non-isomorphic models can tie on every bound.  A final solve with
    # canonical model selection picks the lexicographically sparsest of
    # them, so the CTI handed to the user does not depend on SAT-solver
    # heuristics (decision order, phase saving, restart timing).
    final = _solve(program, obligation, tuple(psi_min), statistics, canonical=True)
    if final.satisfiable:
        best = final
    assert best.model is not None
    cti = cti_from_model(program, obligation, best.model)
    return MinimalCTIResult(cti, tuple(bounds), statistics)


def _solve(
    program: Program,
    obligation: Obligation,
    extra: Sequence[s.Formula],
    statistics: dict[str, int],
    canonical: bool = False,
) -> EprResult:
    solver = EprSolver(program.vocab, canonical_models=canonical)
    solver.add(obligation.vc, name="vc")
    for index, constraint in enumerate(extra):
        solver.add(constraint, name=f"min{index}")
    result = solver.check()
    for key, value in result.statistics.items():
        statistics[key] = statistics.get(key, 0) + value
    return result


def default_measures(program: Program) -> list[Measure]:
    """A sensible default: minimize every sort, then every relation.

    Mirrors the paper's guidance that smaller domains and sparser "guard"
    relations (like ``pnd``) produce more easily generalized CTIs.
    """
    measures: list[Measure] = [SortSize(sort) for sort in program.vocab.sorts]
    mutable = program.mutable_symbols()
    for rel in program.vocab.relations:
        if rel in mutable:
            measures.append(PositiveTuples(rel))
    return measures
