"""Execution traces: sequences of program states with action labels.

A :class:`Trace` is what bounded verification returns as a counterexample
(Figure 4 of the paper): the state at the loop head after each iteration,
annotated with the action (choice labels) each step took.  States are full
first-order structures over the program vocabulary; their domain size is
whatever the solver's finite model needed -- bounded verification bounds the
number of *steps*, never the size of states.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..logic.structures import Structure
from ..rml.ast import Program


@dataclass(frozen=True)
class Trace:
    """A bounded execution: ``states[0]`` is the state after ``C_init``."""

    program: Program
    states: tuple[Structure, ...]
    labels: tuple[str, ...]  # one per transition; len == len(states) - 1
    aborted: bool = False  # True when the final step reached an abort

    def __post_init__(self) -> None:
        if self.states and len(self.labels) != len(self.states) - 1:
            raise ValueError("label count must be one less than state count")

    @property
    def length(self) -> int:
        """Number of loop iterations executed."""
        return len(self.labels)

    def __str__(self) -> str:
        from ..viz.text import trace_to_text

        body = trace_to_text(self.states, self.labels)
        if self.aborted:
            body += "\n** assertion violated (abort reached) **"
        return body

    def to_dot(self) -> str:
        from ..viz.dot import trace_to_dot

        return trace_to_dot(list(self.states), name=f"{self.program.name}_trace")

    def validate(self) -> None:
        """Check the trace against the concrete interpreter.

        Every consecutive state pair must be reproducible by executing the
        body from the predecessor; raises ``AssertionError`` otherwise.
        This is the internal soundness check used by the test suite -- a
        trace the interpreter cannot replay would indicate an encoding bug.
        """
        from ..rml.interp import successors

        axioms = self.program.axiom_formula
        for state in self.states:
            assert state.satisfies(axioms), "trace state violates the axioms"
        for before, after in zip(self.states, self.states[1:]):
            outcomes = successors(self.program, before)
            keys = {_key(o.state) for o in outcomes if o.state is not None}
            assert _key(after) in keys, "trace step is not a program transition"


def _key(state: Structure) -> tuple:
    from ..rml.interp import _state_key

    return _state_key(state)
