"""UPDR: property-directed inference of universal invariants.

The paper positions itself against fully automatic methods, in particular
UPDR (Karbyshev et al., CAV'15 -- reference [17]), which generalizes
IC3/PDR to universal first-order invariants: "The method is fragile,
however, and we were not successful in applying it to the examples
verified here.  Our goal in this work is to make this kind of technique
interactive."  This module implements the UPDR baseline so the comparison
can be reproduced (see ``benchmarks/bench_updr.py``).

Structure, following PDR:

* frames ``F_0 .. F_N``, each a set of universal clauses (negated diagrams
  of blocked partial structures); ``F_0`` is the initial condition,
  handled through ``wp(C_init, .)``;
* when ``F_N`` admits a safety violation, the offending state is *blocked*
  recursively: either a predecessor is found one frame down (a new proof
  obligation) or the diagram is generalized -- literals are dropped while
  the structure stays unreachable-from-``F_{i-1}`` and excluded initially
  -- and its negation is learned into frames ``1..i``;
* obligations reaching frame 0 yield an *abstract* counterexample: with a
  universal abstraction it may be spurious, so it is checked concretely
  with bounded model checking; a spurious one makes UPDR give up
  (:attr:`UpdrResult.UNKNOWN`) -- exactly the fragility the paper reports;
* after each round clauses are *pushed* forward; two equal adjacent frames
  mean an inductive invariant was found.
"""

from __future__ import annotations

import base64
import enum
import pickle
from dataclasses import dataclass, field
from typing import Sequence

from .. import obs
from ..obs import profile
from ..logic import syntax as s
from ..logic.partial import Fact, PartialStructure, conjecture, from_structure
from ..logic.sorts import FuncDecl, RelDecl
from ..rml.ast import Program, havocked_symbols
from ..rml.encode import TransitionEncoder, project_state
from ..rml.wp import wp, wp_body_safe, wp_final_safe
from ..solver.budget import Budget, FailureReason
from ..solver.dispatch import query_of, resolve_jobs, solve_queries
from ..solver.epr import EprSolver
from ..solver.stats import SolverStats
from .bounded import make_unroller
from .generalize import _diagram_parts
from .induction import Conjecture, check_inductive
from .trace import Trace


class UpdrStatus(enum.Enum):
    SAFE = "safe"  # inductive invariant found
    UNSAFE = "unsafe"  # concrete counterexample trace found
    UNKNOWN = "unknown"  # abstract counterexample was spurious
    DIVERGED = "diverged"  # frame/iteration budget exhausted


@dataclass
class UpdrResult:
    """``failure`` is set when the run ended because a *load-bearing* solver
    query exhausted its budget even after ``restarts`` reruns with doubled
    budgets; such an UNKNOWN is a resource verdict, distinct from the
    spurious-abstract-counterexample UNKNOWN (``failure is None``)."""

    status: UpdrStatus
    invariant: tuple[Conjecture, ...] = ()
    frames_used: int = 0
    clauses_learned: int = 0
    trace: Trace | None = None
    statistics: dict[str, int] = field(default_factory=dict)
    failure: FailureReason | None = None
    restarts: int = 0


class _BudgetExhausted(Exception):
    """A blocking-path query came back UNKNOWN; the run must restart."""

    def __init__(self, failure: FailureReason | None) -> None:
        super().__init__(failure.value if failure else "unknown")
        self.failure = failure or FailureReason.TIMEOUT


def _encode_state(obj) -> str:
    """Pickle + base64: journal lines are JSON, engine state is not."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def _decode_state(text: str):
    return pickle.loads(base64.b64decode(text.encode("ascii")))


class _Updr:
    def __init__(
        self,
        program: Program,
        max_frames: int,
        max_obligations: int,
        jobs: int | None = None,
        stats: SolverStats | None = None,
        budget: Budget | None = None,
        ledger=None,
        journal=None,
    ):
        self.program = program
        self.max_frames = max_frames
        self.max_obligations = max_obligations
        self.jobs = jobs
        self.solver_stats = stats
        self.budget = budget
        self.ledger = ledger
        self.axioms = program.axiom_formula
        self.safety = s.and_(wp_body_safe(program), wp_final_safe(program))
        # frames[i]: list of blocked partial structures (clauses are their
        # negated diagrams); frame 0 is the initial condition, kept
        # implicitly through wp(C_init).
        self.frames: list[list[PartialStructure]] = [[], []]
        self.encoder = TransitionEncoder(program)
        self.step = self.encoder.encode_step(
            program.body, self.encoder.base_env(), "updr"
        )
        # Frame 0 is the initial condition; one-step-from-init queries go
        # through the bounded unroller (init encoding + one transition).
        self.unroller = make_unroller(program, budget)
        self.scratch = frozenset(
            havocked_symbols(program.init)
            | havocked_symbols(program.body)
            | havocked_symbols(program.final)
        )
        self.statistics: dict[str, int] = {"solver_calls": 0}
        self.clauses_learned = 0
        self.journal = journal
        self.journal_key = ""
        if journal is not None:
            from ..proof.ledger import program_fingerprint

            self.journal_key = f"{program_fingerprint(program)}:updr"
            self._restore_from_journal()

    # ------------------------------------------------------------- journal

    def _restore_from_journal(self) -> None:
        """Rebuild frame state from the journal's snapshot + clause events.

        A killed run left (a) a frame snapshot per fully pushed frame and
        (b) one incremental event per clause learned since.  The latest
        snapshot wins; clause events recorded after it are re-applied on
        top.  Everything journaled is a *sound lemma* (learned clauses
        block conclusively-refuted predecessors), so replaying state is
        safe even across budget escalations.
        """
        events = self.journal.events_of(
            ("updr.frames", "updr.clause"), self.journal_key
        )
        snapshot = None
        trailing: list[dict] = []
        for event in events:
            if event.kind == "updr.frames":
                snapshot = event.data
                trailing = []
            else:
                trailing.append(event.data)
        restored = 0
        if snapshot is not None:
            self.frames = _decode_state(snapshot["frames"])
            self.clauses_learned = snapshot["clauses"]
            restored += 1
        for data in trailing:
            generalized = _decode_state(data["clause"])
            level = data["level"]
            for index in range(1, level + 1):
                while len(self.frames) <= index:
                    self.frames.append([])
                self.frames[index].append(generalized)
            self.clauses_learned += 1
            restored += 1
        if restored:
            self.journal.mark_reused(restored)
            obs.point(
                "updr.restore",
                events=restored,
                frames=len(self.frames),
                clauses=self.clauses_learned,
            )

    def _journal_frames(self) -> None:
        """Snapshot the pushed frames (called as each new frame opens)."""
        if self.journal is not None:
            self.journal.append(
                "updr.frames",
                self.journal_key,
                frames=_encode_state(self.frames),
                clauses=self.clauses_learned,
            )

    def _journal_clause(self, generalized: PartialStructure, level: int) -> None:
        if self.journal is not None:
            self.journal.append(
                "updr.clause",
                self.journal_key,
                level=level,
                clause=_encode_state(generalized),
            )

    # --------------------------------------------------------------- util

    def _frame_formula(self, index: int) -> s.Formula:
        clauses = []
        for i in range(index, len(self.frames)):
            clauses.extend(conjecture(p) for p in self.frames[i])
        return s.and_(*clauses)

    def _count(self, result) -> None:
        self.statistics["solver_calls"] += 1
        for key, value in result.statistics.items():
            if key in ("instances", "conflicts"):
                self.statistics[key] = self.statistics.get(key, 0) + value
        if self.solver_stats is not None:
            self.solver_stats.record_result(result)
        obs.count_engine_queries("updr", (result,))

    # ------------------------------------------------------------- checks

    def _violates_safety(self, frame: int):
        """A state in F_frame that can fail an assertion, or None.

        An UNKNOWN here is load-bearing -- without an answer the frame can
        neither be declared safe nor mined for a bad state -- so it aborts
        the run for a restart with a larger budget.
        """
        solver = EprSolver(self.program.vocab, budget=self.budget)
        solver.add(self.axioms, name="axioms")
        solver.add(self._frame_formula(frame), name="frame")
        solver.add(s.not_(self.safety), name="unsafe")
        result = solver.check()
        self._count(result)
        if result.unknown:
            raise _BudgetExhausted(result.failure)
        return result.model if result.satisfiable else None

    def _initial_violation(self, partial: PartialStructure) -> bool:
        """Can C_init produce a state containing ``partial``?

        UNKNOWN aborts for restart: blocking needs a definite answer
        (callers on conservative paths catch :class:`_BudgetExhausted`).
        """
        phi = conjecture(partial)
        vc = s.and_(self.axioms, s.not_(wp(self.program.init, phi, self.axioms)))
        solver = EprSolver(self.program.vocab, budget=self.budget)
        solver.add(vc, name="init")
        result = solver.check()
        self._count(result)
        if result.unknown:
            raise _BudgetExhausted(result.failure)
        return result.satisfiable

    def _predecessor_query(self, partial: PartialStructure, frame: int):
        """The F_{frame-1} predecessor query for ``partial``: a loaded
        solver plus the version environment to project a model through."""
        if frame <= 1:
            solver = self.unroller.solver_at(1)
            env = self.unroller.envs[1]
            hard, fact_formulas = _diagram_parts(partial, env, "post")
            project_env = self.unroller.envs[0]
        else:
            solver = EprSolver(self.encoder.extended_vocab(), budget=self.budget)
            solver.add(self.axioms, name="axioms")
            solver.add(self._frame_formula(frame - 1), name="frame")
            solver.add(self.step.formula, name="step")
            hard, fact_formulas = _diagram_parts(partial, self.step.post_env, "post")
            project_env = self.encoder.base_env()
        for index, constraint in enumerate(hard):
            solver.add(constraint, name=f"distinct{index}")
        for index, (_, formula) in enumerate(fact_formulas):
            solver.add(formula, name=f"fact{index}")
        return solver, project_env

    def _predecessor(self, partial: PartialStructure, frame: int):
        """A state in F_{frame-1} with a successor containing ``partial``.

        At ``frame == 1`` the predecessor must be an *initial* state, so the
        query runs over the init encoding plus one body transition.
        """
        solver, project_env = self._predecessor_query(partial, frame)
        result = solver.check()
        self._count(result)
        if result.unknown:
            raise _BudgetExhausted(result.failure)
        if not result.satisfiable:
            return None
        return project_state(result.model, self.program, project_env)

    def _generalize(self, partial: PartialStructure, frame: int) -> PartialStructure:
        """Drop facts while the structure stays unpreceded and init-excluded.

        Generalization is best-effort: an UNKNOWN on a drop attempt just
        keeps the fact (the learned clause stays sound, merely less
        general), rather than aborting the whole run.
        """
        candidate = partial
        with obs.span("updr.generalize", frame=frame) as sp:
            dropped = 0
            for fact in list(candidate.facts()):
                attempt = candidate.drop_fact(fact)
                try:
                    if self._initial_violation(attempt):
                        continue
                    if self._predecessor(attempt, frame) is not None:
                        continue
                except _BudgetExhausted:
                    continue
                candidate = attempt
                dropped += 1
            sp.set(dropped=dropped, kept=len(list(candidate.facts())))
        return candidate

    def _strip_scratch(self, partial: PartialStructure) -> PartialStructure:
        for decl in self.scratch:
            partial = partial.forget(decl)
        return partial

    # ----------------------------------------------------------- main loop

    def run(self) -> UpdrResult:
        obligations_spent = 0
        while True:
            frame = len(self.frames) - 1
            with obs.span(
                "updr.frame", frame=frame, clauses=self.clauses_learned
            ) as sp:
                model = self._violates_safety(frame)
                if model is not None:
                    sp.set(outcome="block")
                    partial = self._strip_scratch(from_structure(model))
                    outcome = self._block(partial, frame, obligations_spent)
                    if isinstance(outcome, UpdrResult):
                        return outcome
                    obligations_spent = outcome
                    continue
                # F_N is safe: push clauses forward, then open a new frame.
                sp.set(outcome="push")
                pushed = self._propagate()
                if pushed is not None:
                    return pushed
                if len(self.frames) > self.max_frames:
                    return UpdrResult(
                        UpdrStatus.DIVERGED,
                        frames_used=len(self.frames),
                        clauses_learned=self.clauses_learned,
                        statistics=self.statistics,
                    )
                self.frames.append([])
                # The frame below is now fully pushed: snapshot it, so a
                # killed run resumes here instead of re-verifying frames.
                self._journal_frames()

    def _block(self, partial: PartialStructure, frame: int, spent: int):
        stack: list[tuple[PartialStructure, int]] = [(partial, frame)]
        while stack:
            spent += 1
            if spent > self.max_obligations:
                return UpdrResult(
                    UpdrStatus.DIVERGED,
                    frames_used=len(self.frames),
                    clauses_learned=self.clauses_learned,
                    statistics=self.statistics,
                )
            current, level = stack[-1]
            if level == 0 or self._initial_violation(current):
                return self._refute_or_give_up(len(stack))
            predecessor = self._predecessor(current, level)
            if predecessor is not None:
                stack.append(
                    (self._strip_scratch(from_structure(predecessor)), level - 1)
                )
                continue
            # Unpreceded: generalize and learn its negation up to ``level``.
            generalized = self._generalize(current, level)
            for index in range(1, level + 1):
                while len(self.frames) <= index:
                    self.frames.append([])
                self.frames[index].append(generalized)
            self.clauses_learned += 1
            self._journal_clause(generalized, level)
            stack.pop()
        return spent

    def _refute_or_give_up(self, depth: int) -> UpdrResult:
        """An obligation chain reached the initial frame: check concretely."""
        from .bounded import find_error_trace

        concrete = find_error_trace(
            self.program, max(depth, len(self.frames)), budget=self.budget
        )
        if concrete.trace is not None:
            return UpdrResult(
                UpdrStatus.UNSAFE,
                trace=concrete.trace,
                frames_used=len(self.frames),
                clauses_learned=self.clauses_learned,
                statistics=self.statistics,
            )
        if concrete.unknown:
            # Could not even decide whether the abstract counterexample is
            # concrete -- restart with a larger budget.
            raise _BudgetExhausted(concrete.failures[0][1])
        # Spurious abstract counterexample: the universal abstraction cannot
        # decide this program -- the fragility the paper describes.
        return UpdrResult(
            UpdrStatus.UNKNOWN,
            frames_used=len(self.frames),
            clauses_learned=self.clauses_learned,
            statistics=self.statistics,
        )

    def _propagate(self) -> UpdrResult | None:
        """Push clauses forward; equal adjacent frames => inductive.

        Push attempts within one frame are mutually independent (a
        successful push only adds a clause the *source* frame already has,
        so sibling queries are unaffected); they are batched and, with
        ``jobs > 1``, solved in parallel.
        """
        for index in range(1, len(self.frames)):
            if index + 1 >= len(self.frames):
                continue
            candidates = [
                partial
                for partial in list(self.frames[index])
                if partial not in self.frames[index + 1]
            ]
            for partial, pushable in zip(
                candidates, self._pushable_batch(candidates, index)
            ):
                if pushable:
                    self.frames[index + 1].append(partial)
        for index in range(1, len(self.frames) - 1):
            this_frame = {conjecture(p) for p in self.frames[index]}
            next_frame = {conjecture(p) for p in self.frames[index + 1]}
            if this_frame == next_frame:
                invariant = self._harvest(index)
                if invariant is not None:
                    return invariant
        return None

    def _pushable(self, partial: PartialStructure, index: int) -> bool:
        """UNKNOWN means non-pushable: pushing a clause whose consecution
        was not conclusively proved would make later frames unsound."""
        try:
            return self._predecessor(partial, index + 1) is None
        except _BudgetExhausted:
            return False

    def _pushable_batch(
        self, partials: Sequence[PartialStructure], index: int
    ) -> list[bool]:
        if resolve_jobs(self.jobs) <= 1 or len(partials) <= 1:
            with obs.span("updr.push", frame=index, candidates=len(partials)):
                return [self._pushable(partial, index) for partial in partials]
        queries = [
            query_of(
                self._predecessor_query(partial, index + 1)[0],
                name=f"push{index}.{position}",
            )
            for position, partial in enumerate(partials)
        ]
        with obs.span("updr.push", frame=index, candidates=len(partials)):
            batches = solve_queries(
                queries, jobs=self.jobs, stats=self.solver_stats
            )
        for (result,) in batches:
            self.statistics["solver_calls"] += 1
            for key, value in result.statistics.items():
                if key in ("instances", "conflicts"):
                    self.statistics[key] = self.statistics.get(key, 0) + value
        obs.count_engine_queries("updr", [result for (result,) in batches])
        return [
            not result.satisfiable and not result.unknown
            for (result,) in batches
        ]

    def _harvest(self, index: int) -> UpdrResult | None:
        conjectures = [
            Conjecture(f"U{i}", conjecture(p))
            for i, p in enumerate(self.frames[index])
        ]
        result = check_inductive(
            self.program, conjectures, budget=self.budget,
            ledger=self.ledger, engine="updr",
        )
        if result.holds:
            return UpdrResult(
                UpdrStatus.SAFE,
                invariant=tuple(conjectures),
                frames_used=len(self.frames),
                clauses_learned=self.clauses_learned,
                statistics=self.statistics,
            )
        return None


def updr(
    program: Program,
    max_frames: int = 12,
    max_obligations: int = 400,
    jobs: int | None = None,
    stats: SolverStats | None = None,
    budget: Budget | None = None,
    max_restarts: int = 2,
    ledger=None,
    journal=None,
) -> UpdrResult:
    """Run UPDR on ``program``; see the module docstring.

    With a ``budget``, a load-bearing UNKNOWN (safety probe, blocking
    query, or concrete refutation) restarts the whole run with all budget
    caps doubled, up to ``max_restarts`` times; if the final attempt still
    exhausts its budget the result is UNKNOWN with ``failure`` set.
    Conservative paths (generalization drops, clause pushes) degrade in
    place and never trigger a restart.

    A ``ledger`` (:class:`repro.proof.ledger.Ledger`) is consulted by the
    final inductiveness harvest, and the invariant UPDR converges on is
    recorded there with ``engine="updr"`` provenance.

    A ``journal`` records frame snapshots and learned clauses as the run
    progresses; a fresh engine constructed against the same journal
    restores them and continues (see :meth:`_Updr._restore_from_journal`).
    Budget-escalation restarts keep the journal too: everything recorded
    is a sound lemma, and re-deriving lemmas is exactly the waste the
    journal exists to prevent.
    """
    attempt_budget = budget
    restarts = 0
    with profile.engine("updr"), obs.span("updr", max_frames=max_frames) as sp:
        while True:
            engine = _Updr(
                program, max_frames, max_obligations, jobs, stats,
                attempt_budget, ledger, journal,
            )
            try:
                with obs.span("updr.attempt", attempt=restarts):
                    result = engine.run()
            except _BudgetExhausted as exhausted:
                if restarts < max_restarts and attempt_budget is not None:
                    restarts += 1
                    attempt_budget = attempt_budget.escalated()
                    continue
                sp.set(status=UpdrStatus.UNKNOWN.value, restarts=restarts)
                return UpdrResult(
                    UpdrStatus.UNKNOWN,
                    frames_used=len(engine.frames),
                    clauses_learned=engine.clauses_learned,
                    statistics=engine.statistics,
                    failure=exhausted.failure,
                    restarts=restarts,
                )
            result.restarts = restarts
            sp.set(
                status=result.status.value,
                restarts=restarts,
                frames=result.frames_used,
                clauses=result.clauses_learned,
            )
            return result
