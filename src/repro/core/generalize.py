"""Interactive generalization from CTIs (Sections 4.4 and 4.5).

Workflow, exactly as in the paper:

1. the user picks a *generalization upper bound* ``s_u`` of the CTI by
   keeping some elements and forgetting positive/negative facts of chosen
   symbols (:meth:`~repro.logic.partial.PartialStructure.restrict_elements`
   / :meth:`~repro.logic.partial.PartialStructure.forget`);
2. **BMC**: :func:`check_unreachable` tests whether the conjecture
   ``phi(s_u)`` is k-invariant, i.e. whether any state containing ``s_u``
   as a sub-configuration is reachable within ``k`` iterations -- the
   diagram ``Diag(s_u)`` is asserted at each unrolling depth; a satisfying
   model is displayed as a concrete trace so the user can see why the
   generalization is wrong;
3. **Auto Generalize**: when ``phi(s_u)`` *is* k-invariant,
   :func:`auto_generalize` computes a minimal subset of the diagram's
   literals that stays k-unreachable.  Assumption-based unsat cores give a
   fast over-approximation, a deletion pass makes the set subset-minimal,
   and both phases run against *prepared* solver instances (one grounding
   per depth, one incremental SAT call per candidate subset).  Fewer
   literals = a weaker diagram = a *stronger* conjecture ``phi(s_m)``.

Facts about havoc scratch variables are normally irrelevant to
reachability-in-k but, being havocked, can accidentally be k-unreachable in
bogus ways; callers should build upper bounds from
:meth:`repro.core.session.Session.cti_partial`, which drops them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..logic import syntax as s
from ..logic.partial import Fact, PartialStructure, conjecture
from ..logic.sorts import FuncDecl, RelDecl
from ..rml.ast import Program
from ..solver.dispatch import query_of, resolve_jobs, solve_queries
from ..solver.epr import EprResult, EprSolver, PreparedEpr
from ..solver.stats import SolverStats
from .bounded import _Unroller, make_unroller
from .trace import Trace


@dataclass(frozen=True)
class ReachabilityResult:
    """Outcome of the BMC test on a generalization."""

    unreachable: bool
    bound: int
    trace: Trace | None = None  # a reachable extension of the structure
    depth: int | None = None
    statistics: dict[str, int] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.unreachable


@dataclass(frozen=True)
class GeneralizeResult:
    """Outcome of BMC + Auto Generalize."""

    ok: bool
    partial: PartialStructure | None = None  # the generalized s_m
    conjecture: s.Formula | None = None  # phi(s_m)
    dropped: tuple[Fact, ...] = ()  # facts removed beyond the upper bound
    trace: Trace | None = None  # when not ok: why s_u is reachable
    depth: int | None = None
    statistics: dict[str, int] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.ok


def _fact_literal(
    fact: Fact,
    const_of: Mapping,
    symbol_map: Callable,
) -> s.Formula:
    symbol = symbol_map(fact.symbol)
    args = tuple(const_of[e] for e in fact.args)
    if isinstance(symbol, RelDecl):
        atom: s.Formula = s.Rel(symbol, args)
    else:
        atom = s.eq(s.App(symbol, args[:-1]), args[-1])
    return atom if fact.positive else s.not_(atom)


def _diagram_parts(
    partial: PartialStructure, env: Mapping, label: str = "diag"
) -> tuple[list[s.Formula], list[tuple[Fact, s.Formula]]]:
    """Hand-skolemized ``Diag(partial)`` at a vocabulary version ``env``.

    Element witnesses become fresh constants named *canonically after the
    elements* -- NOT after the caller's ``label``.  This is the pre-state
    snapshot convention: when two diagrams over the same elements are
    asserted into one solver (e.g. the diagram of a pre-state at version 0
    and of a post-state at the step's post versions), the same element maps
    to the same witness constant, so the post-state is pinned pointwise
    against the pre-state snapshot.  Witnesses named per *caller* would let
    the solver re-match elements by permutation, admitting relabeled
    (isomorphic-but-wrong) pre/post pairs -- e.g. ``p(X) := ~p(X)`` run
    from ``p = {e1}`` would accept the identity post-state ``p = {e1}``
    with the nullary constants drifted, which disagrees with the
    interpreter.  ``label`` is kept only for diagnostics.

    Returns the hard distinctness constraints and one formula per fact so
    facts can be tracked individually.
    """
    elems = partial.active_elements()
    const_of = {
        elem: s.App(FuncDecl(f"diag!{elem.name}", (), elem.sort), ())
        for elem in elems
    }
    hard: list[s.Formula] = []
    by_sort: dict[object, list] = {}
    for elem in elems:
        by_sort.setdefault(elem.sort, []).append(const_of[elem])
    for consts in by_sort.values():
        if len(consts) > 1:
            hard.append(s.distinct(*consts))
    fact_formulas = [
        (fact, _fact_literal(fact, const_of, lambda sym: env.get(sym, sym)))
        for fact in partial.facts()
    ]
    return hard, fact_formulas


def check_unreachable(
    program: Program,
    partial: PartialStructure,
    k: int,
    unroller: _Unroller | None = None,
    jobs: int | None = None,
    stats: SolverStats | None = None,
) -> ReachabilityResult:
    """Is ``phi(partial)`` k-invariant?  (Eq. 3 applied to the conjecture.)

    Equivalently: is every state containing ``partial`` as a
    sub-configuration unreachable within ``k`` loop iterations?  The
    per-depth queries are independent; ``jobs > 1`` fans them across
    worker processes and reports the shallowest reachable depth.
    """
    unroller = unroller or make_unroller(program)
    statistics: dict[str, int] = {}

    def loaded_solver(depth: int) -> EprSolver:
        solver = unroller.solver_at(depth)
        env = unroller.envs[depth]
        hard, fact_formulas = _diagram_parts(partial, env, f"diag{depth}")
        for index, constraint in enumerate(hard):
            solver.add(constraint, name=f"distinct{index}")
        for index, (_, formula) in enumerate(fact_formulas):
            solver.add(formula, name=f"fact{index}")
        return solver

    if resolve_jobs(jobs) > 1 and k > 0:
        queries = [
            query_of(loaded_solver(depth), name=f"diag{depth}")
            for depth in range(k + 1)
        ]
        batches = solve_queries(queries, jobs=jobs, stats=stats)
        for depth, (result,) in enumerate(batches):
            _accumulate(statistics, result.statistics)
            if result.satisfiable:
                trace = unroller.trace_from(result, depth, aborted=False)
                return ReachabilityResult(False, k, trace, depth, statistics)
        return ReachabilityResult(True, k, statistics=statistics)

    for depth in range(k + 1):
        result = loaded_solver(depth).check()
        _accumulate(statistics, result.statistics)
        if stats is not None:
            stats.record(
                result.statistics,
                satisfiable=result.satisfiable,
                cached="cache_hits" in result.statistics,
            )
        if result.satisfiable:
            trace = unroller.trace_from(result, depth, aborted=False)
            return ReachabilityResult(False, k, trace, depth, statistics)
    return ReachabilityResult(True, k, statistics=statistics)


def auto_generalize(
    program: Program,
    upper_bound: PartialStructure,
    k: int,
    unroller: _Unroller | None = None,
    polish: bool = True,
) -> GeneralizeResult:
    """BMC + Auto Generalize (Section 4.5).

    Validates ``phi(s_u)`` by bounded verification; on success shrinks the
    diagram to a minimal literal subset that remains k-unreachable and
    returns the corresponding ``s_m`` with its conjecture.  ``polish=False``
    skips the deletion pass and returns the raw unsat-core generalization
    (the ablation benchmarks compare the two).
    """
    unroller = unroller or make_unroller(program)
    statistics: dict[str, int] = {}
    all_facts = list(upper_bound.facts())
    fact_names = {fact: f"fact{index}" for index, fact in enumerate(all_facts)}

    # One prepared (grounded) solver per depth, with every diagram fact as a
    # tracked constraint; subset solves are incremental SAT calls.
    prepared: list[PreparedEpr] = []
    for depth in range(k + 1):
        solver = unroller.solver_at(depth)
        env = unroller.envs[depth]
        hard, fact_formulas = _diagram_parts(upper_bound, env, f"gen{depth}")
        for index, constraint in enumerate(hard):
            solver.add(constraint, name=f"distinct{index}")
        for fact, formula in fact_formulas:
            solver.add(formula, name=fact_names[fact], track=True)
        prepared.append(solver.prepare())

    def reachable_with(names: set[str]) -> EprResult | None:
        """First sat result over the depths, or None when all unsat."""
        for depth_prepared in prepared:
            result = depth_prepared.solve(names)
            _accumulate(statistics, result.statistics)
            if result.satisfiable:
                return result
        return None

    # Validation plus phase 1 in one pass: each depth's unsat already
    # reports an assumption core; their union over-approximates the facts
    # needed for k-unreachability.
    all_names = set(fact_names.values())
    needed: set[str] = set()
    for depth, depth_prepared in enumerate(prepared):
        result = depth_prepared.solve(all_names)
        _accumulate(statistics, result.statistics)
        if result.satisfiable:
            trace = unroller.trace_from(result, depth, aborted=False)
            return GeneralizeResult(
                False, trace=trace, depth=depth, statistics=statistics
            )
        needed |= set(result.core)

    # Phase 2: deletion pass for subset minimality over the core survivors.
    kept = set(needed)
    if polish:
        for name in sorted(kept):
            attempt = kept - {name}
            if reachable_with(attempt) is None:
                kept = attempt

    name_to_fact = {name: fact for fact, name in fact_names.items()}
    kept_facts = [name_to_fact[name] for name in kept]
    candidate = upper_bound.keep_facts(kept_facts)

    # Exact recheck: dropping facts may deactivate elements, removing their
    # distinctness from the diagram -- a weaker formula than the subset the
    # prepared solvers certified.  Verify with the real conjecture
    # semantics and re-add facts if ever needed.
    exact = check_unreachable(program, candidate, k, unroller)
    _accumulate(statistics, exact.statistics)
    if not exact.unreachable:
        candidate = upper_bound
        for fact in all_facts:
            attempt = candidate.drop_fact(fact)
            again = check_unreachable(program, attempt, k, unroller)
            _accumulate(statistics, again.statistics)
            if again.unreachable:
                candidate = attempt

    kept_final = list(candidate.facts())
    dropped = tuple(fact for fact in all_facts if fact not in kept_final)
    return GeneralizeResult(
        True,
        partial=candidate,
        conjecture=conjecture(candidate),
        dropped=dropped,
        statistics=statistics,
    )


def _accumulate(into: dict[str, int], new: dict[str, int]) -> None:
    for key, value in new.items():
        into[key] = into.get(key, 0) + value
