"""Houdini-style automatic invariant inference (Section 5.1, Chord).

For the Chord proof the paper "described a class of formulas using a
template, and used abstract interpretation to construct the strongest
inductive invariant in this class" -- i.e. the Houdini algorithm of
Flanagan & Leino applied to a candidate conjecture pool:

1. drop every candidate that fails *initiation*;
2. repeatedly check consecution of the whole remaining conjunction and drop
   every conjecture with a CTI, until no check fails.

The result is the strongest inductive invariant expressible as a
conjunction of pool members.  When it implies the safety property the
program is proved automatically; otherwise it is a sound starting set of
conjectures for the interactive session (Section 4.2's seeding).

Pools are large (hundreds to thousands of template instances), so both
phases are *batched*: all candidates' verification conditions are loaded
into one :class:`~repro.solver.epr.EprSolver` as tracked constraints and
each candidate is decided by an incremental SAT call under its selector --
one grounding per Houdini round instead of one per candidate.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Sequence

from .. import obs
from ..obs import profile
from ..logic import syntax as s
from ..logic.printer import canonical_str
from ..rml.ast import Program
from ..rml.wp import wp
from ..solver.budget import Budget
from ..solver.dispatch import query_of, resolve_jobs, solve_queries
from ..solver.epr import EprSolver
from ..solver.stats import SolverStats
from .induction import Conjecture, ledger_proven, ledger_record_set


@dataclass(frozen=True)
class HoudiniResult:
    """The strongest inductive subset, plus why each candidate was dropped.

    ``dropped_unknown`` lists candidates whose check exhausted its budget:
    they are dropped *conservatively*.  This keeps the final fixpoint sound
    -- every surviving candidate's obligations were conclusively refuted
    against exactly the surviving conjunction -- at the price of a weaker
    (never wrong) invariant.
    """

    invariant: tuple[Conjecture, ...]  # the strongest inductive subset
    dropped_initiation: tuple[str, ...]
    dropped_consecution: tuple[str, ...]
    rounds: int
    statistics: dict[str, int] = field(default_factory=dict)
    dropped_unknown: tuple[str, ...] = ()


def _candidate_solver(
    program: Program,
    candidates: Sequence[Conjecture],
    command,
    premises: s.Formula,
    budget: Budget | None = None,
) -> EprSolver:
    """A solver with every candidate's negated obligation tracked."""
    axioms = program.axiom_formula
    solver = EprSolver(program.vocab, exclusive_tracked=True, budget=budget)
    solver.add(s.and_(axioms, premises), name="premises")
    for candidate in candidates:
        obligation = s.not_(wp(command, candidate.formula, axioms))
        solver.add(obligation, name=candidate.name, track=True)
    return solver


def _batched_failures(
    program: Program,
    candidates: Sequence[Conjecture],
    command,
    premises: s.Formula,
    statistics: dict[str, int],
    jobs: int | None = None,
    stats: SolverStats | None = None,
    budget: Budget | None = None,
) -> tuple[set[str], set[str]]:
    """Candidates whose ``premises => wp(command, c)`` fails or is unknown.

    Returns ``(failing, unknown)`` name sets.  One grounded solver;
    candidate ``c``'s negated obligation is a tracked constraint solved in
    isolation under its selector.  With ``jobs > 1`` the candidate pool is
    split into per-worker chunks, each chunk sharing one grounding in its
    worker process.  A whole-chunk grounding blowup marks every candidate
    in the chunk unknown.
    """
    failing: set[str] = set()
    unknown: set[str] = set()
    workers = resolve_jobs(jobs)
    if workers > 1 and len(candidates) > 1:
        chunks = [list(candidates[index::workers]) for index in range(workers)]
        chunks = [chunk for chunk in chunks if chunk]
        queries = [
            query_of(
                _candidate_solver(program, chunk, command, premises, budget),
                solve_sets=[frozenset({c.name}) for c in chunk],
                name=f"houdini-chunk{index}",
            )
            for index, chunk in enumerate(chunks)
        ]
        with obs.span("houdini.dispatch", chunks=len(queries)):
            batches = solve_queries(queries, jobs=jobs, stats=stats)
        for chunk, batch in zip(chunks, batches):
            for candidate, result in zip(chunk, batch):
                _accumulate(statistics, result.statistics)
                if result.unknown:
                    unknown.add(candidate.name)
                elif result.satisfiable:
                    failing.add(candidate.name)
        obs.count_engine_queries(
            "houdini", [result for batch in batches for result in batch]
        )
        return failing, unknown
    solver = _candidate_solver(program, candidates, command, premises, budget)
    try:
        prepared = solver.prepare()
    except Exception as error:  # grounding blowup / budget exhausted
        from ..solver.budget import BudgetExceeded
        from ..solver.grounding import GroundingExplosion

        if not isinstance(error, (BudgetExceeded, GroundingExplosion)):
            raise
        return failing, {candidate.name for candidate in candidates}
    results = []
    for candidate in candidates:
        result = prepared.solve({candidate.name})
        results.append(result)
        _accumulate(statistics, result.statistics)
        if stats is not None:
            stats.record_result(result)
        if result.unknown:
            unknown.add(candidate.name)
        elif result.satisfiable:
            failing.add(candidate.name)
    obs.count_engine_queries("houdini", results)
    return failing, unknown


def pool_fingerprint(program: Program, candidates: Sequence[Conjecture]) -> str:
    """The journal key of one Houdini run: program + candidate pool.

    Order-insensitive in the pool (sorted by name) and deterministic
    across interpreter processes -- the same discipline as the ledger's
    fingerprints, which is what makes a resumed run's replay keys line up
    with the killed run's records.
    """
    from ..proof.ledger import program_fingerprint

    hasher = hashlib.sha256()
    hasher.update(program_fingerprint(program).encode())
    for candidate in sorted(candidates, key=lambda c: c.name):
        hasher.update(
            f"{candidate.name}|{canonical_str(candidate.formula)}\n".encode()
        )
    return hasher.hexdigest()


def houdini(
    program: Program,
    candidates: Sequence[Conjecture],
    max_rounds: int = 1000,
    jobs: int | None = None,
    stats: SolverStats | None = None,
    budget: Budget | None = None,
    ledger=None,
    journal=None,
) -> HoudiniResult:
    """Compute the strongest inductive subset of ``candidates``.

    With a ``budget``, a candidate whose check comes back UNKNOWN is
    *dropped* exactly like a refuted one (and reported in
    ``dropped_unknown``).  Dropping is conservative: the fixpoint test
    only ever concludes on conclusively-refuted obligations, so the final
    conjunction is still inductive -- just possibly weaker than an
    unbudgeted run would find.

    With a ``ledger``, a rerun whose full candidate pool is already
    recorded as inductive returns immediately (zero queries), and a
    freshly converged fixpoint records its surviving set's obligations.
    Intermediate rounds are not ledgered: their premise sets are
    transient, so their keys would never be consulted again.

    With a ``journal`` (:class:`repro.recovery.journal.Journal`), each
    completed phase -- initiation, then every consecution round -- is
    recorded after its batch concludes, and replayed rounds are skipped
    without building a solver.  The surviving set is a pure function of
    the drop history, so replaying the per-round drop sets reconstructs
    the exact engine state; a run killed in round *k* resumes by
    replaying rounds ``1..k-1`` and re-solving only round *k*.
    """
    statistics: dict[str, int] = {}
    journal_key = (
        pool_fingerprint(program, candidates) if journal is not None else ""
    )
    with profile.engine("houdini"), obs.span("houdini", candidates=len(candidates)) as sp:
        if ledger is not None and ledger_proven(program, candidates, ledger):
            sp.set(rounds=0, invariant=len(candidates), ledger_skip=True)
            statistics["ledger_hits"] = 2 * len(candidates)
            return HoudiniResult(
                tuple(candidates), (), (), 0, statistics, ()
            )
        replayed = (
            journal.replay("houdini.init", journal_key)
            if journal is not None
            else None
        )
        if replayed is not None:
            failing_init = set(replayed["failing"])
            unknown_init = set(replayed["unknown"])
            statistics["journal_hits"] = (
                statistics.get("journal_hits", 0) + len(candidates)
            )
        else:
            with obs.span("houdini.initiation", candidates=len(candidates)):
                failing_init, unknown_init = _batched_failures(
                    program, candidates, program.init, s.TRUE, statistics,
                    jobs, stats, budget,
                )
            if journal is not None:
                journal.append(
                    "houdini.init",
                    journal_key,
                    failing=sorted(failing_init),
                    unknown=sorted(unknown_init),
                )
        dropped_unknown: list[str] = sorted(unknown_init)
        surviving = [
            c for c in candidates
            if c.name not in failing_init and c.name not in unknown_init
        ]
        dropped_consec: list[str] = []
        rounds = 0
        while True:
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError("houdini failed to converge")
            replayed = (
                journal.replay("houdini.round", f"{journal_key}:{rounds}")
                if journal is not None
                else None
            )
            if replayed is not None:
                failing = set(replayed["failing"])
                unknown = set(replayed["unknown"])
                statistics["journal_hits"] = (
                    statistics.get("journal_hits", 0) + len(surviving)
                )
            else:
                invariant = s.and_(*(c.formula for c in surviving))
                with obs.span(
                    "houdini.round", round=rounds, surviving=len(surviving)
                ) as round_span:
                    failing, unknown = _batched_failures(
                        program, surviving, program.body, invariant,
                        statistics, jobs, stats, budget,
                    )
                    round_span.set(failing=len(failing), unknown=len(unknown))
                if journal is not None:
                    journal.append(
                        "houdini.round",
                        f"{journal_key}:{rounds}",
                        failing=sorted(failing),
                        unknown=sorted(unknown),
                    )
            if not failing and not unknown:
                break
            dropped_consec.extend(sorted(failing))
            dropped_unknown.extend(sorted(unknown))
            dropped = failing | unknown
            surviving = [c for c in surviving if c.name not in dropped]
        if ledger is not None and surviving:
            ledger_record_set(
                program, tuple(surviving), ledger, engine="houdini"
            )
        sp.set(rounds=rounds, invariant=len(surviving))
        return HoudiniResult(
            tuple(surviving),
            tuple(sorted(failing_init)),
            tuple(dropped_consec),
            rounds,
            statistics,
            tuple(dropped_unknown),
        )


def proves(
    program: Program, invariant: Sequence[Conjecture], goal: Conjecture
) -> bool:
    """Does the (inductive) invariant imply the goal conjecture?

    Used to test whether a Houdini result establishes the safety property:
    checks unsatisfiability of ``A & I & ~goal``.
    """
    solver = EprSolver(program.vocab)
    solver.add(program.axiom_formula, name="axioms")
    for index, conjecture in enumerate(invariant):
        solver.add(conjecture.formula, name=f"inv{index}")
    solver.add(s.not_(goal.formula), name="goal")
    return not solver.check().satisfiable


def _accumulate(into: dict[str, int], new: dict[str, int]) -> None:
    for key, value in new.items():
        into[key] = into.get(key, 0) + value
