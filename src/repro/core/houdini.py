"""Houdini-style automatic invariant inference (Section 5.1, Chord).

For the Chord proof the paper "described a class of formulas using a
template, and used abstract interpretation to construct the strongest
inductive invariant in this class" -- i.e. the Houdini algorithm of
Flanagan & Leino applied to a candidate conjecture pool:

1. drop every candidate that fails *initiation*;
2. repeatedly check consecution of the whole remaining conjunction and drop
   every conjecture with a CTI, until no check fails.

The result is the strongest inductive invariant expressible as a
conjunction of pool members.  When it implies the safety property the
program is proved automatically; otherwise it is a sound starting set of
conjectures for the interactive session (Section 4.2's seeding).

Pools are large (hundreds to thousands of template instances), so both
phases are *batched*: all candidates' verification conditions are loaded
into one :class:`~repro.solver.epr.EprSolver` as tracked constraints and
each candidate is decided by an incremental SAT call under its selector --
one grounding per Houdini round instead of one per candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..logic import syntax as s
from ..rml.ast import Program
from ..rml.wp import wp
from ..solver.dispatch import query_of, resolve_jobs, solve_queries
from ..solver.epr import EprSolver
from ..solver.stats import SolverStats
from .induction import Conjecture


@dataclass(frozen=True)
class HoudiniResult:
    invariant: tuple[Conjecture, ...]  # the strongest inductive subset
    dropped_initiation: tuple[str, ...]
    dropped_consecution: tuple[str, ...]
    rounds: int
    statistics: dict[str, int] = field(default_factory=dict)


def _candidate_solver(
    program: Program,
    candidates: Sequence[Conjecture],
    command,
    premises: s.Formula,
) -> EprSolver:
    """A solver with every candidate's negated obligation tracked."""
    axioms = program.axiom_formula
    solver = EprSolver(program.vocab, exclusive_tracked=True)
    solver.add(s.and_(axioms, premises), name="premises")
    for candidate in candidates:
        obligation = s.not_(wp(command, candidate.formula, axioms))
        solver.add(obligation, name=candidate.name, track=True)
    return solver


def _batched_failures(
    program: Program,
    candidates: Sequence[Conjecture],
    command,
    premises: s.Formula,
    statistics: dict[str, int],
    jobs: int | None = None,
    stats: SolverStats | None = None,
) -> set[str]:
    """Names of candidates whose ``premises => wp(command, c)`` fails.

    One grounded solver; candidate ``c``'s negated obligation is a tracked
    constraint solved in isolation under its selector.  With ``jobs > 1``
    the candidate pool is split into per-worker chunks, each chunk sharing
    one grounding in its worker process.
    """
    failing: set[str] = set()
    workers = resolve_jobs(jobs)
    if workers > 1 and len(candidates) > 1:
        chunks = [list(candidates[index::workers]) for index in range(workers)]
        chunks = [chunk for chunk in chunks if chunk]
        queries = [
            query_of(
                _candidate_solver(program, chunk, command, premises),
                solve_sets=[frozenset({c.name}) for c in chunk],
                name=f"houdini-chunk{index}",
            )
            for index, chunk in enumerate(chunks)
        ]
        batches = solve_queries(queries, jobs=jobs, stats=stats)
        for chunk, batch in zip(chunks, batches):
            for candidate, result in zip(chunk, batch):
                _accumulate(statistics, result.statistics)
                if result.satisfiable:
                    failing.add(candidate.name)
        return failing
    prepared = _candidate_solver(program, candidates, command, premises).prepare()
    for candidate in candidates:
        result = prepared.solve({candidate.name})
        _accumulate(statistics, result.statistics)
        if stats is not None:
            stats.record(
                result.statistics,
                satisfiable=result.satisfiable,
                cached="cache_hits" in result.statistics,
            )
        if result.satisfiable:
            failing.add(candidate.name)
    return failing


def houdini(
    program: Program,
    candidates: Sequence[Conjecture],
    max_rounds: int = 1000,
    jobs: int | None = None,
    stats: SolverStats | None = None,
) -> HoudiniResult:
    """Compute the strongest inductive subset of ``candidates``."""
    statistics: dict[str, int] = {}
    failing_init = _batched_failures(
        program, candidates, program.init, s.TRUE, statistics, jobs, stats
    )
    surviving = [c for c in candidates if c.name not in failing_init]
    dropped_consec: list[str] = []
    rounds = 0
    while True:
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError("houdini failed to converge")
        invariant = s.and_(*(c.formula for c in surviving))
        failing = _batched_failures(
            program, surviving, program.body, invariant, statistics, jobs, stats
        )
        if not failing:
            break
        dropped_consec.extend(sorted(failing))
        surviving = [c for c in surviving if c.name not in failing]
    return HoudiniResult(
        tuple(surviving),
        tuple(sorted(failing_init)),
        tuple(dropped_consec),
        rounds,
        statistics,
    )


def proves(
    program: Program, invariant: Sequence[Conjecture], goal: Conjecture
) -> bool:
    """Does the (inductive) invariant imply the goal conjecture?

    Used to test whether a Houdini result establishes the safety property:
    checks unsatisfiability of ``A & I & ~goal``.
    """
    solver = EprSolver(program.vocab)
    solver.add(program.axiom_formula, name="axioms")
    for index, conjecture in enumerate(invariant):
        solver.add(conjecture.formula, name=f"inv{index}")
    solver.add(s.not_(goal.formula), name="goal")
    return not solver.check().satisfiable


def _accumulate(into: dict[str, int], new: dict[str, int]) -> None:
    for key, value in new.items():
        into[key] = into.get(key, 0) + value
