"""Template-based conjecture enumeration (the paper's "basic abstract
interpretation" seeding, Sections 4.2 and 5.1).

The paper seeds invariant searches with conjectures computed automatically,
and for Chord builds the *strongest inductive invariant in a template
class* via Houdini.  This module provides the template class: universally
quantified negated conjunctions of literals ("forbidden sub-configurations")
over a bounded set of variables,

    forall x1..xv . ~(l1 & ... & lm)

where each literal is a (possibly negated) relation atom whose arguments
are the bound variables or stratified function applications on them
(e.g. ``le(idn(N1), idn(N2))``).  Combined with
:func:`repro.core.houdini.houdini` this yields the automatic baseline the
interactive method is compared against.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from ..logic import syntax as s
from ..logic.sorts import Sort, Vocabulary
from .induction import Conjecture


def candidate_terms(
    vocab: Vocabulary, variables: Sequence[s.Var], max_depth: int = 1
) -> list[s.Term]:
    """Variables plus stratified function applications over them."""
    terms: list[s.Term] = list(variables)
    frontier: list[s.Term] = list(variables)
    for _ in range(max_depth):
        new: list[s.Term] = []
        for func in vocab.proper_functions():
            for args in itertools.product(frontier, repeat=func.arity):
                if tuple(a.sort for a in args) == func.arg_sorts:
                    term = s.App(func, tuple(args))
                    if term not in terms:
                        new.append(term)
        terms.extend(new)
        frontier = new
        if not new:
            break
    return terms


def candidate_atoms(
    vocab: Vocabulary,
    variables: Sequence[s.Var],
    max_depth: int = 1,
    include_equality: bool = True,
) -> list[s.Formula]:
    """All relation atoms (and optional equalities) over the term pool."""
    terms = candidate_terms(vocab, variables, max_depth)
    by_sort: dict[Sort, list[s.Term]] = {}
    for term in terms:
        by_sort.setdefault(term.sort, []).append(term)
    atoms: list[s.Formula] = []
    for rel in vocab.relations:
        pools = [by_sort.get(sort, []) for sort in rel.arg_sorts]
        for args in itertools.product(*pools):
            atoms.append(s.Rel(rel, tuple(args)))
    if include_equality:
        for pool in by_sort.values():
            for lhs, rhs in itertools.combinations(pool, 2):
                atoms.append(s.Eq(lhs, rhs))
    return atoms


def enumerate_candidates(
    vocab: Vocabulary,
    variables: Sequence[s.Var],
    max_literals: int = 2,
    max_depth: int = 1,
    include_equality: bool = True,
    name_prefix: str = "T",
    max_candidates: int | None = None,
) -> Iterator[Conjecture]:
    """Enumerate template conjectures ``forall vars. ~(l1 & ... & lm)``.

    Literal sets are combinations (no repetition) of signed atoms; a set
    containing both polarities of one atom is skipped as trivially valid.
    """
    atoms = candidate_atoms(vocab, variables, max_depth, include_equality)
    signed = [(atom, polarity) for atom in atoms for polarity in (True, False)]
    count = 0
    for size in range(1, max_literals + 1):
        for combo in itertools.combinations(signed, size):
            chosen_atoms = [atom for atom, _ in combo]
            if len(set(map(id, chosen_atoms))) != len(chosen_atoms):
                continue
            if len(set(chosen_atoms)) != len(chosen_atoms):
                continue  # same atom twice (either polarity combination)
            literals = [s.literal(atom, polarity) for atom, polarity in combo]
            used = set()
            for literal in literals:
                used |= s.free_vars(literal)
            bound = tuple(v for v in variables if v in used)
            body = s.not_(s.and_(*literals))
            formula = s.forall(bound, body) if bound else body
            count += 1
            yield Conjecture(f"{name_prefix}{count}", formula)
            if max_candidates is not None and count >= max_candidates:
                return
