"""Invariant shrinking: minimal inductive cores of conjecture sets.

Interactive sessions (and Houdini's template output even more so) often end
with *supporting* conjectures the proof does not actually need -- our Chord
session, for instance, closes with three of the eight published
conjectures.  :func:`shrink_invariant` computes a subset-minimal inductive
core that still implies the safety conjectures, by deletion: drop a
conjecture, re-check inductiveness + safety entailment, keep the drop if
both survive.

This is the invariant-level analogue of the diagram-literal minimization in
BMC + Auto Generalize (Section 4.5), applied at the end of a session
instead of per conjecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..logic import syntax as s
from ..rml.ast import Program
from ..solver.epr import EprSolver
from .induction import Conjecture, check_inductive


@dataclass(frozen=True)
class ShrinkResult:
    core: tuple[Conjecture, ...]
    dropped: tuple[str, ...]
    checks: int
    statistics: dict[str, int] = field(default_factory=dict)


def _implies_all(
    program: Program, invariant: Sequence[Conjecture], goals: Sequence[Conjecture]
) -> bool:
    solver = EprSolver(program.vocab)
    solver.add(program.axiom_formula, name="axioms")
    for index, conjecture in enumerate(invariant):
        solver.add(conjecture.formula, name=f"inv{index}")
    negated = s.or_(*(s.not_(goal.formula) for goal in goals))
    solver.add(negated, name="goals")
    return not solver.check().satisfiable


def shrink_invariant(
    program: Program,
    invariant: Sequence[Conjecture],
    safety: Sequence[Conjecture] = (),
) -> ShrinkResult:
    """A subset-minimal inductive subset of ``invariant`` implying ``safety``.

    ``invariant`` must already be inductive.  Safety conjectures default to
    none (pure inductive core); pass the protocol's safety set to keep the
    result a proof.  Deletion order follows the input order, so putting the
    safety conjectures first biases toward keeping them verbatim.
    """
    kept = list(invariant)
    dropped: list[str] = []
    checks = 0
    assert check_inductive(program, kept).holds, "input must be inductive"
    checks += 1
    for conjecture in list(invariant):
        if conjecture not in kept:
            continue
        attempt = [c for c in kept if c is not conjecture]
        checks += 1
        if not check_inductive(program, attempt).holds:
            continue
        if safety and not _implies_all(program, attempt, safety):
            checks += 1
            continue
        kept = attempt
        dropped.append(conjecture.name)
    return ShrinkResult(tuple(kept), tuple(dropped), checks)
