"""Inductiveness checking and counterexamples to induction (CTIs).

Implements the three obligations of Eq. 2 for a candidate invariant
``I = /\\ phi_i`` given as a set of named universal conjectures:

* **initiation**: ``A => wp(C_init, phi_i)`` for every conjecture;
* **safety**: ``A & I => wp(C_final, true)`` and ``A & I => wp(C_body,
  true)`` -- no assertion can fail from an I-state;
* **consecution**: ``A & I => wp(C_body, phi_i)`` for every conjecture.

Each failed obligation yields a finite model of the negated implication
(Theorem 3.3): a **CTI** -- a state satisfying all current conjectures from
which one body execution aborts or violates some conjecture.  The successor
state shown to the user (the (a2) states of Figures 7-9) is recovered by
concretely executing the body from the CTI with the interpreter and picking
an outcome that witnesses the violation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Literal, Mapping, Sequence

from .. import obs
from ..obs import profile
from ..logic import syntax as s
from ..logic.fragments import is_universal
from ..logic.structures import Structure
from ..rml.ast import Program
from ..rml.interp import Outcome, execute, successors
from ..rml.wp import wp
from ..solver.budget import Budget
from ..solver.dispatch import query_of, resolve_jobs, solve_queries
from ..solver.epr import EprResult, EprSolver
from ..solver.stats import SolverStats

ObligationKind = Literal["initiation", "safety", "consecution"]


@dataclass(frozen=True)
class Conjecture:
    """A named universal conjecture, one conjunct of the candidate invariant."""

    name: str
    formula: s.Formula

    def __post_init__(self) -> None:
        if s.free_vars(self.formula):
            raise ValueError(f"conjecture {self.name!r} is not closed")
        if not is_universal(self.formula):
            raise ValueError(f"conjecture {self.name!r} is not universally quantified")

    def __str__(self) -> str:
        return f"{self.name}: {self.formula}"


@dataclass(frozen=True)
class Obligation:
    """One proof obligation ``premises => wp(command, post)``."""

    kind: ObligationKind
    description: str
    command_label: str  # "init", "body", or "final"
    target: str | None  # conjecture name being established, None for no-abort
    post: s.Formula  # the postcondition being established (true for no-abort)
    vc: s.Formula  # the exists*forall* satisfiability query (negated implication)


@dataclass(frozen=True)
class CTI:
    """A counterexample to induction (Section 4.2).

    ``state`` satisfies the axioms and every current conjecture;
    ``successor`` (when the obligation is consecution) is a state reachable
    from it in one body execution that violates ``violated``; for safety
    obligations the body/final execution aborts instead and ``successor`` is
    None.
    """

    obligation: Obligation
    state: Structure
    successor: Structure | None
    action: tuple[str, ...]  # choice labels of the violating execution

    @property
    def violated(self) -> str | None:
        return self.obligation.target

    def __str__(self) -> str:
        lines = [f"CTI ({self.obligation.description}):", "pre-state:"]
        lines.extend("  " + line for line in str(self.state).splitlines())
        if self.successor is not None:
            lines.append(f"successor via {' / '.join(self.action) or 'body'}:")
            lines.extend("  " + line for line in str(self.successor).splitlines())
        return "\n".join(lines)


@dataclass(frozen=True)
class InductionResult:
    """Outcome of an inductiveness check.

    ``unknown_obligations`` names obligations whose query exhausted its
    budget.  When it is non-empty and no CTI was found the check is
    *inconclusive*: ``holds`` is False but ``cti`` is None -- the candidate
    was neither proved nor refuted.
    """

    holds: bool
    cti: CTI | None = None
    statistics: dict[str, int] = field(default_factory=dict)
    unknown_obligations: tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.holds


def obligations(
    program: Program,
    conjectures: Sequence[Conjecture],
    lemmas: Sequence[Conjecture] = (),
    include_no_abort: bool = True,
) -> list[Obligation]:
    """The full list of Eq. 2 obligations for the candidate invariant.

    ``lemmas`` are previously proven invariants (the proof layer's
    ``with``-clauses): their conjunction joins the premises of every
    safety and consecution obligation -- a proven invariant holds in any
    reachable pre-state -- but *not* of initiation (the pre-init state is
    arbitrary), and they incur no obligations of their own.  The proof
    manager sets ``include_no_abort=False`` for proof nodes, deferring
    the program-wide no-abort check until every invariant is available
    as a premise.
    """
    axioms = program.axiom_formula
    invariant = s.and_(*(c.formula for c in conjectures))
    assumed: tuple[s.Formula, ...] = tuple(c.formula for c in lemmas)
    out: list[Obligation] = []
    for conjecture in conjectures:
        vc = s.and_(axioms, s.not_(wp(program.init, conjecture.formula, axioms)))
        out.append(
            Obligation(
                "initiation",
                f"initiation of {conjecture.name}",
                "init",
                conjecture.name,
                conjecture.formula,
                vc,
            )
        )
    if include_no_abort:
        for label, command in (("final", program.final), ("body", program.body)):
            no_abort = wp(command, s.TRUE, axioms)
            if no_abort == s.TRUE:
                continue
            vc = s.and_(axioms, *assumed, invariant, s.not_(no_abort))
            out.append(
                Obligation("safety", f"no abort via {label}", label, None, s.TRUE, vc)
            )
    for conjecture in conjectures:
        vc = s.and_(
            axioms,
            *assumed,
            invariant,
            s.not_(wp(program.body, conjecture.formula, axioms)),
        )
        out.append(
            Obligation(
                "consecution",
                f"consecution of {conjecture.name}",
                "body",
                conjecture.name,
                conjecture.formula,
                vc,
            )
        )
    return out


def obligation_premises(
    obligation: Obligation,
    conjectures: Sequence[Conjecture],
    lemmas: Sequence[Conjecture] = (),
) -> tuple[s.Formula, ...]:
    """The formulas an obligation assumes beyond the axioms.

    This is the premise set the ledger hashes into an obligation's key:
    initiation assumes nothing, safety and consecution assume the proven
    lemmas plus the whole conjecture set (mutual induction).
    """
    if obligation.kind == "initiation":
        return ()
    return tuple(c.formula for c in lemmas) + tuple(c.formula for c in conjectures)


def _ledger_split(
    program: Program,
    pending: Sequence[Obligation],
    conjectures: Sequence[Conjecture],
    lemmas: Sequence[Conjecture],
    ledger,
    journal=None,
) -> tuple[list[Obligation], dict[int, tuple[str, str, str, str]], int, int]:
    """Partition obligations into (to solve, keys by index, ledger hits,
    journal hits).

    The run journal shares the ledger's content keys: an obligation the
    killed run conclusively discharged is skipped here exactly like a
    ledgered one, just with run-local scope.  Either store may be None.
    """
    from ..proof.ledger import keys_of, program_fingerprint

    program_hash = program_fingerprint(program)
    to_solve: list[Obligation] = []
    keys: dict[int, tuple[str, str, str, str]] = {}
    hits = 0
    journal_hits = 0
    with profile.phase("ledger"):
        for obligation in pending:
            parts = keys_of(
                program,
                obligation,
                obligation_premises(obligation, conjectures, lemmas),
                program_hash=program_hash,
            )
            if ledger is not None and ledger.proven(parts[0]) is not None:
                hits += 1
                continue
            if journal is not None:
                data = journal.replay("obligation", parts[0])
                if data is not None and data.get("verdict") == "unsat":
                    journal_hits += 1
                    continue
            keys[len(to_solve)] = parts
            to_solve.append(obligation)
    if ledger is not None:
        obs.inc("ledger_hits", hits)
        obs.inc("ledger_misses", len(to_solve))
        obs.point("ledger.split", hits=hits, misses=len(to_solve))
    return to_solve, keys, hits, journal_hits


def _journal_record(journal, keys: tuple[str, str, str, str] | None) -> None:
    """Journal one freshly discharged (unsat) obligation."""
    if journal is not None and keys is not None:
        journal.append("obligation", keys[0], verdict="unsat")


def _ledger_record(
    ledger,
    keys: tuple[str, str, str, str] | None,
    program: Program,
    obligation: Obligation,
    engine: str,
    budget: Budget | None,
    wall_ms: float,
) -> None:
    """Persist one freshly discharged (unsat) obligation."""
    if ledger is None or keys is None:
        return
    from ..proof.ledger import LedgerEntry, git_rev, run_id

    _, program_hash, obligation_hash, lemma_hash = keys
    ledger.record(
        LedgerEntry(
            program=program.name,
            invariant=obligation.target or "<no-abort>",
            kind=obligation.kind,
            program_hash=program_hash,
            obligation_hash=obligation_hash,
            lemma_hash=lemma_hash,
            engine=engine,
            budget=str(budget) if budget is not None else None,
            git_rev=git_rev(),
            run_id=run_id(),
            wall_ms=wall_ms,
        )
    )


def ledger_proven(
    program: Program,
    conjectures: Sequence[Conjecture],
    ledger,
    lemmas: Sequence[Conjecture] = (),
    include_no_abort: bool = False,
) -> bool:
    """Is every obligation of the conjecture set recorded as proven?

    The entry fast-path for engines with their own check loops (Houdini,
    UPDR): when a previous run already discharged the exact obligation
    set, the whole engine run can be skipped.
    """
    pending = obligations(program, conjectures, lemmas, include_no_abort)
    to_solve, _, _, _ = _ledger_split(program, pending, conjectures, lemmas, ledger)
    return not to_solve


def ledger_record_set(
    program: Program,
    conjectures: Sequence[Conjecture],
    ledger,
    lemmas: Sequence[Conjecture] = (),
    engine: str = "induction",
    include_no_abort: bool = False,
) -> None:
    """Record every obligation of an *already-verified* conjecture set.

    Engines that conclude inductiveness through their own batched checks
    (Houdini's fixpoint) call this once at the end; soundness rests on
    the caller having conclusively discharged exactly these obligations.
    """
    from ..proof.ledger import keys_of, program_fingerprint

    program_hash = program_fingerprint(program)
    for obligation in obligations(program, conjectures, lemmas, include_no_abort):
        parts = keys_of(
            program,
            obligation,
            obligation_premises(obligation, conjectures, lemmas),
            program_hash=program_hash,
        )
        _ledger_record(ledger, parts, program, obligation, engine, None, 0.0)


def check_obligation(
    program: Program,
    obligation: Obligation,
    extra_constraints: Iterable[s.Formula] = (),
    budget: Budget | None = None,
) -> EprResult:
    """Satisfiability of one obligation's negated VC (sat = CTI exists)."""
    solver = EprSolver(program.vocab, budget=budget)
    solver.add(obligation.vc, name="vc")
    for index, constraint in enumerate(extra_constraints):
        solver.add(constraint, name=f"extra{index}")
    return solver.check()


def cti_from_model(program: Program, obligation: Obligation, state: Structure) -> CTI:
    """Reconstruct the violating execution from a CTI pre-state."""
    successor, action = _witness(program, obligation, state)
    return CTI(obligation, state, successor, action)


def _witness(
    program: Program, obligation: Obligation, state: Structure
) -> tuple[Structure | None, tuple[str, ...]]:
    if obligation.kind == "initiation":
        return None, ()
    command = program.final if obligation.command_label == "final" else program.body
    outcomes = execute(command, state, program.axiom_formula)
    if obligation.kind == "safety":
        for outcome in outcomes:
            if outcome.aborted:
                return None, outcome.labels
        raise AssertionError("CTI model does not witness an abort")
    for outcome in outcomes:
        if outcome.state is None:
            continue
        if not outcome.state.satisfies(obligation.post):
            return outcome.state, outcome.labels
    raise AssertionError("CTI model has no violating successor")


def check_inductive(
    program: Program,
    conjectures: Sequence[Conjecture],
    jobs: int | None = None,
    stats: SolverStats | None = None,
    budget: Budget | None = None,
    lemmas: Sequence[Conjecture] = (),
    ledger=None,
    engine: str = "induction",
    journal=None,
) -> InductionResult:
    """Check Eq. 2 for the conjunction of ``conjectures``.

    Returns the first failing obligation's CTI (obligations are checked in
    the order initiation, safety, consecution, matching the search loop of
    Figure 5).  The obligations are mutually independent; ``jobs > 1``
    solves them in parallel and still reports the first failure in order.

    With a ``budget``, obligations that exhaust it are collected in
    ``unknown_obligations``: a CTI found elsewhere is still a real CTI,
    but an otherwise-clean run with unknowns is inconclusive (holds=False,
    cti=None) rather than a proof.

    ``lemmas`` strengthen the premises (see :func:`obligations`).  With a
    ``ledger`` (:class:`repro.proof.ledger.Ledger`), obligations already
    recorded as proven are skipped before any solver is built, and each
    freshly discharged obligation is recorded with provenance (``engine``
    names the caller in that record).  The skip is sound because the
    ledger key covers the program, the obligation, and the premise set.

    A ``journal`` gives the same skip with run scope: conclusively
    discharged obligations are appended as they complete, and a resumed
    run skips them before building a solver.
    """
    statistics: dict[str, int] = {}
    pending = obligations(program, conjectures, lemmas)
    unknown: list[str] = []
    with profile.engine("induction"), obs.span(
        "induction", conjectures=len(conjectures), obligations=len(pending)
    ) as sp:
        ledger_keys: dict[int, tuple[str, str, str, str]] = {}
        if ledger is not None or journal is not None:
            pending, ledger_keys, hits, journal_hits = _ledger_split(
                program, pending, conjectures, lemmas, ledger, journal
            )
            if ledger is not None:
                statistics["ledger_hits"] = hits
                statistics["ledger_misses"] = len(pending)
                sp.set(ledger_hits=hits, ledger_misses=len(pending))
            if journal_hits:
                statistics["journal_hits"] = journal_hits
                sp.set(journal_hits=journal_hits)
        if resolve_jobs(jobs) > 1 and len(pending) > 1:
            queries = []
            for obligation in pending:
                solver = EprSolver(program.vocab, budget=budget)
                solver.add(obligation.vc, name="vc")
                queries.append(query_of(solver, name=obligation.description))
            started = time.monotonic()
            with obs.span("induction.dispatch", queries=len(queries)):
                batches = solve_queries(queries, jobs=jobs, stats=stats)
            batch_ms = (time.monotonic() - started) * 1000 / max(len(queries), 1)
            obs.count_engine_queries(
                "induction", [result for (result,) in batches]
            )
            for index, (obligation, (result,)) in enumerate(zip(pending, batches)):
                for key, value in result.statistics.items():
                    statistics[key] = statistics.get(key, 0) + value
                if result.unknown:
                    unknown.append(obligation.description)
                elif result.satisfiable:
                    assert result.model is not None
                    cti = cti_from_model(program, obligation, result.model)
                    sp.set(holds=False, cti=obligation.description)
                    return InductionResult(False, cti, statistics, tuple(unknown))
                else:
                    _ledger_record(
                        ledger, ledger_keys.get(index), program, obligation,
                        engine, budget, batch_ms,
                    )
                    _journal_record(journal, ledger_keys.get(index))
            sp.set(holds=not unknown, unknowns=len(unknown))
            return InductionResult(not unknown, statistics=statistics,
                                   unknown_obligations=tuple(unknown))
        results = []
        for index, obligation in enumerate(pending):
            started = time.monotonic()
            with obs.span(
                "induction.obligation", description=obligation.description
            ) as obligation_span:
                result = check_obligation(program, obligation, budget=budget)
                obligation_span.set(verdict=result.verdict)
            elapsed_ms = (time.monotonic() - started) * 1000
            results.append(result)
            for key, value in result.statistics.items():
                statistics[key] = statistics.get(key, 0) + value
            if stats is not None:
                stats.record_result(result)
            if result.unknown:
                unknown.append(obligation.description)
            elif result.satisfiable:
                assert result.model is not None
                obs.count_engine_queries("induction", results)
                cti = cti_from_model(program, obligation, result.model)
                sp.set(holds=False, cti=obligation.description)
                return InductionResult(False, cti, statistics, tuple(unknown))
            else:
                _ledger_record(
                    ledger, ledger_keys.get(index), program, obligation,
                    engine, budget, elapsed_ms,
                )
                _journal_record(journal, ledger_keys.get(index))
        obs.count_engine_queries("induction", results)
        sp.set(holds=not unknown, unknowns=len(unknown))
        return InductionResult(not unknown, statistics=statistics,
                               unknown_obligations=tuple(unknown))


def check_initiation(program: Program, conjecture: Conjecture) -> EprResult:
    """Does the conjecture hold after ``C_init`` from any axiom state?"""
    axioms = program.axiom_formula
    vc = s.and_(axioms, s.not_(wp(program.init, conjecture.formula, axioms)))
    solver = EprSolver(program.vocab)
    solver.add(vc, name="initiation")
    return solver.check()
