"""The paper's core contribution: interactive safety verification.

Bounded verification / k-invariance (:mod:`~repro.core.bounded`),
inductiveness checking with CTIs (:mod:`~repro.core.induction`), minimal
CTIs (:mod:`~repro.core.minimize`), partial-structure generalization with
BMC + Auto Generalize (:mod:`~repro.core.generalize`), the interactive
session loop (:mod:`~repro.core.session`) with scriptable user policies
(:mod:`~repro.core.policy`), and the automatic baselines
(:mod:`~repro.core.houdini`, :mod:`~repro.core.absint`).
"""

from .absint import candidate_atoms, candidate_terms, enumerate_candidates
from .bounded import BoundedResult, check_k_invariance, find_error_trace, make_unroller
from .generalize import (
    GeneralizeResult,
    ReachabilityResult,
    auto_generalize,
    check_unreachable,
)
from .houdini import HoudiniResult, houdini, proves
from .induction import (
    CTI,
    Conjecture,
    InductionResult,
    Obligation,
    check_inductive,
    check_initiation,
    check_obligation,
    obligations,
)
from .minimize import (
    Measure,
    MinimalCTIResult,
    NegativeTuples,
    PositiveTuples,
    SortSize,
    default_measures,
    find_minimal_cti,
    minimize_obligation,
)
from .policy import (
    GeneralizingOraclePolicy,
    OraclePolicy,
    ScriptedPolicy,
    violation_subconfiguration,
)
from .session import (
    Action,
    AddConjecture,
    Policy,
    RemoveConjecture,
    SearchOutcome,
    Session,
    SessionError,
    Stop,
)
from .trace import Trace
from .updr import UpdrResult, UpdrStatus, updr

__all__ = [name for name in dir() if not name.startswith("_")]
from .shrink import ShrinkResult, shrink_invariant

__all__ = [name for name in dir() if not name.startswith("_")]
