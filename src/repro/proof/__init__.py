"""Proof management: named invariants, the proof DAG, and the ledger.

The package sits between the language layer (``repro.rml`` declares
``invariant``/``proof`` blocks) and the engines (``repro.core`` checks
obligations):

* :mod:`repro.proof.dag` -- the proof-dependency DAG: ``with``-clauses
  (plus engine-discovered lemma uses) as edges, cycle rejection with
  provenance, topological frontiers for parallel dispatch;
* :mod:`repro.proof.ledger` -- the persistent, content-addressed store
  of discharged obligations, so reruns skip proven conjectures;
* :mod:`repro.proof.manager` -- proof plans: grouping invariants into
  nodes, discharging frontiers against the ledger, and status reporting.

This ``__init__`` deliberately re-exports only the DAG and ledger:
``repro.rml.typecheck`` imports the DAG for its cycle diagnostics, so
pulling :mod:`repro.proof.manager` (which imports ``repro.core``, which
imports ``repro.rml``) in here would create an import cycle.  Import the
manager explicitly as ``repro.proof.manager``.
"""

from .dag import CycleError, ProofDag, ProofEdge, build_dag, cycle_diagnostics
from .ledger import (
    DEFAULT_LEDGER_DIR,
    LEDGER_FORMAT,
    Ledger,
    LedgerEntry,
    default_ledger,
    keys_of,
    ledger_dir,
    ledger_enabled,
    ledger_key,
    lemma_set_fingerprint,
    obligation_fingerprint,
    program_fingerprint,
)

__all__ = [
    "CycleError",
    "ProofDag",
    "ProofEdge",
    "build_dag",
    "cycle_diagnostics",
    "DEFAULT_LEDGER_DIR",
    "LEDGER_FORMAT",
    "Ledger",
    "LedgerEntry",
    "default_ledger",
    "keys_of",
    "ledger_dir",
    "ledger_enabled",
    "ledger_key",
    "lemma_set_fingerprint",
    "obligation_fingerprint",
    "program_fingerprint",
]
