"""Proof plans: scheduling the proof DAG against the ledger.

A :class:`ProofPlan` groups a program's named invariants into *proof
nodes* -- the units of mutual induction.  Declared ``proof`` blocks each
become a node; invariants no proof covers fall into an implicit ``main``
node, and for programmatically built protocols (no surface declarations)
the caller's conjecture set *is* the main node.  Nodes are scheduled as
the topological frontiers of the dependency DAG (:mod:`repro.proof.dag`):
every node in a frontier has all its ``with``-lemmas discharged, so the
whole frontier's outstanding obligations dispatch to the solver pool as
one batch.

Before anything is queued, each obligation is looked up in the ledger
(:mod:`repro.proof.ledger`); hits are skipped entirely, and fresh unsat
results are recorded with provenance.  A second ``repro prove`` of an
unchanged protocol therefore issues **zero** solver queries.

The program-wide no-abort (safety) obligations run after every node is
proved, with the full invariant as premise -- they are obligations of
the conjunction, not of any one node.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from .. import obs
from ..core.induction import (
    CTI,
    Conjecture,
    Obligation,
    check_obligation,
    cti_from_model,
    obligation_premises,
    obligations,
)
import dataclasses

from ..rml.ast import Program, ProofDecl, without_aborts
from ..solver.budget import Budget
from ..solver.dispatch import query_of, resolve_jobs, solve_queries
from ..solver.epr import EprSolver
from ..solver.stats import SolverStats
from .dag import CycleError, ProofDag, build_dag, provers_of
from .ledger import (
    Ledger,
    LedgerEntry,
    git_rev,
    keys_of,
    program_fingerprint,
    run_id,
)

#: name of the implicit proof node collecting invariants no proof covers
MAIN_PROOF = "main"

#: the pseudo-invariant name under which no-abort entries are recorded
NO_ABORT = "<no-abort>"


@dataclass(frozen=True)
class ProofNode:
    """One unit of mutual induction: conjectures proved together."""

    name: str
    conjectures: tuple[Conjecture, ...]
    lemmas: tuple[str, ...] = ()  # invariant names assumed (``with``)


@dataclass(frozen=True)
class ProofPlan:
    """A program's proof nodes plus their dependency DAG."""

    program: Program
    nodes: tuple[ProofNode, ...]
    dag: ProofDag

    def node_named(self, name: str) -> ProofNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no proof node named {name!r}")

    @property
    def invariants(self) -> dict[str, Conjecture]:
        """Every named invariant the plan establishes, in node order."""
        out: dict[str, Conjecture] = {}
        for node in self.nodes:
            for conjecture in node.conjectures:
                out.setdefault(conjecture.name, conjecture)
        return out

    def prover_of(self, invariant: str) -> str | None:
        for node in self.nodes:
            if any(c.name == invariant for c in node.conjectures):
                return node.name
        return None

    def frontiers(self) -> list[tuple[str, ...]]:
        """Topologically ordered, mutually independent node layers."""
        return self.dag.frontiers()


def plan_of(
    program: Program, conjectures: Sequence[Conjecture] = ()
) -> ProofPlan:
    """Build the proof plan for a program.

    Declared ``invariant``/``proof`` blocks drive the plan when present;
    ``conjectures`` supplements them for programmatic protocols (bundle
    invariants) and joins the implicit main node.  The main node carries
    every invariant no declared proof establishes, plus the program-wide
    no-abort obligations.
    """
    named: dict[str, Conjecture] = {}
    for invariant in program.invariants:
        named[invariant.name] = Conjecture(invariant.name, invariant.formula)
    for conjecture in conjectures:
        named.setdefault(conjecture.name, conjecture)

    covered = provers_of(program.proofs)
    nodes: list[ProofNode] = []
    for proof in program.proofs:
        nodes.append(
            ProofNode(
                proof.name,
                tuple(
                    named[name] for name in proof.proves if name in named
                ),
                proof.uses,
            )
        )
    uncovered = tuple(
        conjecture
        for name, conjecture in named.items()
        if name not in covered
    )
    decls = list(program.proofs)
    if uncovered or not nodes:
        main = MAIN_PROOF
        while any(node.name == main for node in nodes):
            main = "_" + main
        nodes.append(ProofNode(main, uncovered))
        decls.append(ProofDecl(main, tuple(c.name for c in uncovered)))
    return ProofPlan(program, tuple(nodes), build_dag(decls))


# ------------------------------------------------------------------ discharge


@dataclass(frozen=True)
class ObligationOutcome:
    """How one obligation was resolved."""

    node: str
    description: str
    via: str  # "ledger", "journal", "solver", or "unknown"
    wall_ms: float = 0.0


@dataclass(frozen=True)
class ProveReport:
    """The outcome of discharging a plan's DAG."""

    ok: bool
    program: str
    frontiers: tuple[tuple[str, ...], ...]
    outcomes: tuple[ObligationOutcome, ...]
    ledger_hits: int
    ledger_misses: int
    queries: int  # solver queries actually issued
    failed_node: str | None = None
    cti: CTI | None = None
    unknown: tuple[str, ...] = ()

    @property
    def hit_rate(self) -> float:
        total = self.ledger_hits + self.ledger_misses
        return self.ledger_hits / total if total else 0.0


@dataclass(frozen=True)
class _Work:
    """One outstanding obligation of a frontier batch."""

    node: str
    obligation: Obligation
    keys: tuple[str, str, str, str] | None  # None when ledger+journal are off


def _abort_free(program: Program) -> Program:
    """The program with the body's safety asserts weakened to assumes.

    Node-scoped consecution is checked against this: a node proves its
    own conjectures are preserved by non-aborting steps, and the deferred
    program-wide no-abort obligation (full invariant as premise) proves
    aborting steps are unreachable.  Ledger keys still hash the original
    program, so this never widens what a recorded entry claims.
    """
    return dataclasses.replace(program, body=without_aborts(program.body))


def _node_obligations(
    plan: ProofPlan, node: ProofNode
) -> tuple[list[Obligation], tuple[Conjecture, ...]]:
    """A node's obligations and the lemma conjectures they assume."""
    invariants = plan.invariants
    lemmas = tuple(
        invariants[name] for name in node.lemmas if name in invariants
    )
    return (
        obligations(
            _abort_free(plan.program),
            node.conjectures,
            lemmas,
            include_no_abort=False,
        ),
        lemmas,
    )


def _safety_obligations(plan: ProofPlan) -> list[Obligation]:
    """The program-wide no-abort obligations, over the full invariant."""
    everything = tuple(plan.invariants.values())
    return [
        obligation
        for obligation in obligations(plan.program, everything)
        if obligation.kind == "safety"
    ]


def prove(
    plan: ProofPlan,
    jobs: int | None = None,
    stats: SolverStats | None = None,
    budget: Budget | None = None,
    ledger: Ledger | None = None,
    engine: str = "prove",
    journal=None,
) -> ProveReport:
    """Discharge the plan frontier by frontier, honoring the ledger.

    Within a frontier, every outstanding obligation of every node is
    dispatched as one batch through the solver pool (``jobs > 1``); the
    ``dag_frontier_size`` gauge tracks the batch widths and
    ``ledger_hit_rate`` summarizes how much of the run was skipped.
    Stops at the first counterexample (reported with its CTI) or budget
    exhaustion; a fully discharged plan returns ``ok=True``.

    With a ``journal`` (:class:`repro.recovery.journal.Journal`), every
    conclusively discharged obligation is appended as an ``obligation``
    event keyed by its ledger content key, and each completed frontier
    gets a ``prove.frontier`` marker.  A resumed run replays those
    events in :func:`collect` (outcome ``via="journal"``) so the killed
    run's solved obligations are never re-dispatched.
    """
    program = plan.program
    keyed = ledger is not None or journal is not None
    program_hash = program_fingerprint(program) if keyed else ""
    outcomes: list[ObligationOutcome] = []
    unknown: list[str] = []
    hits = misses = queries = journal_hits = 0
    frontiers = tuple(plan.frontiers())

    def collect(
        node_name: str,
        pending: list[Obligation],
        conjectures: Sequence[Conjecture],
        lemmas: Sequence[Conjecture],
    ) -> list[_Work]:
        nonlocal hits, misses, journal_hits
        work: list[_Work] = []
        for obligation in pending:
            keys = None
            if keyed:
                keys = keys_of(
                    program,
                    obligation,
                    obligation_premises(obligation, conjectures, lemmas),
                    program_hash=program_hash,
                )
                if ledger is not None and ledger.proven(keys[0]) is not None:
                    hits += 1
                    outcomes.append(
                        ObligationOutcome(
                            node_name, obligation.description, "ledger"
                        )
                    )
                    continue
                if journal is not None:
                    replayed = journal.replay("obligation", keys[0])
                    if (
                        replayed is not None
                        and replayed.get("verdict") == "unsat"
                    ):
                        journal_hits += 1
                        outcomes.append(
                            ObligationOutcome(
                                node_name, obligation.description, "journal"
                            )
                        )
                        continue
                if ledger is not None:
                    misses += 1
            work.append(_Work(node_name, obligation, keys))
        return work

    def discharge(work: list[_Work]) -> ProveReport | None:
        """Solve a batch; record proofs; a report means failure/stop."""
        nonlocal queries
        if not work:
            return None
        # Items sharing a ledger key are the same semantic obligation
        # (same program, post, and premise set -- e.g. equal-formula
        # invariants in one node): solve one representative each.
        solve: list[_Work] = []
        representative: dict[str, int] = {}
        backing: list[int] = []
        for item in work:
            key = item.keys[0] if item.keys is not None else None
            if key is not None and key in representative:
                backing.append(representative[key])
                continue
            if key is not None:
                representative[key] = len(solve)
            backing.append(len(solve))
            solve.append(item)
        queries += len(solve)
        started = time.monotonic()
        if resolve_jobs(jobs) > 1 and len(solve) > 1:
            batch = []
            for item in solve:
                solver = EprSolver(program.vocab, budget=budget)
                solver.add(item.obligation.vc, name="vc")
                batch.append(
                    query_of(solver, name=item.obligation.description)
                )
            with obs.span("prove.dispatch", queries=len(batch)):
                results = [
                    result
                    for (result,) in solve_queries(
                        batch, jobs=jobs, stats=stats
                    )
                ]
            obs.count_engine_queries(engine, results)
        else:
            results = []
            for item in solve:
                result = check_obligation(
                    program, item.obligation, budget=budget
                )
                if stats is not None:
                    stats.record_result(result)
                results.append(result)
            obs.count_engine_queries(engine, results)
        wall_ms = (time.monotonic() - started) * 1000 / len(solve)
        recorded: set[str] = set()
        for item, result in zip(work, (results[i] for i in backing)):
            if result.unknown:
                unknown.append(item.obligation.description)
                outcomes.append(
                    ObligationOutcome(
                        item.node, item.obligation.description, "unknown"
                    )
                )
                continue
            if result.satisfiable:
                assert result.model is not None
                # Node consecution was checked against the abort-free
                # body; replay the witness through the same semantics.
                witness_program = (
                    program
                    if item.obligation.kind == "safety"
                    else _abort_free(program)
                )
                cti = cti_from_model(
                    witness_program, item.obligation, result.model
                )
                return ProveReport(
                    False,
                    program.name,
                    frontiers,
                    tuple(outcomes),
                    hits,
                    misses,
                    queries,
                    failed_node=item.node,
                    cti=cti,
                    unknown=tuple(unknown),
                )
            outcomes.append(
                ObligationOutcome(
                    item.node, item.obligation.description, "solver", wall_ms
                )
            )
            if item.keys is not None and item.keys[0] not in recorded:
                recorded.add(item.keys[0])
                if journal is not None:
                    journal.append(
                        "obligation", item.keys[0], verdict="unsat"
                    )
                if ledger is not None:
                    _, phash, ohash, lhash = item.keys
                    ledger.record(
                        LedgerEntry(
                            program=program.name,
                            invariant=item.obligation.target or NO_ABORT,
                            kind=item.obligation.kind,
                            program_hash=phash,
                            obligation_hash=ohash,
                            lemma_hash=lhash,
                            engine=engine,
                            budget=str(budget) if budget is not None else None,
                            git_rev=git_rev(),
                            run_id=run_id(),
                            wall_ms=wall_ms,
                        )
                    )
        return None

    with obs.span(
        "prove", program=program.name, nodes=len(plan.nodes)
    ) as sp:
        for index, frontier in enumerate(frontiers):
            obs.set_gauge("dag_frontier_size", len(frontier))
            work: list[_Work] = []
            for node_name in frontier:
                node = plan.node_named(node_name)
                pending, lemmas = _node_obligations(plan, node)
                work.extend(
                    collect(node_name, pending, node.conjectures, lemmas)
                )
            failure = discharge(work)
            if failure is not None:
                sp.set(ok=False, failed=failure.failed_node)
                return failure
            if journal is not None:
                frontier_key = f"{program_hash}:frontier:{index}"
                if journal.peek("prove.frontier", frontier_key) is None:
                    journal.append(
                        "prove.frontier", frontier_key, nodes=list(frontier)
                    )
        # Program-wide safety (no-abort) over the full invariant.
        everything = tuple(plan.invariants.values())
        failure = discharge(
            collect(NO_ABORT, _safety_obligations(plan), everything, ())
        )
        if failure is not None:
            sp.set(ok=False, failed=failure.failed_node)
            return failure
        total = hits + misses
        obs.set_gauge("ledger_hit_rate", hits / total if total else 1.0)
        obs.inc("ledger_hits", hits)
        obs.inc("ledger_misses", misses)
        ok = not unknown
        if journal_hits:
            sp.set(journal_hits=journal_hits)
        sp.set(ok=ok, ledger_hits=hits, queries=queries)
        return ProveReport(
            ok,
            program.name,
            frontiers,
            tuple(outcomes),
            hits,
            misses,
            queries,
            unknown=tuple(unknown),
        )


# --------------------------------------------------------------------- status


@dataclass(frozen=True)
class InvariantStatus:
    """One row of ``repro status``."""

    name: str
    proof: str  # the node that establishes it
    state: str  # "proven", "stale", or "unproven"
    entries: tuple[LedgerEntry, ...] = ()  # provenance, when proven


def status(plan: ProofPlan, ledger: Ledger) -> tuple[InvariantStatus, ...]:
    """Per-invariant ledger state for the plan's program.

    An invariant is **proven** when both its initiation and consecution
    entries are present under the current program hash; **stale** when
    the ledger holds entries for it recorded under a *different* program
    hash (the transition relation changed since); **unproven** otherwise.
    The program-wide no-abort obligations appear as a final pseudo-row
    when the program can abort.
    """
    program = plan.program
    program_hash = program_fingerprint(program)
    rows: list[InvariantStatus] = []
    historical: dict[str, bool] = {}
    for entry in ledger.entries():
        if entry.program == program.name and entry.program_hash != program_hash:
            historical[entry.invariant] = True

    def resolve(
        name: str, node_name: str, pending: list[Obligation],
        conjectures: Sequence[Conjecture], lemmas: Sequence[Conjecture],
    ) -> InvariantStatus:
        found: list[LedgerEntry] = []
        for obligation in pending:
            keys = keys_of(
                program,
                obligation,
                obligation_premises(obligation, conjectures, lemmas),
                program_hash=program_hash,
            )
            entry = ledger.proven(keys[0])
            if entry is None:
                state = "stale" if historical.get(name) else "unproven"
                return InvariantStatus(name, node_name, state)
            found.append(entry)
        return InvariantStatus(name, node_name, "proven", tuple(found))

    for node in plan.nodes:
        pending, lemmas = _node_obligations(plan, node)
        for conjecture in node.conjectures:
            mine = [o for o in pending if o.target == conjecture.name]
            rows.append(
                resolve(
                    conjecture.name, node.name, mine, node.conjectures, lemmas
                )
            )
    safeties = _safety_obligations(plan)
    if safeties:
        everything = tuple(plan.invariants.values())
        rows.append(resolve(NO_ABORT, NO_ABORT, safeties, everything, ()))
    return tuple(rows)
