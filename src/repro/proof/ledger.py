"""The persistent proven-lemma ledger.

A content-addressed store of *discharged proof obligations*, in the mold
of :class:`repro.solver.cache.DiskCache` but one level up: where the disk
cache memoizes raw solver calls, the ledger records that a named
invariant's initiation or consecution obligation was proven -- so a rerun
skips the obligation entirely, before any solver object is even built.

**Keys.** An entry is addressed by the SHA-256 of three fingerprints::

    (protocol hash, obligation hash, lemma-set hash)

* the **protocol hash** covers the vocabulary (sorted by name), the
  axioms, and the init/body/final commands -- editing the transition
  relation changes it, so stale entries simply stop matching;
* the **obligation hash** covers the obligation kind, the command it runs
  through, and the post-formula being established;
* the **lemma-set hash** covers the *premises* the obligation assumed
  (sibling conjectures of a mutual-induction group plus ``with``-lemmas,
  order-insensitively).  An obligation proven under one premise set is
  not a proof under another, so the premises are part of the address.

All formula fingerprints go through the order-deterministic printer
(:func:`repro.logic.printer.fingerprint`): the printer walks AST tuples
and never iterates a set, so keys are byte-identical across interpreter
processes regardless of ``PYTHONHASHSEED`` -- the same discipline the
disk cache gets from sorted symbol adoption.

**Durability.** Entries are JSON files named by their key digest, held
in a shared :class:`repro.store.ShardedStore` (atomic writes, sha256
sharding, advisory locking for corrupt-entry healing, retry with backoff
on transient I/O errors).  Corrupt, truncated, or stale-schema files
read as *unproven* and are deleted under the store lock, with a single
``repro.store`` logger warning per store -- a damaged ledger degrades to
re-proving, never to a wrong answer or a crash.

**Environment.** ``REPRO_LEDGER=0`` disables the ledger entirely;
``REPRO_LEDGER_DIR`` overrides the store location (default
``.repro-ledger/``).  Both are read at :func:`default_ledger` call time.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from .. import obs
from ..logic import syntax as s
from ..logic.printer import canonical_str, fingerprint
from ..store import ShardedStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.induction import Obligation
    from ..rml.ast import Program

#: default on-disk store location, relative to the working directory
DEFAULT_LEDGER_DIR = ".repro-ledger"

#: schema version; entries written under any other version read as unproven
LEDGER_FORMAT = 1


# ---------------------------------------------------------------- fingerprints


def program_fingerprint(program: "Program") -> str:
    """The protocol hash: vocabulary + axioms + transition relation.

    Deterministic by construction: symbols are sorted by name, everything
    else is rendered through ``str``/:func:`canonical_str`, which walk the
    AST's tuples in declaration order.  Any edit to the init, body, or
    final command changes this hash, which is how stale ledger entries
    are invalidated.
    """
    hasher = hashlib.sha256()
    vocab = program.vocab
    for sort in sorted(vocab.sorts, key=lambda x: x.name):
        hasher.update(f"sort {sort.name}\n".encode())
    for rel in sorted(vocab.relations, key=lambda x: x.name):
        args = ",".join(x.name for x in rel.arg_sorts)
        hasher.update(f"relation {rel.name}:{args}\n".encode())
    for func in sorted(vocab.functions, key=lambda x: x.name):
        args = ",".join(x.name for x in func.arg_sorts)
        hasher.update(f"function {func.name}:{args}->{func.sort.name}\n".encode())
    for axiom in program.axioms:
        hasher.update(
            f"axiom {axiom.name}: {canonical_str(axiom.formula)}\n".encode()
        )
    for label, command in (
        ("init", program.init),
        ("body", program.body),
        ("final", program.final),
    ):
        hasher.update(f"{label} {{ {command} }}\n".encode())
    return hasher.hexdigest()


def obligation_fingerprint(obligation: "Obligation") -> str:
    """The obligation hash: kind, command label, and post-formula."""
    text = (
        f"{obligation.kind}|{obligation.command_label}|"
        f"{canonical_str(obligation.post)}"
    )
    return hashlib.sha256(text.encode()).hexdigest()


def lemma_set_fingerprint(formulas: Iterable[s.Formula]) -> str:
    """The premise-set hash, insensitive to order and duplication."""
    rendered = sorted({canonical_str(formula) for formula in formulas})
    return hashlib.sha256("\n".join(rendered).encode()).hexdigest()


def ledger_key(
    program_hash: str, obligation_hash: str, lemma_hash: str
) -> str:
    """The content address of one discharged obligation."""
    return hashlib.sha256(
        f"{program_hash}:{obligation_hash}:{lemma_hash}".encode()
    ).hexdigest()


def git_rev() -> str | None:
    """The current git revision, best effort (provenance only)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def run_id() -> str | None:
    """The active trace run id, if tracing is on (provenance only)."""
    tracer = obs.active_tracer()
    return tracer.run_id if tracer is not None else None


# --------------------------------------------------------------------- entries


@dataclass(frozen=True)
class LedgerEntry:
    """Provenance of one discharged obligation.

    The identity fields (``program`` .. ``lemma_hash``) let ``repro
    status`` match entries to invariants and detect staleness; the rest
    records how the obligation was discharged.
    """

    program: str  # program/protocol name
    invariant: str  # conjecture name, or "<no-abort>" for safety
    kind: str  # "initiation", "safety", or "consecution"
    program_hash: str
    obligation_hash: str
    lemma_hash: str
    engine: str = "induction"  # which engine discharged it
    budget: str | None = None
    git_rev: str | None = None
    run_id: str | None = None
    wall_ms: float = 0.0
    created_unix: float = field(default_factory=time.time)

    @property
    def key(self) -> str:
        return ledger_key(self.program_hash, self.obligation_hash, self.lemma_hash)


class Ledger:
    """The persistent store of proven obligations.

    ``hits``/``misses`` count :meth:`proven` lookups; ``write_errors``
    counts failed :meth:`record` attempts (a read-only or full disk must
    never fail a prove run).
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self._store = ShardedStore(root, ".json")
        self.hits = 0
        self.misses = 0

    @property
    def write_errors(self) -> int:
        return self._store.write_errors

    def _path(self, key: str) -> str:
        return self._store.path_of(key)

    @staticmethod
    def _decode(payload: bytes, key: str) -> LedgerEntry | None:
        """The entry the bytes encode, or None when they fail validation."""
        try:
            document = json.loads(payload.decode("utf-8"))
            if document.get("format") != LEDGER_FORMAT:
                return None
            entry = LedgerEntry(**document["entry"])
            if entry.key != key:
                return None
        except Exception:
            return None
        return entry

    def proven(self, key: str) -> LedgerEntry | None:
        """The entry recorded under ``key``, or None (miss)."""
        payload = self._store.read(key)
        entry = None if payload is None else self._decode(payload, key)
        if payload is not None and entry is None:
            # Corrupt, truncated, stale-schema, or hand-edited bytes on
            # the lock-free read: re-validate under the store lock before
            # deleting -- a concurrent prove run may have just rewritten
            # the entry correctly.
            healed = self._store.heal(
                key,
                lambda raw: self._decode(raw, key) is not None,
                "is corrupt or has a stale schema; treated as unproven",
            )
            if healed is not None:
                entry = self._decode(healed, key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def record(self, entry: LedgerEntry) -> None:
        """Persist one discharged obligation (atomic, best effort)."""
        try:
            payload = json.dumps(
                {"format": LEDGER_FORMAT, "entry": asdict(entry)},
                indent=1,
                sort_keys=True,
            ).encode("utf-8")
        except (TypeError, ValueError):
            self._store.write_errors += 1
            return
        self._store.write(entry.key, payload)

    def entries(self) -> Iterator[LedgerEntry]:
        """Every readable entry in the store (``repro status`` scans this)."""
        for key in self._store.digests():
            entry = self.proven(key)
            if entry is not None:
                self.hits -= 1  # a scan is not a proof lookup
                yield entry

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._store)


# ----------------------------------------------------------------- environment


def ledger_enabled() -> bool:
    """``REPRO_LEDGER`` not falsy (read at call time)."""
    return os.environ.get("REPRO_LEDGER", "1").strip().lower() not in (
        "0",
        "false",
        "no",
    )


def ledger_dir() -> str:
    """``REPRO_LEDGER_DIR`` or the default ``.repro-ledger``."""
    return os.environ.get("REPRO_LEDGER_DIR", "").strip() or DEFAULT_LEDGER_DIR


def default_ledger(root: str | None = None) -> Ledger | None:
    """A ledger per the environment, or None when disabled."""
    if not ledger_enabled():
        return None
    return Ledger(root if root is not None else ledger_dir())


def keys_of(
    program: "Program",
    obligation: "Obligation",
    premises: Sequence[s.Formula] = (),
    program_hash: str | None = None,
) -> tuple[str, str, str, str]:
    """``(key, program_hash, obligation_hash, lemma_hash)`` for one obligation.

    ``premises`` are the formulas assumed beyond the axioms (sibling
    conjectures under mutual induction, plus proven ``with``-lemmas);
    initiation obligations assume nothing, so callers pass ``()`` there.
    Pass a precomputed ``program_hash`` to amortize it across a batch.
    """
    if program_hash is None:
        program_hash = program_fingerprint(program)
    obligation_hash = obligation_fingerprint(obligation)
    lemma_hash = lemma_set_fingerprint(premises)
    return (
        ledger_key(program_hash, obligation_hash, lemma_hash),
        program_hash,
        obligation_hash,
        lemma_hash,
    )
