"""The proof-dependency DAG.

A ``proof p proves i1, i2 with l1`` declaration makes ``p`` depend on
whichever proof establishes ``l1``: that lemma is assumed in every
pre-state of ``p``'s consecution obligations, so it must be discharged
first.  The edges of the DAG are exactly those assumptions -- declared
``with`` clauses plus lemma uses the engines discover at run time -- and
scheduling is a topological layering: each *frontier* is a set of proofs
whose prerequisites are all discharged, so its members can dispatch
concurrently through the solver pool.

Circular ``with`` assumptions are unsound (each proof would assume the
other's conclusion), so cycles are rejected *before* any solving, with
provenance: the diagnostic walks the cycle edge by edge and names the
``with``-reference that closes it.  The SCC machinery is shared with the
quantifier-alternation graph (:func:`repro.analysis.qag.tarjan_scc`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from ..analysis.diagnostics import Diagnostic, Diagnostics, Note
from ..analysis.qag import tarjan_scc, walk_cycle
from ..logic.lexer import Span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (rml imports us)
    from ..rml.ast import ProofDecl


@dataclass(frozen=True)
class ProofEdge:
    """``src`` assumes ``lemma``, which is established by ``dst``."""

    src: str
    dst: str
    lemma: str
    kind: str = "with"  # "with" (declared) or "discovered" (engine-found)
    span: Span | None = None

    @property
    def key(self) -> tuple:
        """Identity up to provenance (deduplicates parallel edges)."""
        return (self.src, self.dst, self.lemma, self.kind)

    def __str__(self) -> str:
        return f"{self.src} -> {self.dst} (lemma {self.lemma!r}, {self.kind})"


class CycleError(Exception):
    """Raised when a cyclic DAG is asked for a schedule."""

    def __init__(self, cycles: list[tuple[ProofEdge, ...]]) -> None:
        names = " -> ".join(
            [cycles[0][0].src] + [edge.dst for edge in cycles[0]]
        )
        super().__init__(f"proof-dependency cycle: {names}")
        self.cycles = cycles


@dataclass(frozen=True)
class ProofDag:
    """Proof names plus the lemma-assumption edges between them."""

    nodes: tuple[str, ...]
    edges: tuple[ProofEdge, ...]

    def with_edges(self, extra: Iterable[ProofEdge]) -> "ProofDag":
        """A copy with engine-discovered edges appended."""
        return ProofDag(self.nodes, self.edges + tuple(extra))

    def prerequisites(self, node: str) -> tuple[str, ...]:
        """The proofs ``node`` assumes lemmas from, in edge order."""
        seen: dict[str, None] = {}
        for edge in self.edges:
            if edge.src == node and edge.dst != node:
                seen.setdefault(edge.dst)
        return tuple(seen)

    def cycles(self) -> list[tuple[ProofEdge, ...]]:
        """One representative edge cycle per non-trivial SCC (plus self-loops).

        Deterministic: nodes and edges are visited in declaration order.
        The last edge of each returned cycle is the one that closes it.
        """
        unique: dict[tuple, ProofEdge] = {}
        for edge in self.edges:
            unique.setdefault(edge.key, edge)
        edges = list(unique.values())
        adjacency: dict[str, list[ProofEdge]] = {}
        for edge in edges:
            adjacency.setdefault(edge.src, []).append(edge)
        out: list[tuple[ProofEdge, ...]] = []
        for component in tarjan_scc(self.nodes, adjacency):
            members = set(component)
            if len(component) == 1:
                loops = [
                    e
                    for e in adjacency.get(component[0], ())
                    if e.dst == component[0]
                ]
                if loops:
                    out.append((loops[0],))
                continue
            cycle = walk_cycle(component[0], members, adjacency)
            if cycle:
                out.append(tuple(cycle))
        return out

    def frontiers(self) -> list[tuple[str, ...]]:
        """Topological layers: each layer's proofs have no pending deps.

        Layer ``k`` holds the proofs all of whose prerequisites sit in
        layers ``< k``; members of one layer are mutually independent and
        can be dispatched to the solver pool concurrently.  Raises
        :class:`CycleError` on a cyclic graph.
        """
        cycles = self.cycles()
        if cycles:
            raise CycleError(cycles)
        pending = {node: set(self.prerequisites(node)) for node in self.nodes}
        done: set[str] = set()
        layers: list[tuple[str, ...]] = []
        while pending:
            ready = tuple(
                node for node, deps in pending.items() if deps <= done
            )
            layers.append(ready)
            for node in ready:
                del pending[node]
            done.update(ready)
        return layers


def provers_of(proofs: Sequence["ProofDecl"]) -> dict[str, str]:
    """invariant name -> name of the (first) proof establishing it."""
    provers: dict[str, str] = {}
    for proof in proofs:
        for inv in proof.proves:
            provers.setdefault(inv, proof.name)
    return provers


def build_dag(proofs: Sequence["ProofDecl"]) -> ProofDag:
    """The declared DAG: one node per proof, one edge per ``with`` lemma.

    A ``with``-reference to an invariant no declared proof establishes
    contributes no edge; :func:`proof_dag_diagnostics` reports it as
    ``RML303`` instead (such invariants fall to the implicit main proof
    and cannot soundly be assumed).
    """
    provers = provers_of(proofs)
    edges: list[ProofEdge] = []
    for proof in proofs:
        spans = proof.use_spans or (None,) * len(proof.uses)
        for lemma, span in zip(proof.uses, spans):
            dst = provers.get(lemma)
            if dst is None:
                continue
            edges.append(ProofEdge(proof.name, dst, lemma, "with", span))
    return ProofDag(tuple(p.name for p in proofs), tuple(edges))


def cycle_diagnostics(
    dag: ProofDag, sink: Diagnostics | None = None
) -> tuple[Diagnostic, ...]:
    """One sourced ``RML304`` diagnostic per dependency cycle.

    The notes walk the cycle edge by edge; the final edge -- the
    ``with``-reference that closes the cycle back to its first proof --
    is called out explicitly so users know which assumption to cut.
    """
    sink = sink if sink is not None else Diagnostics()
    for cycle in dag.cycles():
        names = [cycle[0].src] + [edge.dst for edge in cycle]
        notes = []
        for edge in cycle[:-1]:
            notes.append(
                Note(
                    f"proof {edge.src!r} assumes {edge.lemma!r}, "
                    f"established by proof {edge.dst!r} ({edge.kind})",
                    edge.span,
                )
            )
        closing = cycle[-1]
        notes.append(
            Note(
                f"the 'with {closing.lemma}' reference in proof "
                f"{closing.src!r} closes the cycle back to {closing.dst!r}",
                closing.span,
            )
        )
        notes.append(
            Note(
                "circular 'with' assumptions are unsound: each proof would "
                "assume a conclusion that transitively depends on its own"
            )
        )
        span = next(
            (edge.span for edge in cycle if edge.span is not None), None
        )
        sink.emit(
            "RML304",
            "proof-dependency cycle through " + " -> ".join(names),
            span=span,
            notes=notes,
        )
    return sink.items
