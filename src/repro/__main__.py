"""Entry point: ``python -m repro``."""

import sys

from .cli import main

try:
    code = main()
    sys.stdout.flush()
except BrokenPipeError:
    # Downstream pipe reader (head, less quit early) closed stdout.
    # Conventional Unix behaviour is a silent death, not a traceback.
    sys.stderr.close()
    code = 128 + 13
sys.exit(code)
