"""Fault injection for solver worker processes.

The fault-tolerance claims of :mod:`repro.solver.dispatch` -- crashed
workers are retried, hung workers are killed on deadline, verdicts never
flip -- are only worth anything if they are *exercised*.  This module
injects faults into workers so chaos tests can assert that verification
verdicts under heavy fault rates are identical to fault-free runs.

A :class:`FaultPlan` gives independent probabilities for three fault
modes, drawn deterministically per ``(seed, query name, attempt)`` so runs
are reproducible and a retried attempt can draw a different outcome:

* ``crash`` -- the worker exits immediately via ``os._exit`` (simulates a
  segfault or OOM kill: no result, no exception, no cleanup);
* ``hang`` -- the worker sleeps for ``hang_seconds`` (simulates a
  grounding blow-up or livelock; the dispatch parent must SIGKILL it);
* ``slow`` -- the worker sleeps ``slow_seconds`` before solving (simulates
  the 1000x-slower-than-its-siblings query).

Plans come from the ``REPRO_FAULT`` environment variable
(``REPRO_FAULT=crash:0.2,hang:0.1,slow:0.3:1.5,seed:7``) or the
programmatic :func:`install_fault_plan` hook.  Faults only ever fire
inside forked worker processes (:func:`mark_worker` is called after the
fork): the dispatch parent and the in-process serial fallback are always
fault-free, which is what guarantees every query eventually gets a
fault-free attempt.

One fault mode targets the **main process** instead: ``kill9`` gives a
per-checkpoint probability that :func:`maybe_inject_main` SIGKILLs the
whole run.  The run journal (:mod:`repro.recovery.journal`) calls it
right after every durable append, so ``REPRO_FAULT=kill9:0.3,seed:N``
turns any verification into a crash-at-a-random-journal-boundary
experiment -- the chaos harness then resumes the run and asserts the
verdict is identical.  ``kill9`` never fires in workers (they have
``crash`` for that) and is deliberately excluded from worker fault
draws.
"""

from __future__ import annotations

import os
import random
import signal
import time
from dataclasses import dataclass

from .budget import warn_env

#: exit code used by injected crashes, distinctive in worker diagnostics
CRASH_EXIT_CODE = 86


@dataclass(frozen=True)
class FaultPlan:
    """Probabilities and parameters for injected worker faults."""

    crash: float = 0.0
    hang: float = 0.0
    slow: float = 0.0
    kill9: float = 0.0  # main-process SIGKILL per checkpoint, not a worker fault
    slow_seconds: float = 0.5
    hang_seconds: float = 3600.0
    seed: int = 0

    def decide(self, name: str, attempt: int) -> str | None:
        """The fault (if any) for this query attempt: deterministic in
        ``(seed, name, attempt)``."""
        rng = random.Random(f"{self.seed}:{name}:{attempt}")
        draw = rng.random()
        if draw < self.crash:
            return "crash"
        if draw < self.crash + self.hang:
            return "hang"
        if draw < self.crash + self.hang + self.slow:
            return "slow"
        return None


def parse_fault_spec(spec: str) -> FaultPlan | None:
    """Parse ``crash:0.2,hang:0.1,slow:0.3:1.5,seed:7`` into a plan.

    Returns None (and the caller warns) on malformed input.  ``slow`` takes
    an optional second field, the sleep in seconds; ``hang`` likewise.
    """
    fields: dict[str, float] = {}
    try:
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            pieces = part.split(":")
            key = pieces[0].strip()
            if key not in ("crash", "hang", "slow", "kill9", "seed"):
                return None
            if key == "seed":
                fields["seed"] = int(pieces[1])
                continue
            probability = float(pieces[1])
            if not 0.0 <= probability <= 1.0:
                return None
            fields[key] = probability
            if len(pieces) > 2:
                duration = float(pieces[2])
                if duration < 0:
                    return None
                fields[f"{key}_seconds"] = duration
            if len(pieces) > 3:
                return None
    except (ValueError, IndexError):
        return None
    if not fields:
        return None
    kwargs = {
        key: fields[key]
        for key in (
            "crash",
            "hang",
            "slow",
            "kill9",
            "slow_seconds",
            "hang_seconds",
        )
        if key in fields
    }
    plan = FaultPlan(seed=int(fields.get("seed", 0)), **kwargs)
    # kill9 draws independently (main process, not worker attempts), so it
    # is not part of the worker-fault probability partition.
    if plan.crash + plan.hang + plan.slow > 1.0:
        return None
    return plan


_installed: FaultPlan | None = None
_installed_explicitly = False
_in_worker = False


def install_fault_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Programmatic hook: set (or clear with None) the active fault plan.

    Returns the previously installed plan.  An installed plan takes
    precedence over ``REPRO_FAULT``; workers inherit it through fork.
    Passing None re-enables the environment variable -- use
    ``install_fault_plan(FaultPlan())`` for a hard "no faults".
    """
    global _installed, _installed_explicitly
    old = _installed if _installed_explicitly else None
    _installed = plan
    _installed_explicitly = plan is not None
    return old


def active_plan() -> FaultPlan | None:
    """The plan faults are drawn from: installed hook, else ``REPRO_FAULT``."""
    if _installed_explicitly:
        return _installed if _installed and not _plan_is_noop(_installed) else None
    spec = os.environ.get("REPRO_FAULT", "").strip()
    if not spec or spec in ("0", "off", "none"):
        return None
    plan = parse_fault_spec(spec)
    if plan is None:
        warn_env("REPRO_FAULT", spec, "expected e.g. crash:0.2,hang:0.1,seed:7")
        # Do not re-warn on every worker spawn.
        os.environ["REPRO_FAULT"] = ""
        return None
    return plan


def _plan_is_noop(plan: FaultPlan) -> bool:
    return plan.crash == plan.hang == plan.slow == plan.kill9 == 0.0


def mark_worker() -> None:
    """Called in a freshly forked worker: arms fault injection there."""
    global _in_worker
    _in_worker = True


def in_worker() -> bool:
    return _in_worker


def maybe_inject(name: str, attempt: int) -> None:
    """Inject the planned fault (if any) for this query attempt.

    A no-op outside worker processes: the dispatch parent and the serial
    fallback must stay fault-free so every query can eventually complete.
    """
    if not _in_worker:
        return
    plan = active_plan()
    if plan is None:
        return
    fault = plan.decide(name, attempt)
    if fault == "crash":
        os._exit(CRASH_EXIT_CODE)
    elif fault == "hang":
        time.sleep(plan.hang_seconds)
    elif fault == "slow":
        time.sleep(plan.slow_seconds)


def maybe_inject_main(name: str) -> None:
    """SIGKILL the *main* process with probability ``kill9`` (chaos only).

    Called at durability checkpoints (journal appends).  Deterministic in
    ``(seed, name)`` so a given seed kills a run at the same checkpoint
    every time -- and, crucially, the *resumed* run (which skips the
    journaled work and so never revisits that checkpoint's name) runs to
    completion.  A no-op inside workers: they have ``crash``.
    """
    if _in_worker:
        return
    plan = active_plan()
    if plan is None or plan.kill9 <= 0.0:
        return
    rng = random.Random(f"{plan.seed}:kill9:{name}")
    if rng.random() < plan.kill9:
        os.kill(os.getpid(), signal.SIGKILL)
