"""Memoization of EPR query results, in memory and on disk.

:class:`PreparedEpr.solve` consults the process-global :class:`QueryCache`
before running its CEGAR loop.  Keys are content hashes of the *grounded*
problem -- the SAT clause database as of grounding (variable count, root
units, problem clauses), the registered lazy universal blocks, the working
vocabulary -- paired with the assumption literals of the particular solve.
Everything downstream of that pair is deterministic, so a hit returns
exactly what a re-solve would have computed, minus the solving.

This is what lets Houdini re-checks and UPDR frame pushes that repeat an
earlier obligation be answered without re-solving.  The cache is enabled
by default and bounded with **LRU eviction** (a long UPDR run cycles
through thousands of one-off obligations; FIFO would evict the hot
recurring ones).  ``REPRO_CACHE_SIZE`` overrides the default capacity,
``REPRO_CACHE=0`` disables caching entirely, e.g. when benchmarking raw
solver performance; both are read at :func:`query_cache` call time, so an
environment change after import (or a test's ``monkeypatch.setenv``) takes
effect on the next query.  UNKNOWN results (budget exhaustion, worker
crashes) are never stored: they prove nothing, and a retry with a larger
budget must actually re-solve.

Two tiers, repository-style (index in front of a store):

* the in-memory :class:`QueryCache` is the index -- bounded, LRU,
  process-local;
* the optional :class:`DiskCache` underneath is a **content-addressed
  store** shared across processes and runs.  ``REPRO_CACHE_PERSIST=1``
  enables it; entries live under ``REPRO_CACHE_DIR`` (default
  ``.repro-cache/``) in shards keyed by the SHA-256 of the query
  fingerprint.  Lookups fetch through: a memory miss consults the disk
  and promotes hits into memory.  The on-disk mechanics -- atomic
  writes, sha256 sharding, corrupt-entry healing under the store lock,
  retry with backoff on transient I/O errors -- live in the shared
  :class:`repro.store.ShardedStore`; a damaged store degrades to
  re-solving, never to a wrong answer or a crash.

Long-lived pool workers (:mod:`repro.solver.dispatch`) inherit the
parent's in-memory entries at fork time and share the disk store live.
The parent ships its :func:`cache_snapshot` with every task;
:func:`sync_worker_cache` lets a worker detect that the parent replaced
or disabled its cache (``install_cache`` bumps a generation counter) and
mirror that locally, so ``install_cache(None)`` in the parent really does
make every worker re-solve.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable

from ..obs import profile
from ..store import ShardedStore
from .budget import _env_int

if TYPE_CHECKING:  # pragma: no cover
    from .epr import EprResult

DEFAULT_CAPACITY = 4096

#: default on-disk store location, relative to the working directory
DEFAULT_CACHE_DIR = ".repro-cache"

#: serialization format version; bump to invalidate old on-disk entries
DISK_FORMAT = 1


class DiskCache:
    """A content-addressed, crash- and corruption-tolerant result store.

    Entries are pickled ``(DISK_FORMAT, key, EprResult)`` triples named by
    the SHA-256 of the key's repr, held in a :class:`ShardedStore`.  The
    stored key is verified on load, so a (vanishingly unlikely) digest
    collision or a hand-edited file reads as a miss rather than a wrong
    answer.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self._store = ShardedStore(root, ".pkl")
        self.hits = 0
        self.misses = 0

    @property
    def write_errors(self) -> int:
        return self._store.write_errors

    @staticmethod
    def _digest(key: Hashable) -> str:
        return hashlib.sha256(repr(key).encode()).hexdigest()

    def _path(self, key: Hashable) -> str:
        return self._store.path_of(self._digest(key))

    def _decode(self, payload: bytes, key: Hashable) -> "EprResult | None":
        """The stored result, or None when the bytes fail validation."""
        try:
            fmt, stored_key, result = pickle.loads(payload)
            if fmt != DISK_FORMAT or stored_key != key:
                return None
        except Exception:
            return None
        return result

    def lookup(self, key: Hashable) -> "EprResult | None":
        digest = self._digest(key)
        payload = self._store.read(digest)
        result = None if payload is None else self._decode(payload, key)
        if payload is not None and result is None:
            # Bad bytes on the lock-free read: re-validate under the store
            # lock before deleting, in case a concurrent writer repaired
            # the entry between our read and now.
            healed = self._store.heal(
                digest,
                lambda raw: self._decode(raw, key) is not None,
                "is corrupt, truncated, or stale-format; treated as a miss",
            )
            if healed is not None:
                result = self._decode(healed, key)
        if result is None:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, key: Hashable, result: "EprResult") -> None:
        try:
            payload = pickle.dumps((DISK_FORMAT, key, result))
        except (pickle.PicklingError, TypeError):
            self._store.write_errors += 1
            return
        self._store.write(self._digest(key), payload)

    def __len__(self) -> int:
        return len(self._store)


class QueryCache:
    """A bounded LRU map from query fingerprints to :class:`EprResult`.

    ``hits``/``misses``/``evictions`` are surfaced through
    :class:`~repro.solver.stats.SolverStats` (``--stats``).  With a
    ``disk`` store attached, memory misses fetch through it (disk hits
    count as hits and are promoted into memory) and stores write through.
    """

    def __init__(
        self, capacity: int = DEFAULT_CAPACITY, disk: DiskCache | None = None
    ) -> None:
        self.capacity = capacity
        self.disk = disk
        self._entries: "OrderedDict[Hashable, EprResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, key: Hashable) -> "EprResult | None":
        # The "cache" profiling phase lives here (not in the EPR layer)
        # so in-memory and disk fetch-through lookups are timed alike
        # without ever nesting two cache phases.
        with profile.phase("cache"):
            return self._lookup(key)

    def _lookup(self, key: Hashable) -> "EprResult | None":
        result = self._entries.get(key)
        if result is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return result
        if self.disk is not None:
            result = self.disk.lookup(key)
            if result is not None:
                self._insert(key, result)  # promote for cheap re-hits
                self.hits += 1
                return result
        self.misses += 1
        return None

    def store(self, key: Hashable, result: "EprResult") -> None:
        if getattr(result, "unknown", False):
            return  # UNKNOWN proves nothing; a retry must re-solve
        with profile.phase("cache"):
            self._insert(key, result)
            if self.disk is not None:
                self.disk.store(key, result)

    def _insert(self, key: Hashable, result: "EprResult") -> None:
        if key in self._entries:
            # Overwrite, don't keep the stale entry: a re-solve of the
            # same fingerprint carries fresher statistics/model data, and
            # recency is bumped either way.
            self._entries[key] = result
            self._entries.move_to_end(key)
            return
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = result

    @property
    def disk_hits(self) -> int:
        return self.disk.hits if self.disk is not None else 0

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)


_cache: QueryCache | None = None
_installed = False
#: bumped whenever the process-global cache object is replaced; shipped to
#: pool workers so they can mirror parent-side install_cache calls.
_generation = 0


def _disabled_by_env() -> bool:
    """``REPRO_CACHE=0`` (read at call time, not import time)."""
    return os.environ.get("REPRO_CACHE", "1").strip().lower() in (
        "0",
        "false",
        "no",
    )


def _env_capacity() -> int:
    value = _env_int("REPRO_CACHE_SIZE")
    return value if value is not None else DEFAULT_CAPACITY


def persistence_enabled() -> bool:
    """``REPRO_CACHE_PERSIST`` truthy (read at call time)."""
    return os.environ.get("REPRO_CACHE_PERSIST", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


def cache_dir() -> str:
    """The on-disk store location: ``REPRO_CACHE_DIR`` or ``.repro-cache``."""
    return os.environ.get("REPRO_CACHE_DIR", "").strip() or DEFAULT_CACHE_DIR


def _build_from_env() -> QueryCache:
    disk = DiskCache(cache_dir()) if persistence_enabled() else None
    return QueryCache(capacity=_env_capacity(), disk=disk)


def query_cache(refresh: bool = False) -> QueryCache | None:
    """The process-global cache, or None when caching is disabled.

    ``refresh=True`` discards the current cache and rebuilds it from the
    environment (used by tests exercising ``REPRO_CACHE_SIZE`` /
    ``REPRO_CACHE_DIR`` / ``REPRO_CACHE_PERSIST``).
    """
    global _cache, _installed, _generation
    if _disabled_by_env():
        return None
    if refresh or not _installed:
        _cache = _build_from_env()
        _installed = True
        _generation += 1
    return _cache


def install_cache(cache: QueryCache | None) -> QueryCache | None:
    """Replace the process-global cache (None disables); returns the old one.

    Tests use this to isolate cache state; ``REPRO_CACHE=0`` still wins.
    """
    global _cache, _installed, _generation
    old = _cache
    _cache = cache
    _installed = True
    _generation += 1
    return old


# ------------------------------------------------- pool-worker mirroring


def cache_snapshot() -> tuple[int, tuple[int, str | None] | None]:
    """``(generation, config)`` -- the parent's cache state, shipped with
    every dispatch task so long-lived workers can follow along.

    ``config`` is None when caching is disabled, else ``(capacity,
    disk_root)`` describing the parent's cache.  The *configuration*
    travels explicitly (rather than "rebuild from the environment")
    because a pool worker's environment is frozen at fork time -- a
    ``REPRO_CACHE_DIR`` set in the parent afterwards would never reach it.
    """
    cache = query_cache()
    if cache is None:
        return _generation, None
    disk_root = cache.disk.root if cache.disk is not None else None
    return _generation, (cache.capacity, disk_root)


def sync_worker_cache(
    snapshot: tuple[int, tuple[int, str | None] | None],
) -> None:
    """Mirror the parent's cache state inside a long-lived pool worker.

    Workers fork with the parent's entries; as long as the parent keeps
    the same cache object (generation unchanged) the worker keeps its
    inherited/accumulated entries.  When the parent swapped or disabled
    its cache (``install_cache``), the worker rebuilds to the shipped
    configuration (or disables) so e.g. ``install_cache(None)`` really
    forces re-solves everywhere.  In-memory entry *contents* are not
    synchronized -- keys are content hashes, so any entry anywhere is
    valid; the disk tier is what shares results across processes.
    """
    global _cache, _installed, _generation
    generation, config = snapshot
    if generation == _generation:
        return
    _generation = generation
    _installed = True
    if config is None:
        _cache = None
    else:
        capacity, disk_root = config
        disk = DiskCache(disk_root) if disk_root is not None else None
        _cache = QueryCache(capacity=capacity, disk=disk)
