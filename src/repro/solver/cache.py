"""Memoization of EPR query results.

:class:`PreparedEpr.solve` consults the process-global :class:`QueryCache`
before running its CEGAR loop.  Keys are content hashes of the *grounded*
problem -- the SAT clause database as of grounding (variable count, root
units, problem clauses), the registered lazy universal blocks, the working
vocabulary -- paired with the assumption literals of the particular solve.
Everything downstream of that pair is deterministic, so a hit returns
exactly what a re-solve would have computed, minus the solving.

This is what lets Houdini re-checks and UPDR frame pushes that repeat an
earlier obligation be answered without re-solving.  The cache is enabled
by default and bounded with **LRU eviction** (a long UPDR run cycles
through thousands of one-off obligations; FIFO would evict the hot
recurring ones).  ``REPRO_CACHE_SIZE`` overrides the default capacity,
``REPRO_CACHE=0`` disables caching entirely, e.g. when benchmarking raw
solver performance.  UNKNOWN results (budget exhaustion, worker crashes)
are never stored: they prove nothing, and a retry with a larger budget
must actually re-solve.  Worker processes forked by
:mod:`repro.solver.dispatch` inherit the parent's entries at fork time;
entries they add are not propagated back.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import TYPE_CHECKING, Hashable

from .budget import _env_int

if TYPE_CHECKING:  # pragma: no cover
    from .epr import EprResult

DEFAULT_CAPACITY = 4096


class QueryCache:
    """A bounded LRU map from query fingerprints to :class:`EprResult`.

    ``hits``/``misses``/``evictions`` are surfaced through
    :class:`~repro.solver.stats.SolverStats` (``--stats``).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, EprResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, key: Hashable) -> "EprResult | None":
        result = self._entries.get(key)
        if result is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return result

    def store(self, key: Hashable, result: "EprResult") -> None:
        if getattr(result, "unknown", False):
            return  # UNKNOWN proves nothing; a retry must re-solve
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        while len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[key] = result

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)


_cache: QueryCache | None = None
_installed = False
_disabled_by_env = os.environ.get("REPRO_CACHE", "1") in ("0", "false", "no")


def _env_capacity() -> int:
    value = _env_int("REPRO_CACHE_SIZE")
    return value if value is not None else DEFAULT_CAPACITY


def query_cache(refresh: bool = False) -> QueryCache | None:
    """The process-global cache, or None when caching is disabled.

    ``refresh=True`` discards the current cache and rebuilds it from the
    environment (used by tests exercising ``REPRO_CACHE_SIZE``).
    """
    global _cache, _installed
    if _disabled_by_env:
        return None
    if refresh or not _installed:
        _cache = QueryCache(capacity=_env_capacity())
        _installed = True
    return _cache


def install_cache(cache: QueryCache | None) -> QueryCache | None:
    """Replace the process-global cache (None disables); returns the old one.

    Tests use this to isolate cache state; ``REPRO_CACHE=0`` still wins.
    """
    global _cache, _installed
    old = _cache
    _cache = cache
    _installed = True
    return old
