"""Grounding for EPR with stratified functions.

Satisfiability of an ``exists*forall*`` formula over a vocabulary with
stratified functions reduces to propositional satisfiability (Section 3.3 of
the paper): after skolemizing the existentials into fresh constants, the set
of ground terms is finite -- stratification means functions can only build
terms "downward" through the sort order, so the closure of the constants
under function application terminates.  Instantiating every universal
quantifier over that finite universe yields an equisatisfiable ground
formula, and the finite model property holds with the universe as domain
bound.

This module computes the ground-term universe and the exhaustive
instantiation.  The equality theory over ground terms lives in
:mod:`repro.solver.equality`.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Mapping, Sequence

from .. import obs
from ..logic import syntax as s
from ..logic.sorts import FuncDecl, Sort, StratificationError, Vocabulary
from ..logic.subst import substitute
from ..obs import profile
from ..recovery import heartbeat
from .budget import BudgetMeter


class GroundingExplosion(Exception):
    """Raised when the ground universe or instantiation exceeds safety caps."""


def ground_universe(
    vocab: Vocabulary,
    extra_constants: Sequence[FuncDecl] = (),
    max_terms_per_sort: int = 2000,
    meter: BudgetMeter | None = None,
) -> dict[Sort, list[s.Term]]:
    """The finite set of ground terms of each sort.

    Starts from the vocabulary's constants plus ``extra_constants`` (Skolem
    constants of the query), adds one anonymous constant to any otherwise
    empty sort (domains are non-empty), and closes under the proper function
    symbols following the stratification order from the top sorts down.

    ``meter`` adds cooperative budget checks to the closure loop (wall
    deadline via :meth:`BudgetMeter.check_deadline`); the hard
    ``max_terms_per_sort`` cap applies regardless.
    """
    with profile.phase("ground"):
        return _ground_universe(vocab, extra_constants, max_terms_per_sort, meter)


def _ground_universe(
    vocab: Vocabulary,
    extra_constants: Sequence[FuncDecl],
    max_terms_per_sort: int,
    meter: BudgetMeter | None,
) -> dict[Sort, list[s.Term]]:
    vocab.check_stratified()
    constants = list(vocab.constants()) + [c for c in extra_constants if c.is_constant]
    universe: dict[Sort, list[s.Term]] = {sort: [] for sort in vocab.sorts}
    for const in constants:
        universe[const.sort].append(s.App(const, ()))
    for sort in vocab.sorts:
        if not universe[sort]:
            universe[sort].append(s.App(FuncDecl(f"default_{sort.name}", (), sort), ()))
    # stratification_order lists result sorts before argument sorts, so walk
    # it from the top (argument) end down: by the time we reach a sort, the
    # universes of all sorts above it are complete.
    order = vocab.stratification_order()
    for sort in reversed(order):
        for func in vocab.proper_functions():
            if func.sort != sort:
                continue
            arg_spaces = [universe[arg_sort] for arg_sort in func.arg_sorts]
            for args in itertools.product(*arg_spaces):
                universe[sort].append(s.App(func, tuple(args)))
                if len(universe[sort]) > max_terms_per_sort:
                    raise GroundingExplosion(
                        f"sort {sort.name!r} exceeds {max_terms_per_sort} ground terms"
                    )
                if meter is not None and len(universe[sort]) % 256 == 0:
                    meter.check_deadline()
    if obs.enabled():
        obs.point(
            "grounding.universe",
            terms=sum(len(terms) for terms in universe.values()),
            sorts=len(universe),
        )
    return universe


def universe_size(universe: Mapping[Sort, list[s.Term]]) -> int:
    return sum(len(terms) for terms in universe.values())


def instantiate_universals(
    formula: s.Formula,
    universe: Mapping[Sort, list[s.Term]],
    max_instances: int = 500_000,
) -> Iterator[s.Formula]:
    """All ground instances of a closed ``forall* QF`` (or ground) formula.

    The input is the output of skolemization: either quantifier free or a
    single block of universal quantifiers over a QF matrix.  Before
    enumerating, the block is *miniscoped*: ``forall x. (p & q)`` splits into
    ``forall x. p`` and ``forall x. q``, and each conjunct keeps only the
    variables it actually mentions.  Axioms are conjunctions of small
    universal clauses, so this turns one cross product over the union of all
    their variables into several small ones.
    """
    if s.free_vars(formula):
        raise ValueError(f"formula is not closed: {formula}")
    for vars_, matrix in _miniscope(formula):
        if any(isinstance(sub, (s.Forall, s.Exists)) for sub in _subformulas(matrix)):
            raise ValueError("expected a single universal block over a QF matrix")
        domains = [universe[var.sort] for var in vars_]
        count = 1
        for domain in domains:
            count *= len(domain)
        if count > max_instances:
            raise GroundingExplosion(
                f"universal instantiation would create {count} instances"
            )
        if not vars_:
            yield matrix
            continue
        for combo in itertools.product(*domains):
            heartbeat.beat()  # large products must still look alive
            yield substitute(matrix, dict(zip(vars_, combo)))


def _miniscope(formula: s.Formula) -> Iterator[tuple[tuple[s.Var, ...], s.Formula]]:
    """Yield (variables, matrix) pairs covering ``formula`` conjunctively."""
    if isinstance(formula, s.And):
        for arg in formula.args:
            yield from _miniscope(arg)
        return
    if isinstance(formula, s.Forall):
        inner_vars = formula.vars
        for vars_, matrix in _miniscope(formula.body):
            used = s.free_vars(matrix)
            outer = tuple(v for v in inner_vars if v in used)
            yield outer + vars_, matrix
        return
    yield (), formula


def _subformulas(formula: s.Formula) -> Iterator[s.Formula]:
    yield formula
    if isinstance(formula, s.Not):
        yield from _subformulas(formula.arg)
    elif isinstance(formula, (s.And, s.Or)):
        for arg in formula.args:
            yield from _subformulas(arg)
    elif isinstance(formula, (s.Implies, s.Iff)):
        yield from _subformulas(formula.lhs)
        yield from _subformulas(formula.rhs)
    elif isinstance(formula, (s.Forall, s.Exists)):
        yield from _subformulas(formula.body)


def check_universe_closed(
    vocab: Vocabulary, universe: Mapping[Sort, list[s.Term]]
) -> None:
    """Sanity check: the universe is closed under every proper function.

    Raises :class:`StratificationError`-adjacent assertion failures early
    rather than producing silently incomplete instantiation.
    """
    term_sets = {sort: set(terms) for sort, terms in universe.items()}
    for func in vocab.proper_functions():
        for args in itertools.product(*(universe[arg] for arg in func.arg_sorts)):
            if s.App(func, tuple(args)) not in term_sets[func.sort]:
                raise StratificationError(
                    f"universe not closed under {func.name!r}"
                )
