"""Parallel dispatch of independent EPR queries.

Bounded model checking solves one query per unrolling depth, Houdini one
per candidate conjecture, UPDR one per clause-push attempt -- all mutually
independent.  This module fans such batches across worker processes.

A :class:`Query` is a self-contained description of one
:class:`~repro.solver.epr.EprSolver` instance -- vocabulary, constraints,
solver options -- plus the list of tracked-constraint subsets to solve it
under.  :func:`solve_queries` runs a batch either in-process (``jobs <=
1``, the default) or on a ``multiprocessing`` fork pool.  Workers rebuild
the solver from the description, so only plain syntax-tree dataclasses
cross the process boundary; results come back as picklable
:class:`~repro.solver.epr.EprResult` values, models included.

Worker count resolution: the explicit ``jobs`` argument wins, then the
``REPRO_JOBS`` environment variable, then 1 (serial).  Serial and parallel
runs return identical answers: workers run the same deterministic solver
code, and each forked worker inherits the parent's query cache as of the
fork.  Platforms without the ``fork`` start method fall back to serial
execution rather than paying spawn-and-reimport per query.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Sequence

from ..logic import syntax as s
from ..logic.sorts import Vocabulary
from .epr import EprResult, EprSolver
from .stats import SolverStats


def resolve_jobs(jobs: int | None = None) -> int:
    """The worker count to use: argument, else ``REPRO_JOBS``, else 1."""
    if jobs is not None:
        return max(1, jobs)
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 1


@dataclass(frozen=True)
class Query:
    """One solver instance and the subsets of tracked constraints to solve.

    ``solve_sets`` entries are frozensets of tracked-constraint names, or
    None for "all tracked constraints enabled" -- the same contract as
    :meth:`PreparedEpr.solve`.  A query with ``n`` solve sets yields ``n``
    results, all sharing one grounding.
    """

    name: str
    vocab: Vocabulary
    constraints: tuple[tuple[str, s.Formula, bool], ...]
    solve_sets: tuple[frozenset[str] | None, ...] = (None,)
    exclusive_tracked: bool = False
    canonical_models: bool = False
    eager_threshold: int = 3000


def query_of(
    solver: EprSolver,
    solve_sets: Sequence[frozenset[str] | None] = (None,),
    name: str = "query",
) -> Query:
    """Snapshot an :class:`EprSolver`'s constraints into a :class:`Query`."""
    return Query(
        name=name,
        vocab=solver.vocab,
        constraints=tuple(
            (c.name, c.formula, c.tracked) for c in solver._constraints
        ),
        solve_sets=tuple(solve_sets),
        exclusive_tracked=solver.exclusive_tracked,
        canonical_models=solver.canonical_models,
        eager_threshold=solver.eager_threshold,
    )


def _run_query(query: Query) -> list[EprResult]:
    """Rebuild and solve one query (runs in a worker or in-process)."""
    solver = EprSolver(
        query.vocab,
        eager_threshold=query.eager_threshold,
        exclusive_tracked=query.exclusive_tracked,
        canonical_models=query.canonical_models,
    )
    for name, formula, tracked in query.constraints:
        solver.add(formula, name=name, track=tracked)
    prepared = solver.prepare()
    return [
        prepared.solve(enabled if enabled is None else set(enabled))
        for enabled in query.solve_sets
    ]


def _fork_context() -> multiprocessing.context.BaseContext | None:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def solve_queries(
    queries: Sequence[Query],
    jobs: int | None = None,
    stats: SolverStats | None = None,
) -> list[list[EprResult]]:
    """Solve a batch of independent queries, one result list per query."""
    jobs = resolve_jobs(jobs)
    workers = min(jobs, len(queries))
    context = _fork_context() if workers > 1 else None
    if context is None or workers <= 1:
        batches = [_run_query(query) for query in queries]
        dispatched = False
    else:
        with context.Pool(workers) as pool:
            batches = pool.map(_run_query, queries, chunksize=1)
        dispatched = True
    if stats is not None:
        for batch in batches:
            for result in batch:
                stats.record(
                    result.statistics,
                    satisfiable=result.satisfiable,
                    cached="cache_hits" in result.statistics,
                    dispatched=dispatched,
                )
    return batches
