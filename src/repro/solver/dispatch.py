"""Parallel, fault-tolerant dispatch of independent EPR queries.

Bounded model checking solves one query per unrolling depth, Houdini one
per candidate chunk, UPDR one per clause-push attempt -- all mutually
independent.  This module fans such batches across a **persistent pool of
worker processes** and keeps the batch alive when individual workers
misbehave.

A :class:`Query` is a self-contained description of one
:class:`~repro.solver.epr.EprSolver` instance -- vocabulary, constraints,
solver options, resource :class:`~repro.solver.budget.Budget` -- plus the
list of tracked-constraint subsets to solve it under.
:func:`solve_queries` runs a batch either in-process (``jobs <= 1``, the
default) or on the pool.  Workers rebuild the solver from the
description, ground it once, and answer every solve set of the query by
**assumption-literal switching** on the shared clause database (the
selector machinery of :class:`~repro.solver.epr.PreparedEpr` over
:mod:`repro.solver.sat`); results come back as picklable
:class:`~repro.solver.epr.EprResult` values, models included.

Pool architecture (the fix for the fork-per-query regression, where every
attempt paid fork + interpreter copy-on-write + module state + a fresh
grounding of everything the worker had already seen):

* workers are forked **once per process run** (lazily, on the first
  parallel batch) and live across ``solve_queries`` calls; the pool is
  process-global and each batch borrows up to ``jobs`` workers from it;
* the parent acts as the dealer of a shared work queue: it feeds one
  task at a time to each idle worker over a per-worker pipe, so a slow
  query never blocks its siblings and fault attribution is exact;
* tasks ship only the query description plus three tiny pieces of parent
  state a long-lived worker cannot inherit after the fork: the active
  fault plan, the tracing identity (run ID + clock origin), and the
  query-cache generation (:func:`repro.solver.cache.cache_snapshot`);
* workers fork with the parent's warm in-memory query cache and share
  the disk-backed content-addressed store live, so one worker's solve is
  every other worker's (and every later run's) cache hit;
* trace spans are buffered per task (:func:`repro.obs.enter_worker`) and
  shipped home **per obligation** with each result -- not at process
  exit, which a long-lived worker never reaches mid-run.

Fault tolerance (the parent never trusts a worker):

* each task gets an **external deadline** derived from its query's wall
  budget; a worker still running past it is SIGKILLed (cooperative budget
  checks inside the worker normally answer first -- the external deadline
  is the backstop for hung groundings and injected hangs);
* a worker that dies without sending a result (segfault, OOM kill,
  injected crash) is detected by EOF on its result pipe;
* crashed and killed workers are **replaced** (a fresh fork) while work
  remains, and their tasks are retried up to ``retries`` times with
  exponentially escalated budgets, then finished by an in-process serial
  fallback (fault-free by construction: :mod:`repro.solver.faults` only
  fires inside workers) -- or reported as typed UNKNOWNs when
  ``fallback=False``;
* after repeated crashes the batch's concurrency limit is halved (and
  dead workers stop being replaced), so a poisoned environment degrades
  to serial execution instead of thrashing;
* workers apply ``resource.setrlimit`` for the budget's RSS cap around
  each task and convert ``MemoryError`` into an UNKNOWN(MEMORY) answer.

Worker count resolution: the explicit ``jobs`` argument wins, then the
``REPRO_JOBS`` environment variable (malformed values are warned about on
stderr, not silently ignored), then 1 (serial).  Serial and parallel runs
return identical conclusive answers: workers run the same deterministic
solver code.  Platforms without the ``fork`` start method fall back to
serial execution rather than paying spawn-and-reimport per worker.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.connection
import os
import signal
import time
from dataclasses import dataclass, replace
from typing import Sequence

from .. import obs
from ..obs import profile
from ..obs.metrics import MetricsRegistry, install_metrics
from ..logic import syntax as s
from ..logic.sorts import Vocabulary
from ..recovery import heartbeat
from . import cache as cache_mod
from . import faults
from .budget import Budget, BudgetExceeded, FailureReason, resolve_retries, warn_env
from .epr import EprResult, EprSolver, unknown_result
from .grounding import GroundingExplosion
from .stats import SolverStats

#: grace multiplier/offset over the cooperative wall budget before the
#: parent declares a worker hung: solver rebuild + pickling happen inside
#: the window, and cooperative checks need a chance to fire.
_DEADLINE_FACTOR = 2.0
_DEADLINE_GRACE = 1.0

#: cumulative crash/kill count at which a batch's concurrency is first halved.
_SHRINK_THRESHOLD = 3


def resolve_jobs(jobs: int | None = None) -> int:
    """The worker count to use: argument, else ``REPRO_JOBS``, else 1."""
    if jobs is not None:
        return max(1, jobs)
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warn_env("REPRO_JOBS", env, "expected a positive integer")
    return 1


@dataclass(frozen=True)
class Query:
    """One solver instance and the subsets of tracked constraints to solve.

    ``solve_sets`` entries are frozensets of tracked-constraint names, or
    None for "all tracked constraints enabled" -- the same contract as
    :meth:`PreparedEpr.solve`.  A query with ``n`` solve sets yields ``n``
    results, all sharing one grounding: the worker grounds once and flips
    assumption literals between solves.  ``budget`` bounds the whole query
    (grounding plus every solve), both cooperatively inside the solver and
    externally by the dispatch parent.
    """

    name: str
    vocab: Vocabulary
    constraints: tuple[tuple[str, s.Formula, bool], ...]
    solve_sets: tuple[frozenset[str] | None, ...] = (None,)
    exclusive_tracked: bool = False
    canonical_models: bool = False
    eager_threshold: int = 3000
    budget: Budget | None = None


def query_of(
    solver: EprSolver,
    solve_sets: Sequence[frozenset[str] | None] = (None,),
    name: str = "query",
) -> Query:
    """Snapshot an :class:`EprSolver`'s constraints into a :class:`Query`."""
    return Query(
        name=name,
        vocab=solver.vocab,
        constraints=tuple(
            (c.name, c.formula, c.tracked) for c in solver._constraints
        ),
        solve_sets=tuple(solve_sets),
        exclusive_tracked=solver.exclusive_tracked,
        canonical_models=solver.canonical_models,
        eager_threshold=solver.eager_threshold,
        budget=solver.budget,
    )


def _unknown_batch(query: Query, reason: FailureReason) -> list[EprResult]:
    return [unknown_result(reason) for _ in query.solve_sets]


def _run_query(query: Query) -> list[EprResult]:
    """Rebuild and solve one query (runs in a worker or in-process).

    Degrades gracefully: a grounding explosion or budget exhaustion during
    ``prepare`` yields one UNKNOWN per solve set; per-solve budget
    exhaustion is handled inside :meth:`PreparedEpr.solve`.
    """
    solver = EprSolver(
        query.vocab,
        eager_threshold=query.eager_threshold,
        exclusive_tracked=query.exclusive_tracked,
        canonical_models=query.canonical_models,
        budget=query.budget,
    )
    for name, formula, tracked in query.constraints:
        solver.add(formula, name=name, track=tracked)
    try:
        prepared = solver.prepare()
    except BudgetExceeded as exceeded:
        return _unknown_batch(query, exceeded.reason)
    except GroundingExplosion:
        return _unknown_batch(query, FailureReason.GROUNDING_BLOWUP)
    return [
        prepared.solve(enabled if enabled is None else set(enabled))
        for enabled in query.solve_sets
    ]


def _fork_context() -> multiprocessing.context.BaseContext | None:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def _apply_rss_limit(rss_mb: int) -> None:
    """Best-effort address-space cap for the current (worker) process."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return
    limit = rss_mb * 1024 * 1024
    try:
        _, hard = resource.getrlimit(resource.RLIMIT_AS)
        soft = limit if hard == resource.RLIM_INFINITY else min(limit, hard)
        resource.setrlimit(resource.RLIMIT_AS, (soft, hard))
    except (ValueError, OSError):  # pragma: no cover - restricted envs
        pass


def _lift_rss_limit() -> None:
    """Raise the soft cap back so result pickling is not what hits it."""
    try:
        import resource
    except ImportError:  # pragma: no cover
        return
    try:
        _, hard = resource.getrlimit(resource.RLIMIT_AS)
        resource.setrlimit(resource.RLIMIT_AS, (hard, hard))
    except (ValueError, OSError):  # pragma: no cover
        pass


# ------------------------------------------------------------ worker side


@dataclass(frozen=True)
class _Task:
    """One unit of work shipped to a pool worker.

    Besides the query itself, a task carries the slivers of parent state
    a long-lived worker cannot rely on having inherited: the fault plan
    active *now* (chaos tests install plans after the pool forked), the
    tracing identity (tracers are installed per run), and the cache
    generation (``install_cache`` may have replaced the parent's cache
    since the fork).
    """

    seq: int
    query: Query
    attempt: int
    plan: faults.FaultPlan | None
    trace: tuple[str, float] | None  # (run_id, clock_origin) or None
    cache: tuple[int, tuple[int, str | None] | None]  # cache_snapshot()
    #: parent has a metrics registry: publish into a fresh per-task one
    #: and ship its delta home with the result
    metrics: bool = False
    #: ambient engine tag (bmc/houdini/updr/induction) at dispatch time,
    #: not derivable from query names inside the worker
    engine: str | None = None


def _pool_worker_main(task_conn, result_conn, hb_conn) -> None:
    """Long-lived worker loop: pull tasks until the pipe closes.

    Any exception other than ``MemoryError`` is allowed to crash the
    worker: the parent detects the EOF, replaces the worker, retries the
    task, and the in-process fallback reproduces deterministic errors
    with a real traceback in the parent.

    SIGINT is ignored here: a terminal Ctrl-C broadcasts to the whole
    foreground process group, and a KeyboardInterrupt landing mid-solve
    would race the parent's own orderly :func:`shutdown_pool` -- the
    parent alone decides when workers die.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    faults.mark_worker()
    heartbeat.arm(hb_conn)
    while True:
        try:
            task = task_conn.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        _run_task(task, result_conn)
    result_conn.close()


def _run_task(task: _Task, conn) -> None:
    """Solve one task and send
    ``(seq, results, trace_events, metrics_delta, worker_wall)`` back.

    ``MemoryError`` under the RSS cap becomes an UNKNOWN(MEMORY) answer.
    The worker buffers its trace events locally (never writing the
    fork-inherited trace file, which would tear the parent's JSON lines)
    and ships them home with the result for re-parenting -- one batch of
    events per obligation, not per process exit.  ``trace_events`` is
    None when tracing is off.

    Metrics work the same way: the fork-inherited registry copy is
    replaced with a fresh per-task one (or removed, mirroring the
    parent), the solver layer publishes into it as usual, and its
    ``to_dict()`` delta rides home for the parent to merge -- exact
    worker-side samples, not parent-side reconstruction.
    ``worker_wall`` is the task's wall seconds as seen by the worker; the
    parent subtracts it from the observed round-trip to get the
    pickle/pipe ``transit`` phase.
    """
    query, attempt = task.query, task.attempt
    # Forced beat at task start: the parent's staleness clock for this
    # task starts now.  Deliberately *before* fault injection -- an
    # injected hang then looks exactly like a real wedge (one beat, then
    # silence), which is what the watchdog tests rely on.
    heartbeat.beat(force=True)
    started = time.perf_counter()
    faults.install_fault_plan(
        task.plan if task.plan is not None else faults.FaultPlan()
    )
    cache_mod.sync_worker_cache(task.cache)
    if task.trace is not None:
        obs.enter_worker(*task.trace)
    else:
        obs.exit_worker()
    delta_registry = MetricsRegistry() if task.metrics else None
    install_metrics(delta_registry)
    profile.set_engine(task.engine)
    limited = query.budget is not None and query.budget.rss_mb is not None
    if limited:
        _apply_rss_limit(query.budget.rss_mb)
    faults.maybe_inject(query.name, attempt)
    try:
        with obs.span(
            "worker", query=query.name, attempt=attempt, pid=os.getpid()
        ) as sp:
            results = _run_query(query)
            sp.set(results=len(results))
    except MemoryError:
        results = _unknown_batch(query, FailureReason.MEMORY)
    finally:
        if limited:
            _lift_rss_limit()
    delta = delta_registry.to_dict() if delta_registry is not None else None
    worker_wall = time.perf_counter() - started
    conn.send((task.seq, results, obs.drain_worker(), delta, worker_wall))


# ------------------------------------------------------------ parent side


@dataclass(eq=False)
class _PoolWorker:
    """A live pool member: its process and the parent ends of its pipes.

    ``hb_conn`` is the read end of the worker's heartbeat pipe
    (:mod:`repro.recovery.heartbeat`); the dealer drains it while the
    worker is busy and kills workers whose beats go stale.
    """

    process: multiprocessing.process.BaseProcess
    task_conn: multiprocessing.connection.Connection
    result_conn: multiprocessing.connection.Connection
    hb_conn: multiprocessing.connection.Connection


class WorkerPool:
    """A pool of long-lived forked workers, fed one task at a time.

    Workers block on their task pipe between tasks and between batches;
    they exit when the pipe closes (parent exit, :meth:`shutdown`) or on
    an explicit ``None`` sentinel.  ``forks`` counts every process ever
    forked -- the reuse regression test pins it across batches.
    """

    def __init__(self, context) -> None:
        self.context = context
        self.workers: list[_PoolWorker] = []
        self.forks = 0

    def spawn(self) -> _PoolWorker:
        task_r, task_w = self.context.Pipe(duplex=False)
        result_r, result_w = self.context.Pipe(duplex=False)
        hb_r, hb_w = self.context.Pipe(duplex=False)
        process = self.context.Process(
            target=_pool_worker_main,
            args=(task_r, result_w, hb_w),
            daemon=True,
        )
        process.start()
        task_r.close()
        result_w.close()
        hb_w.close()
        worker = _PoolWorker(process, task_w, result_r, hb_r)
        self.workers.append(worker)
        self.forks += 1
        return worker

    def ensure(self, count: int) -> None:
        """Grow the pool to at least ``count`` live workers."""
        self.reap()
        while len(self.workers) < count:
            self.spawn()

    def reap(self) -> None:
        """Drop members that died while idle (e.g. killed between batches)."""
        alive: list[_PoolWorker] = []
        for worker in self.workers:
            if worker.process.is_alive():
                alive.append(worker)
            else:
                worker.process.join()
                self._close(worker)
        self.workers = alive

    def discard(self, worker: _PoolWorker, kill: bool = False) -> None:
        """Remove a worker from the pool, killing it first if asked."""
        if kill:
            worker.process.kill()
        worker.process.join(timeout=5)
        if worker.process.is_alive():  # pragma: no cover - paranoia
            worker.process.kill()
            worker.process.join()
        self._close(worker)
        if worker in self.workers:
            self.workers.remove(worker)

    @staticmethod
    def _close(worker: _PoolWorker) -> None:
        for conn in (worker.task_conn, worker.result_conn, worker.hb_conn):
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def shutdown(self) -> None:
        for worker in self.workers:
            try:
                worker.task_conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in list(self.workers):
            worker.process.join(timeout=2)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
            self._close(worker)
        self.workers = []


_pool: WorkerPool | None = None
_atexit_registered = False


def worker_pool(context=None) -> WorkerPool | None:
    """The process-global pool, created (empty) on first use.

    Workers are daemonic, so an exiting parent never leaks them; an
    ``atexit`` hook additionally reaps them on orderly interpreter exit
    (daemonic children survive their parent when the parent is killed
    mid-``fork``, and "usually cleaned up eventually" is not the contract
    Ctrl-C users expect).  Call :func:`shutdown_pool` for an explicit
    teardown (tests, long-lived embedders).
    """
    global _pool, _atexit_registered
    if _pool is None:
        context = context if context is not None else _fork_context()
        if context is None:
            return None
        _pool = WorkerPool(context)
        if not _atexit_registered:
            atexit.register(shutdown_pool)
            _atexit_registered = True
    return _pool


def shutdown_pool() -> None:
    """Terminate all pool workers and forget the pool."""
    global _pool
    if _pool is not None:
        _pool.shutdown()
        _pool = None


@dataclass
class _Running:
    worker: _PoolWorker
    seq: int
    index: int
    attempt: int
    query: Query
    deadline: float | None
    span: "obs.SpanRef | None" = None  # the dispatch.attempt trace span
    last_beat: float = 0.0  # monotonic time of the last heartbeat drained
    sent_at: float = 0.0  # monotonic send time, for the transit phase


def _external_deadline(budget: Budget | None) -> float | None:
    """Seconds a worker may run a task before the parent SIGKILLs it."""
    if budget is None or budget.wall_seconds is None:
        return None
    return budget.wall_seconds * _DEADLINE_FACTOR + _DEADLINE_GRACE


def _escalate(query: Query) -> Query:
    if query.budget is None:
        return query
    return replace(query, budget=query.budget.escalated())


def solve_queries(
    queries: Sequence[Query],
    jobs: int | None = None,
    stats: SolverStats | None = None,
    retries: int | None = None,
    fallback: bool = True,
) -> list[list[EprResult]]:
    """Solve a batch of independent queries, one result list per query.

    Fault-tolerant in parallel mode: crashed or hung workers are replaced
    and their tasks retried up to ``retries`` times (argument, else
    ``REPRO_RETRIES``, else 2) with exponentially escalated budgets; a
    query still unanswered after that is finished in-process
    (``fallback=True``, the default) or reported as UNKNOWN with the
    failure that killed its last attempt.
    """
    jobs = resolve_jobs(jobs)
    workers = min(jobs, len(queries))
    context = _fork_context() if workers > 1 else None
    if context is None or workers <= 1:
        batches = []
        for query in queries:
            with obs.span("query", name=query.name):
                batches.append(_run_query(query))
        if stats is not None:
            for batch in batches:
                for result in batch:
                    stats.record_result(result, dispatched=False)
        return batches
    batches = _solve_parallel(
        list(queries), workers, context, stats, resolve_retries(retries), fallback
    )
    return batches


def _solve_parallel(
    queries: list[Query],
    workers: int,
    context,
    stats: SolverStats | None,
    retries: int,
    fallback: bool,
) -> list[list[EprResult]]:
    # Parent state shipped with every task (see _Task).  The cache
    # snapshot is taken *before* the pool grows so freshly forked workers
    # inherit exactly the cache generation the tasks will name.
    plan = faults.active_plan()
    tracer = obs.active_tracer()
    trace_info = (tracer.run_id, tracer.origin) if tracer is not None else None
    cache_info = cache_mod.cache_snapshot()
    metrics_on = obs.metrics_enabled()
    engine_tag = profile.current_engine()

    pool = worker_pool(context)
    assert pool is not None  # context was resolved by the caller
    pool.ensure(workers)

    batches: list[list[EprResult] | None] = [None] * len(queries)
    via_worker = [True] * len(queries)
    pending: list[tuple[int, int, Query]] = [
        (index, 0, query) for index, query in enumerate(queries)
    ]
    busy: dict[object, _Running] = {}
    idle: list[_PoolWorker] = list(pool.workers[:workers])
    limit = workers
    crash_count = kill_count = retry_count = fallback_count = 0
    wedged_count = lost_count = 0
    next_shrink = _SHRINK_THRESHOLD
    seq = 0
    beat_timeout = heartbeat.heartbeat_timeout()

    def deliver(record: _Running, conn) -> bool:
        """Receive and account one result; False when the read fails.

        Merging the worker's metrics delta, forwarding its trace events,
        and observing the transit phase all happen here, so the
        normal-result path and the late-salvage path (a result that
        arrived in the window between a deadline/wedge decision and the
        kill) account identically.
        """
        try:
            result_seq, results, worker_events, delta, worker_wall = conn.recv()
            if result_seq != record.seq:
                raise EOFError("stale result from a replaced worker")
        except (EOFError, OSError, ValueError):
            return False
        batches[record.index] = results
        obs.forward_events(
            worker_events, record.span.id if record.span else None
        )
        transit_s = max(0.0, (time.monotonic() - record.sent_at) - worker_wall)
        if metrics_on:
            if delta is not None:
                registry = obs.metrics()
                if registry is not None:
                    registry.merge(delta)
            labels = {"phase": "transit"}
            if engine_tag is not None:
                labels["engine"] = engine_tag
            obs.observe("query_phase_ms", transit_s * 1000, **labels)
        obs.finish_span(
            record.span, outcome="ok", transit_ms=int(transit_s * 1000)
        )
        idle.append(record.worker)
        return True

    def lose_events(record: _Running, reason: str) -> None:
        """A worker died with its task's buffered telemetry unsent."""
        nonlocal lost_count
        lost_count += 1
        obs.point(
            "dispatch.events-lost",
            query=record.query.name,
            attempt=record.attempt,
            reason=reason,
        )

    def finish_attempt(record: _Running, reason: FailureReason) -> None:
        """A worker died or was killed: retry, fall back, or give up."""
        nonlocal retry_count, fallback_count
        if record.attempt < retries:
            retry_count += 1
            obs.point(
                "dispatch.retry",
                query=record.query.name,
                attempt=record.attempt,
                reason=reason.value,
            )
            pending.append(
                (record.index, record.attempt + 1, _escalate(record.query))
            )
        elif fallback:
            # Final in-process serial attempt: fault injection never fires
            # in the parent, so deterministic queries always complete here;
            # cooperative budget checks still bound it.
            fallback_count += 1
            via_worker[record.index] = False
            obs.point(
                "dispatch.fallback",
                query=record.query.name,
                attempt=record.attempt,
                reason=reason.value,
            )
            with obs.span("query", name=record.query.name, fallback=True):
                batches[record.index] = _run_query(_escalate(record.query))
        else:
            obs.point(
                "dispatch.gave-up",
                query=record.query.name,
                attempt=record.attempt,
                reason=reason.value,
            )
            batches[record.index] = _unknown_batch(record.query, reason)

    def replace_worker(dead: _PoolWorker, kill: bool) -> None:
        """Drop a dead/hung worker; fork a replacement while work remains."""
        pool.discard(dead, kill=kill)
        if pending and len(idle) + len(busy) < limit:
            idle.append(pool.spawn())

    try:
        while pending or busy:
            if pending and not idle and not busy:
                # Every borrowed worker died; keep the batch moving.
                idle.append(pool.spawn())
            while pending and idle and len(busy) < limit:
                index, attempt, query = pending.pop(0)
                worker = idle.pop()
                seq += 1
                task = _Task(
                    seq, query, attempt, plan, trace_info, cache_info,
                    metrics=metrics_on, engine=engine_tag,
                )
                try:
                    worker.task_conn.send(task)
                except (BrokenPipeError, OSError):
                    # Died while idle: not an attempt failure -- the task
                    # never reached it.  Replace and resubmit.
                    pending.insert(0, (index, attempt, query))
                    replace_worker(worker, kill=False)
                    continue
                external = _external_deadline(query.budget)
                busy[worker.result_conn] = _Running(
                    worker,
                    seq,
                    index,
                    attempt,
                    query,
                    time.monotonic() + external if external is not None else None,
                    span=obs.begin_span(
                        "dispatch.attempt", query=query.name, attempt=attempt
                    ),
                    last_beat=time.monotonic(),
                    sent_at=time.monotonic(),
                )
            if not busy:
                continue
            # Wake at the earliest external deadline or heartbeat expiry,
            # whichever comes first; without either, block until a result.
            wakeups = [
                record.deadline
                for record in busy.values()
                if record.deadline is not None
            ]
            if beat_timeout > 0:
                wakeups.extend(
                    record.last_beat + beat_timeout for record in busy.values()
                )
            timeout = None
            if wakeups:
                timeout = max(0.01, min(wakeups) - time.monotonic())
            hb_map = {record.worker.hb_conn: record for record in busy.values()}
            ready = multiprocessing.connection.wait(
                list(busy.keys()) + list(hb_map.keys()), timeout=timeout
            )
            now = time.monotonic()
            for conn in ready:
                if conn not in busy:
                    # A heartbeat: drain the pipe, refresh the clock.  EOF
                    # here means the worker died -- its result pipe's EOF
                    # (also in `ready`) does the accounting.
                    record = hb_map.get(conn)
                    try:
                        while conn.poll(0):
                            conn.recv_bytes()
                    except (EOFError, OSError):
                        continue
                    if record is not None:
                        record.last_beat = now
                    continue
                record = busy.pop(conn)
                if not deliver(record, conn):
                    crash_count += 1
                    lose_events(record, "crashed")
                    obs.finish_span(record.span, outcome="crashed")
                    replace_worker(record.worker, kill=False)
                    finish_attempt(record, FailureReason.WORKER_CRASHED)
            for conn in [
                conn
                for conn, record in busy.items()
                if record.deadline is not None and now > record.deadline
            ]:
                record = busy.pop(conn)
                # Last-moment salvage: the result may have landed in the
                # pipe between our wait() wake-up and this deadline check.
                # A delivered answer is an answer -- keep the worker.
                if conn.poll(0) and deliver(record, conn):
                    continue
                kill_count += 1
                lose_events(record, "killed")
                obs.finish_span(record.span, outcome="killed")
                replace_worker(record.worker, kill=True)
                finish_attempt(record, FailureReason.TIMEOUT)
            if beat_timeout > 0:
                # The watchdog: a busy worker whose beats went stale is
                # wedged -- kill it now rather than waiting out the (often
                # much longer) 2x-wall external deadline.
                for conn in [
                    conn
                    for conn, record in busy.items()
                    if now - record.last_beat > beat_timeout
                ]:
                    record = busy.pop(conn)
                    if conn.poll(0) and deliver(record, conn):
                        continue
                    wedged_count += 1
                    lose_events(record, "wedged")
                    obs.point(
                        "dispatch.wedged",
                        query=record.query.name,
                        attempt=record.attempt,
                        silent_seconds=round(now - record.last_beat, 3),
                    )
                    obs.finish_span(record.span, outcome="wedged")
                    replace_worker(record.worker, kill=True)
                    finish_attempt(record, FailureReason.WEDGED)
            if crash_count + kill_count + wedged_count >= next_shrink and limit > 1:
                limit = max(1, limit // 2)
                next_shrink *= 2
    finally:
        # Normal completion leaves no busy workers; on an exception, kill
        # the ones mid-task so a stale result can never leak into (and
        # corrupt) the next batch served by the persistent pool.
        for conn, record in list(busy.items()):
            obs.finish_span(record.span, outcome="killed")
            pool.discard(record.worker, kill=True)

    complete = [batch for batch in batches if batch is not None]
    assert len(complete) == len(queries), "dispatch lost a query"
    if obs.metrics_enabled():
        # Per-query series (queries_total, cache_*, query_latency_ms,
        # query_phase_ms) already arrived as worker deltas, merged by
        # deliver() with the exact samples the worker's solver layer
        # published -- the same semantics as a serial run.  Only the
        # dispatch-level fault accounting is parent-originated.  A worker
        # that died mid-task takes that task's unsent samples with it:
        # worker_events_lost_total is the undercount signal, and the
        # retry/fallback that answers the query publishes its own.
        for count, name in (
            (crash_count, "worker_crashes_total"),
            (kill_count, "worker_kills_total"),
            (wedged_count, "worker_wedged_total"),
            (retry_count, "dispatch_retries_total"),
            (fallback_count, "serial_fallbacks_total"),
            (lost_count, "worker_events_lost_total"),
        ):
            if count:
                obs.inc(name, count)
        obs.inc("dispatched_total", sum(via_worker))
    if stats is not None:
        stats.retries += retry_count
        stats.worker_kills += kill_count + wedged_count
        stats.worker_crashes += crash_count
        stats.serial_fallbacks += fallback_count
        for index, batch in enumerate(batches):
            for result in batch:
                stats.record_result(result, dispatched=via_worker[index])
    return batches  # type: ignore[return-value]
