"""Parallel, fault-tolerant dispatch of independent EPR queries.

Bounded model checking solves one query per unrolling depth, Houdini one
per candidate conjecture, UPDR one per clause-push attempt -- all mutually
independent.  This module fans such batches across worker processes and
keeps the batch alive when individual workers misbehave.

A :class:`Query` is a self-contained description of one
:class:`~repro.solver.epr.EprSolver` instance -- vocabulary, constraints,
solver options, resource :class:`~repro.solver.budget.Budget` -- plus the
list of tracked-constraint subsets to solve it under.
:func:`solve_queries` runs a batch either in-process (``jobs <= 1``, the
default) or on per-query forked workers.  Workers rebuild the solver from
the description, so only plain syntax-tree dataclasses cross the process
boundary; results come back as picklable
:class:`~repro.solver.epr.EprResult` values, models included.

Fault tolerance (the parent never trusts a worker):

* each worker gets an **external deadline** derived from its query's wall
  budget; a worker still running past it is SIGKILLed (cooperative budget
  checks inside the worker normally answer first -- the external deadline
  is the backstop for hung groundings and injected hangs);
* a worker that dies without sending a result (segfault, OOM kill,
  injected crash) is detected by EOF on its result pipe;
* crashed and killed attempts are **retried** up to ``retries`` times with
  exponentially escalated budgets, then finished by an in-process serial
  fallback (fault-free by construction: :mod:`repro.solver.faults` only
  fires inside workers) -- or reported as typed UNKNOWNs when
  ``fallback=False``;
* after repeated crashes the worker pool is resized down, so a poisoned
  environment degrades to serial execution instead of thrashing;
* workers apply ``resource.setrlimit`` for the budget's RSS cap and
  convert ``MemoryError`` into an UNKNOWN(MEMORY) answer.

Worker count resolution: the explicit ``jobs`` argument wins, then the
``REPRO_JOBS`` environment variable (malformed values are warned about on
stderr, not silently ignored), then 1 (serial).  Serial and parallel runs
return identical conclusive answers: workers run the same deterministic
solver code, and each forked worker inherits the parent's query cache as
of the fork.  Platforms without the ``fork`` start method fall back to
serial execution rather than paying spawn-and-reimport per query.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import time
from dataclasses import dataclass, replace
from typing import Sequence

from .. import obs
from ..logic import syntax as s
from ..logic.sorts import Vocabulary
from . import faults
from .budget import Budget, BudgetExceeded, FailureReason, resolve_retries, warn_env
from .epr import EprResult, EprSolver, unknown_result
from .grounding import GroundingExplosion
from .stats import SolverStats

#: grace multiplier/offset over the cooperative wall budget before the
#: parent declares a worker hung: fork + solver rebuild + pickling all
#: happen inside the window, and cooperative checks need a chance to fire.
_DEADLINE_FACTOR = 2.0
_DEADLINE_GRACE = 1.0

#: cumulative crash/kill count at which the pool is first halved.
_SHRINK_THRESHOLD = 3


def resolve_jobs(jobs: int | None = None) -> int:
    """The worker count to use: argument, else ``REPRO_JOBS``, else 1."""
    if jobs is not None:
        return max(1, jobs)
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warn_env("REPRO_JOBS", env, "expected a positive integer")
    return 1


@dataclass(frozen=True)
class Query:
    """One solver instance and the subsets of tracked constraints to solve.

    ``solve_sets`` entries are frozensets of tracked-constraint names, or
    None for "all tracked constraints enabled" -- the same contract as
    :meth:`PreparedEpr.solve`.  A query with ``n`` solve sets yields ``n``
    results, all sharing one grounding.  ``budget`` bounds the whole query
    (grounding plus every solve), both cooperatively inside the solver and
    externally by the dispatch parent.
    """

    name: str
    vocab: Vocabulary
    constraints: tuple[tuple[str, s.Formula, bool], ...]
    solve_sets: tuple[frozenset[str] | None, ...] = (None,)
    exclusive_tracked: bool = False
    canonical_models: bool = False
    eager_threshold: int = 3000
    budget: Budget | None = None


def query_of(
    solver: EprSolver,
    solve_sets: Sequence[frozenset[str] | None] = (None,),
    name: str = "query",
) -> Query:
    """Snapshot an :class:`EprSolver`'s constraints into a :class:`Query`."""
    return Query(
        name=name,
        vocab=solver.vocab,
        constraints=tuple(
            (c.name, c.formula, c.tracked) for c in solver._constraints
        ),
        solve_sets=tuple(solve_sets),
        exclusive_tracked=solver.exclusive_tracked,
        canonical_models=solver.canonical_models,
        eager_threshold=solver.eager_threshold,
        budget=solver.budget,
    )


def _unknown_batch(query: Query, reason: FailureReason) -> list[EprResult]:
    return [unknown_result(reason) for _ in query.solve_sets]


def _run_query(query: Query) -> list[EprResult]:
    """Rebuild and solve one query (runs in a worker or in-process).

    Degrades gracefully: a grounding explosion or budget exhaustion during
    ``prepare`` yields one UNKNOWN per solve set; per-solve budget
    exhaustion is handled inside :meth:`PreparedEpr.solve`.
    """
    solver = EprSolver(
        query.vocab,
        eager_threshold=query.eager_threshold,
        exclusive_tracked=query.exclusive_tracked,
        canonical_models=query.canonical_models,
        budget=query.budget,
    )
    for name, formula, tracked in query.constraints:
        solver.add(formula, name=name, track=tracked)
    try:
        prepared = solver.prepare()
    except BudgetExceeded as exceeded:
        return _unknown_batch(query, exceeded.reason)
    except GroundingExplosion:
        return _unknown_batch(query, FailureReason.GROUNDING_BLOWUP)
    return [
        prepared.solve(enabled if enabled is None else set(enabled))
        for enabled in query.solve_sets
    ]


def _fork_context() -> multiprocessing.context.BaseContext | None:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def _apply_rss_limit(rss_mb: int) -> None:
    """Best-effort address-space cap for the current (worker) process."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return
    limit = rss_mb * 1024 * 1024
    try:
        _, hard = resource.getrlimit(resource.RLIMIT_AS)
        soft = limit if hard == resource.RLIM_INFINITY else min(limit, hard)
        resource.setrlimit(resource.RLIMIT_AS, (soft, hard))
    except (ValueError, OSError):  # pragma: no cover - restricted envs
        pass


def _lift_rss_limit() -> None:
    """Raise the soft cap back so result pickling is not what hits it."""
    try:
        import resource
    except ImportError:  # pragma: no cover
        return
    try:
        _, hard = resource.getrlimit(resource.RLIMIT_AS)
        resource.setrlimit(resource.RLIMIT_AS, (hard, hard))
    except (ValueError, OSError):  # pragma: no cover
        pass


def _worker_main(conn, query: Query, attempt: int) -> None:
    """Worker entry point: solve one query and send the results back.

    ``MemoryError`` under the RSS cap becomes an UNKNOWN(MEMORY) answer.
    Any other exception is allowed to crash the worker: the parent retries
    and the in-process fallback reproduces deterministic errors with a
    real traceback in the parent.

    The pipe payload is ``(results, trace_events)``: the worker buffers its
    trace events locally (:func:`repro.obs.enter_worker` -- never writing
    the fork-inherited trace file, which would tear the parent's JSON
    lines) and ships them home for re-parenting.  ``trace_events`` is None
    when tracing is off.
    """
    faults.mark_worker()
    obs.enter_worker()
    limited = query.budget is not None and query.budget.rss_mb is not None
    if limited:
        _apply_rss_limit(query.budget.rss_mb)
    faults.maybe_inject(query.name, attempt)
    try:
        with obs.span(
            "worker", query=query.name, attempt=attempt, pid=os.getpid()
        ) as sp:
            results = _run_query(query)
            sp.set(results=len(results))
    except MemoryError:
        _lift_rss_limit()
        results = _unknown_batch(query, FailureReason.MEMORY)
    else:
        if limited:
            _lift_rss_limit()
    conn.send((results, obs.drain_worker()))
    conn.close()


@dataclass
class _Running:
    process: multiprocessing.process.BaseProcess
    index: int
    attempt: int
    query: Query
    deadline: float | None
    span: "obs.SpanRef | None" = None  # the dispatch.attempt trace span


def _external_deadline(budget: Budget | None) -> float | None:
    """Seconds a worker may run before the parent SIGKILLs it, or None."""
    if budget is None or budget.wall_seconds is None:
        return None
    return budget.wall_seconds * _DEADLINE_FACTOR + _DEADLINE_GRACE


def _escalate(query: Query) -> Query:
    if query.budget is None:
        return query
    return replace(query, budget=query.budget.escalated())


def solve_queries(
    queries: Sequence[Query],
    jobs: int | None = None,
    stats: SolverStats | None = None,
    retries: int | None = None,
    fallback: bool = True,
) -> list[list[EprResult]]:
    """Solve a batch of independent queries, one result list per query.

    Fault-tolerant in parallel mode: crashed or hung workers are retried
    up to ``retries`` times (argument, else ``REPRO_RETRIES``, else 2)
    with exponentially escalated budgets; a query still unanswered after
    that is finished in-process (``fallback=True``, the default) or
    reported as UNKNOWN with the failure that killed its last attempt.
    """
    jobs = resolve_jobs(jobs)
    workers = min(jobs, len(queries))
    context = _fork_context() if workers > 1 else None
    if context is None or workers <= 1:
        batches = []
        for query in queries:
            with obs.span("query", name=query.name):
                batches.append(_run_query(query))
        if stats is not None:
            for batch in batches:
                for result in batch:
                    stats.record_result(result, dispatched=False)
        return batches
    batches = _solve_parallel(
        list(queries), workers, context, stats, resolve_retries(retries), fallback
    )
    return batches


def _solve_parallel(
    queries: list[Query],
    workers: int,
    context,
    stats: SolverStats | None,
    retries: int,
    fallback: bool,
) -> list[list[EprResult]]:
    batches: list[list[EprResult] | None] = [None] * len(queries)
    via_worker = [True] * len(queries)
    pending: list[tuple[int, int, Query]] = [
        (index, 0, query) for index, query in enumerate(queries)
    ]
    running: dict[object, _Running] = {}
    pool_size = workers
    crash_count = kill_count = retry_count = fallback_count = 0
    next_shrink = _SHRINK_THRESHOLD

    def finish_attempt(record: _Running, reason: FailureReason) -> None:
        """A worker died or was killed: retry, fall back, or give up."""
        nonlocal retry_count, fallback_count
        if record.attempt < retries:
            retry_count += 1
            obs.point(
                "dispatch.retry",
                query=record.query.name,
                attempt=record.attempt,
                reason=reason.value,
            )
            pending.append(
                (record.index, record.attempt + 1, _escalate(record.query))
            )
        elif fallback:
            # Final in-process serial attempt: fault injection never fires
            # in the parent, so deterministic queries always complete here;
            # cooperative budget checks still bound it.
            fallback_count += 1
            via_worker[record.index] = False
            obs.point(
                "dispatch.fallback",
                query=record.query.name,
                attempt=record.attempt,
                reason=reason.value,
            )
            with obs.span("query", name=record.query.name, fallback=True):
                batches[record.index] = _run_query(_escalate(record.query))
        else:
            obs.point(
                "dispatch.gave-up",
                query=record.query.name,
                attempt=record.attempt,
                reason=reason.value,
            )
            batches[record.index] = _unknown_batch(record.query, reason)

    try:
        while pending or running:
            while pending and len(running) < pool_size:
                index, attempt, query = pending.pop(0)
                recv_conn, send_conn = context.Pipe(duplex=False)
                process = context.Process(
                    target=_worker_main,
                    args=(send_conn, query, attempt),
                    daemon=True,
                )
                process.start()
                send_conn.close()
                external = _external_deadline(query.budget)
                running[recv_conn] = _Running(
                    process,
                    index,
                    attempt,
                    query,
                    time.monotonic() + external if external is not None else None,
                    span=obs.begin_span(
                        "dispatch.attempt", query=query.name, attempt=attempt
                    ),
                )
            deadlines = [
                record.deadline
                for record in running.values()
                if record.deadline is not None
            ]
            timeout = None
            if deadlines:
                timeout = max(0.01, min(deadlines) - time.monotonic())
            ready = multiprocessing.connection.wait(
                list(running.keys()), timeout=timeout
            )
            now = time.monotonic()
            for conn in ready:
                record = running.pop(conn)
                try:
                    results, worker_events = conn.recv()
                except (EOFError, OSError):
                    crash_count += 1
                    obs.finish_span(record.span, outcome="crashed")
                    finish_attempt(record, FailureReason.WORKER_CRASHED)
                else:
                    batches[record.index] = results
                    obs.forward_events(
                        worker_events, record.span.id if record.span else None
                    )
                    obs.finish_span(record.span, outcome="ok")
                finally:
                    conn.close()
                record.process.join(timeout=5)
                if record.process.is_alive():  # pragma: no cover - paranoia
                    record.process.kill()
                    record.process.join()
            for conn in [
                conn
                for conn, record in running.items()
                if record.deadline is not None and now > record.deadline
            ]:
                record = running.pop(conn)
                record.process.kill()
                record.process.join()
                conn.close()
                kill_count += 1
                obs.finish_span(record.span, outcome="killed")
                finish_attempt(record, FailureReason.TIMEOUT)
            if crash_count + kill_count >= next_shrink and pool_size > 1:
                pool_size = max(1, pool_size // 2)
                next_shrink *= 2
    finally:
        for conn, record in running.items():
            record.process.kill()
            record.process.join()
            conn.close()

    complete = [batch for batch in batches if batch is not None]
    assert len(complete) == len(queries), "dispatch lost a query"
    if obs.metrics_enabled():
        # Worker processes fork with a *copy* of the metrics registry, so
        # their in-solver increments die with them; record worker-solved
        # results here from the answers that actually came home.  Results
        # finished in-process (serial fallback) already published through
        # the solver layer -- counting them again would double-book.
        for count, name in (
            (crash_count, "worker_crashes_total"),
            (kill_count, "worker_kills_total"),
            (retry_count, "dispatch_retries_total"),
            (fallback_count, "serial_fallbacks_total"),
        ):
            if count:
                obs.inc(name, count)
        for index, batch in enumerate(batches):
            if not via_worker[index]:
                continue
            obs.inc("dispatched_total")
            for result in batch:
                obs.inc("queries_total", verdict=result.verdict)
                if result.cached:
                    obs.inc("cache_hits_total")
                else:
                    obs.inc("cache_misses_total")
                    obs.observe(
                        "query_latency_ms",
                        result.statistics.get("solve_ms", 0),
                    )
    if stats is not None:
        stats.retries += retry_count
        stats.worker_kills += kill_count
        stats.worker_crashes += crash_count
        stats.serial_fallbacks += fallback_count
        for index, batch in enumerate(batches):
            for result in batch:
                stats.record_result(result, dispatched=via_worker[index])
    return batches  # type: ignore[return-value]
