"""A CDCL SAT solver.

The paper relies on Z3 to decide EPR satisfiability; since this reproduction
is dependency-free, the decision procedure bottoms out in this solver.  It is
a conflict-driven clause-learning solver with the standard ingredients:

* two-watched-literal unit propagation;
* first-UIP conflict analysis with clause learning, learned-clause
  minimization and non-chronological backjumping;
* VSIDS-style variable activities with exponential decay and phase saving;
* Luby-sequence restarts;
* learned-clause database reduction by activity;
* incremental solving under *assumptions*, returning a failed-assumption set
  (the unsat core used by the auto-generalizer, Section 4.5).

Variables are positive integers handed out by :meth:`Solver.new_var`;
literals are signed integers (``-v`` is the negation of ``v``).  Assumptions
are handled MiniSat-style: they are asserted as the first decisions; when an
assumption turns out false, :meth:`Solver.solve` reports unsat together with
the subset of assumptions responsible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .. import obs
from ..obs import profile
from ..recovery import heartbeat
from .budget import BudgetMeter

_UNASSIGNED = 0
_TRUE = 1
_FALSE = -1


@dataclass(eq=False)
class _Clause:
    lits: list[int]
    learned: bool = False
    activity: float = 0.0


class _VarHeap:
    """Max-heap over variables keyed by activity (MiniSat's order heap).

    Supports lazy membership: variables are re-inserted on backtracking and
    assigned variables popped off are simply skipped by the caller.
    """

    def __init__(self, activity: list[float]) -> None:
        self._activity = activity
        self._heap: list[int] = []
        self._position: list[int] = [-1]  # 1-indexed by variable

    def register_var(self) -> None:
        self._position.append(-1)

    def __contains__(self, var: int) -> bool:
        return self._position[var] >= 0

    def push(self, var: int) -> None:
        if self._position[var] >= 0:
            return
        self._heap.append(var)
        self._position[var] = len(self._heap) - 1
        self._sift_up(len(self._heap) - 1)

    def pop(self) -> int | None:
        if not self._heap:
            return None
        top = self._heap[0]
        last = self._heap.pop()
        self._position[top] = -1
        if self._heap:
            self._heap[0] = last
            self._position[last] = 0
            self._sift_down(0)
        return top

    def update(self, var: int) -> None:
        """Re-establish heap order after ``var``'s activity increased."""
        if self._position[var] >= 0:
            self._sift_up(self._position[var])

    def _sift_up(self, index: int) -> None:
        heap, pos, act = self._heap, self._position, self._activity
        var = heap[index]
        key = act[var]
        while index > 0:
            parent = (index - 1) >> 1
            parent_var = heap[parent]
            if act[parent_var] >= key:
                break
            heap[index] = parent_var
            pos[parent_var] = index
            index = parent
        heap[index] = var
        pos[var] = index

    def _sift_down(self, index: int) -> None:
        heap, pos, act = self._heap, self._position, self._activity
        size = len(heap)
        var = heap[index]
        key = act[var]
        while True:
            child = 2 * index + 1
            if child >= size:
                break
            if child + 1 < size and act[heap[child + 1]] > act[heap[child]]:
                child += 1
            child_var = heap[child]
            if key >= act[child_var]:
                break
            heap[index] = child_var
            pos[child_var] = index
            index = child
        heap[index] = var
        pos[var] = index


@dataclass(frozen=True)
class SatResult:
    """Outcome of a :meth:`Solver.solve` call.

    ``model`` maps every variable to a boolean when satisfiable.  ``core`` is
    a subset of the assumption literals sufficient for unsatisfiability when
    unsat (empty when the formula is unsatisfiable outright).
    """

    satisfiable: bool
    model: dict[int, bool] = field(default_factory=dict)
    core: frozenset[int] = frozenset()

    def __bool__(self) -> bool:
        return self.satisfiable


class Solver:
    """An incremental CDCL SAT solver."""

    def __init__(self) -> None:
        self._num_vars = 0
        self._clauses: list[_Clause] = []
        self._learned: list[_Clause] = []
        self._watches: dict[int, list[_Clause]] = {}
        self._values: list[int] = [_UNASSIGNED]  # 1-indexed by variable
        self._levels: list[int] = [0]
        self._reasons: list[_Clause | None] = [None]
        self._activity: list[float] = [0.0]
        self._polarity: list[bool] = [False]  # phase saving
        self._seen: list[bool] = [False]  # scratch for conflict analysis
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._propagate_head = 0
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        self._order = _VarHeap(self._activity)
        self._unsat = False
        self.statistics = {"conflicts": 0, "decisions": 0, "propagations": 0, "restarts": 0}

    # ------------------------------------------------------------ interface

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def new_var(self) -> int:
        self._num_vars += 1
        self._values.append(_UNASSIGNED)
        self._levels.append(0)
        self._reasons.append(None)
        self._activity.append(0.0)
        self._polarity.append(False)
        self._seen.append(False)
        self._order.register_var()
        self._order.push(self._num_vars)
        return self._num_vars

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add a clause; duplicates are merged and tautologies dropped."""
        if self._unsat:
            return
        self._backtrack(0)
        unique: list[int] = []
        seen: set[int] = set()
        for lit in lits:
            var = abs(lit)
            if not 1 <= var <= self._num_vars:
                raise ValueError(f"unknown variable in literal {lit}")
            if -lit in seen:
                return  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            value = self._value(lit)
            if value == _TRUE:
                return  # already satisfied at level 0
            if value == _FALSE:
                continue  # falsified at level 0: drop the literal
            unique.append(lit)
        if not unique:
            self._unsat = True
            return
        if len(unique) == 1:
            if not self._enqueue(unique[0], None) or self._propagate() is not None:
                self._unsat = True
            return
        clause = _Clause(unique)
        self._clauses.append(clause)
        self._watch(clause)

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def snapshot(
        self,
    ) -> tuple[bool, int, tuple[int, ...], tuple[tuple[int, ...], ...]]:
        """Content snapshot of the problem: the root-conflict flag (a clause
        reduced to empty at level 0 leaves no other trace), variable count,
        root-level implied literals (unit clauses live on the trail, not in
        the clause list), and the problem clauses.  Used for query-cache
        fingerprints; learned clauses are excluded -- they are implied, so
        two solvers with equal snapshots decide every assumption set
        identically."""
        self._backtrack(0)
        return (
            self._unsat,
            self._num_vars,
            tuple(sorted(self._trail)),
            tuple(tuple(clause.lits) for clause in self._clauses),
        )

    def solve(
        self, assumptions: Sequence[int] = (), meter: BudgetMeter | None = None
    ) -> SatResult:
        """Decide satisfiability under the given assumption literals.

        ``meter`` enables cooperative budget enforcement: every conflict
        and decision is charged against it, and it raises
        :class:`~repro.solver.budget.BudgetExceeded` when the conflict/
        decision cap or the wall-clock deadline is crossed.  The solver is
        left in a consistent state (the next ``solve`` backtracks to the
        root), so a budget-exceeded search can be retried or abandoned.
        """
        if not obs.enabled():
            with profile.phase("sat"):
                return self._solve(assumptions, meter)
        before = self.statistics["conflicts"]
        with profile.phase("sat"):
            result = self._solve(assumptions, meter)
        obs.point(
            "sat.solve",
            verdict="sat" if result.satisfiable else "unsat",
            conflicts=self.statistics["conflicts"] - before,
            vars=self._num_vars,
        )
        return result

    def _solve(
        self, assumptions: Sequence[int] = (), meter: BudgetMeter | None = None
    ) -> SatResult:
        for lit in assumptions:
            if not 1 <= abs(lit) <= self._num_vars:
                raise ValueError(f"unknown variable in assumption {lit}")
        if self._unsat:
            return SatResult(False)
        self._backtrack(0)
        if self._propagate() is not None:
            self._unsat = True
            return SatResult(False)
        restart_count = 1
        conflicts_until_restart = _luby(restart_count) * 64
        conflict_count = 0
        max_learned = max(2000, len(self._clauses) // 2)
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.statistics["conflicts"] += 1
                conflict_count += 1
                heartbeat.beat()  # liveness for the pool watchdog
                if meter is not None:
                    meter.charge_conflict()
                if self._decision_level() == 0:
                    self._unsat = True
                    return SatResult(False)
                learned, backjump = self._analyze(conflict)
                self._backtrack(backjump)
                self._learn(learned)
                self._decay_activities()
                if conflict_count >= conflicts_until_restart:
                    conflict_count = 0
                    restart_count += 1
                    conflicts_until_restart = _luby(restart_count) * 64
                    self.statistics["restarts"] += 1
                    self._backtrack(0)
                if len(self._learned) > max_learned:
                    self._reduce_learned()
                    max_learned = int(max_learned * 1.3)
                continue
            level = self._decision_level()
            if level < len(assumptions):
                # Assert the next assumption as a decision.
                lit = assumptions[level]
                value = self._value(lit)
                if value == _TRUE:
                    # Already implied; open a dummy level to keep alignment.
                    self._new_decision_level()
                    continue
                if value == _FALSE:
                    core = self._analyze_final(lit)
                    self._backtrack(0)
                    return SatResult(False, core=frozenset(core))
                self._new_decision_level()
                self._enqueue(lit, None)
                continue
            lit = self._decide()
            if lit is None:
                model = {
                    var: self._values[var] == _TRUE
                    for var in range(1, self._num_vars + 1)
                }
                self._backtrack(0)
                return SatResult(True, model=model)
            self.statistics["decisions"] += 1
            if self.statistics["decisions"] % 2048 == 0:
                heartbeat.beat()  # conflict-free search must still look alive
            if meter is not None:
                meter.charge_decision()
            self._new_decision_level()
            self._enqueue(lit, None)

    # ------------------------------------------------------------ internals

    def _value(self, lit: int) -> int:
        value = self._values[abs(lit)]
        if value == _UNASSIGNED:
            return _UNASSIGNED
        return value if lit > 0 else -value

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _new_decision_level(self) -> None:
        self._trail_lim.append(len(self._trail))

    def _watch(self, clause: _Clause) -> None:
        self._watches.setdefault(-clause.lits[0], []).append(clause)
        self._watches.setdefault(-clause.lits[1], []).append(clause)

    def _enqueue(self, lit: int, reason: _Clause | None) -> bool:
        value = self._value(lit)
        if value == _FALSE:
            return False
        if value == _TRUE:
            return True
        var = abs(lit)
        self._values[var] = _TRUE if lit > 0 else _FALSE
        self._levels[var] = self._decision_level()
        self._reasons[var] = reason
        self._polarity[var] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> _Clause | None:
        while self._propagate_head < len(self._trail):
            lit = self._trail[self._propagate_head]
            self._propagate_head += 1
            self.statistics["propagations"] += 1
            watchers = self._watches.get(lit)
            if not watchers:
                continue
            still_watching: list[_Clause] = []
            conflict: _Clause | None = None
            index = 0
            while index < len(watchers):
                clause = watchers[index]
                index += 1
                lits = clause.lits
                if lits[0] == -lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._value(first) == _TRUE:
                    still_watching.append(clause)
                    continue
                for slot in range(2, len(lits)):
                    if self._value(lits[slot]) != _FALSE:
                        lits[1], lits[slot] = lits[slot], lits[1]
                        self._watches.setdefault(-lits[1], []).append(clause)
                        break
                else:
                    still_watching.append(clause)
                    if not self._enqueue(first, clause):
                        conflict = clause
                        still_watching.extend(watchers[index:])
                        break
            self._watches[lit] = still_watching
            if conflict is not None:
                self._propagate_head = len(self._trail)
                return conflict
        return None

    def _analyze(self, conflict: _Clause) -> tuple[list[int], int]:
        """First-UIP conflict analysis: (learned clause, backjump level)."""
        learned: list[int] = [0]  # slot 0 reserved for the asserting literal
        seen = self._seen
        counter = 0
        lit = 0
        clause: _Clause | None = conflict
        index = len(self._trail) - 1
        level = self._decision_level()
        touched: list[int] = []
        while True:
            assert clause is not None, "decision literal reached before UIP"
            self._bump_clause(clause)
            for reason_lit in clause.lits:
                if reason_lit == lit:
                    continue
                var = abs(reason_lit)
                if not seen[var] and self._levels[var] > 0:
                    seen[var] = True
                    touched.append(var)
                    self._bump_var(var)
                    if self._levels[var] >= level:
                        counter += 1
                    else:
                        learned.append(reason_lit)
            while True:
                trail_lit = self._trail[index]
                index -= 1
                if seen[abs(trail_lit)]:
                    break
            lit = -trail_lit
            counter -= 1
            clause = self._reasons[abs(trail_lit)]
            if counter == 0:
                break
        learned[0] = lit
        learned = self._minimize_learned(learned)
        for var in touched:
            seen[var] = False
        if len(learned) == 1:
            return learned, 0
        backjump = 0
        swap_index = 1
        for position in range(1, len(learned)):
            var_level = self._levels[abs(learned[position])]
            if var_level > backjump:
                backjump = var_level
                swap_index = position
        learned[1], learned[swap_index] = learned[swap_index], learned[1]
        return learned, backjump

    def _minimize_learned(self, learned: list[int]) -> list[int]:
        """Drop literals whose reason clauses lie entirely inside the clause."""
        seen = self._seen
        kept = [learned[0]]
        for lit in learned[1:]:
            reason = self._reasons[abs(lit)]
            if reason is None:
                kept.append(lit)
                continue
            redundant = all(
                abs(other) == abs(lit)
                or seen[abs(other)]
                or self._levels[abs(other)] == 0
                for other in reason.lits
            )
            if not redundant:
                kept.append(lit)
        return kept

    def _analyze_final(self, failed: int) -> set[int]:
        """Assumptions responsible for the next assumption being false.

        ``failed`` is the assumption literal found falsified.  Walks the
        implication graph from ``-failed`` back to decision literals, which
        at this point in the search are all assumptions.
        """
        core: set[int] = {failed}
        var = abs(failed)
        if self._levels[var] == 0:
            return core
        marked = {var}
        for trail_lit in reversed(self._trail):
            trail_var = abs(trail_lit)
            if trail_var not in marked:
                continue
            reason = self._reasons[trail_var]
            if reason is None:
                core.add(trail_lit)
            else:
                for other in reason.lits:
                    other_var = abs(other)
                    if other_var != trail_var and self._levels[other_var] > 0:
                        marked.add(other_var)
        return core

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        boundary = self._trail_lim[level]
        for lit in reversed(self._trail[boundary:]):
            var = abs(lit)
            self._values[var] = _UNASSIGNED
            self._reasons[var] = None
            self._order.push(var)
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._propagate_head = min(self._propagate_head, len(self._trail))

    def _decide(self) -> int | None:
        values = self._values
        while True:
            var = self._order.pop()
            if var is None:
                return None
            if values[var] == _UNASSIGNED:
                return var if self._polarity[var] else -var

    def _learn(self, lits: list[int]) -> None:
        if len(lits) == 1:
            self._enqueue(lits[0], None)
            return
        clause = _Clause(list(lits), learned=True, activity=self._cla_inc)
        self._learned.append(clause)
        self._watch(clause)
        self._enqueue(lits[0], clause)

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for index in range(1, self._num_vars + 1):
                self._activity[index] *= 1e-100
            self._var_inc *= 1e-100
        self._order.update(var)

    def _bump_clause(self, clause: _Clause) -> None:
        if not clause.learned:
            return
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for learned in self._learned:
                learned.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _decay_activities(self) -> None:
        self._var_inc /= self._var_decay
        self._cla_inc /= self._cla_decay

    def _reduce_learned(self) -> None:
        """Drop the less active half of the learned clauses."""
        locked = {
            id(self._reasons[abs(lit)])
            for lit in self._trail
            if self._reasons[abs(lit)] is not None
        }
        self._learned.sort(key=lambda c: c.activity)
        half = len(self._learned) // 2
        dropped_ids = {
            id(c)
            for c in self._learned[:half]
            if id(c) not in locked and len(c.lits) > 2
        }
        if not dropped_ids:
            return
        self._learned = [c for c in self._learned if id(c) not in dropped_ids]
        for lit in list(self._watches):
            self._watches[lit] = [
                c for c in self._watches[lit] if id(c) not in dropped_ids
            ]


def _luby(index: int) -> int:
    """The Luby restart sequence (1-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    position = index - 1  # the classic formulation is 0-based
    size, seq = 1, 0
    while size < position + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != position:
        size = (size - 1) // 2
        seq -= 1
        position %= size
    return 1 << seq
