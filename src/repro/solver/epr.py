"""The EPR decision procedure (Theorem 3.3 of the paper).

:class:`EprSolver` decides satisfiability of conjunctions of closed
``exists*forall*`` formulas over a vocabulary with stratified functions --
exactly the shape of every RML verification condition -- and, when
satisfiable, extracts a finite model as a
:class:`repro.logic.structures.Structure` (the finite model property in
action: these models are the paper's counterexamples to induction).

Pipeline per :meth:`EprSolver.check` call:

1. normalize each constraint (NNF, ite-elimination), skolemize its
   existentials into fresh constants -- sharing constants across disjuncts
   (:func:`repro.solver.split.hoist_existentials`) -- and name quantified
   disjuncts with selector propositions
   (:class:`repro.solver.split.DisjunctSplitter`) so universal blocks stay
   narrow;
2. compute the finite ground-term universe (stratified closure);
3. instantiate *small* universal blocks exhaustively; register blocks whose
   instance count exceeds a threshold for **model-based quantifier
   instantiation** (MBQI): they are only instantiated, on demand, over the
   representatives of the current candidate model;
4. Tseitin-encode the ground instances into a CDCL SAT solver, with one
   selector literal per *tracked* constraint;
5. run a CEGAR loop: refute equality-congruence violations (lazy congruence
   closure, :mod:`repro.solver.equality`) and violated lazy universal
   instances until a stable model emerges or the formula is refuted;
6. on sat, quotient the universe by the model's equality and read off a
   finite structure; on unsat, report the failed selectors as an unsat core
   over constraint names.

Symbols occurring in constraints but missing from the vocabulary (e.g. the
fresh constants a caller mints for diagram elements) are adopted
automatically: constants join the universe, relations and functions join
the congruence machinery; extraction still projects onto the declared
vocabulary.
"""

from __future__ import annotations

import hashlib
import itertools
import time
from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping

from .. import obs
from ..obs import profile
from ..logic import syntax as s
from ..logic.sorts import FuncDecl, RelDecl, Sort, Vocabulary
from ..recovery import heartbeat
from ..logic.structures import Elem, Structure
from ..logic.subst import FreshNames, substitute
from ..logic.transform import eliminate_ite, nnf, skolemize_ea
from .budget import Budget, BudgetExceeded, BudgetMeter, FailureReason
from .cache import query_cache
from .cnf import CnfBuilder, term_key
from .equality import EqualityTheory
from .grounding import (
    GroundingExplosion,
    ground_universe,
    instantiate_universals,
    _miniscope,
)
from .sat import Solver


@dataclass(frozen=True)
class EprResult:
    """Outcome of an EPR satisfiability check.

    Three verdicts, not two: ``satisfiable`` / refuted / **unknown**.  An
    unknown result (``unknown=True``, with ``satisfiable=False`` and a
    typed :class:`~repro.solver.budget.FailureReason` in ``failure``) means
    the query exhausted its resource budget or its worker died -- it proves
    nothing.  Callers that interpret "not satisfiable" as a proof MUST
    check ``unknown`` first; :attr:`is_unsat` bundles both checks.
    """

    satisfiable: bool
    model: Structure | None = None
    term_to_elem: Mapping[s.Term, Elem] | None = None
    core: frozenset[str] = frozenset()
    statistics: dict[str, int] = field(default_factory=dict)
    unknown: bool = False
    failure: FailureReason | None = None
    #: answered from the query cache (the authoritative signal for stats
    #: and metrics; ``statistics`` keeps its ``{"cache_hits": 1}`` shape
    #: for compatibility but is no longer sniffed to detect hits)
    cached: bool = False

    def __bool__(self) -> bool:
        return self.satisfiable

    @property
    def is_unsat(self) -> bool:
        """Conclusively refuted (not merely "no model produced")."""
        return not self.satisfiable and not self.unknown

    @property
    def verdict(self) -> str:
        if self.unknown:
            return "unknown"
        return "sat" if self.satisfiable else "unsat"


def unknown_result(
    reason: FailureReason, statistics: dict[str, int] | None = None
) -> EprResult:
    """An UNKNOWN outcome carrying its typed failure reason."""
    return EprResult(
        False, unknown=True, failure=reason, statistics=statistics or {}
    )


@dataclass(frozen=True)
class _Constraint:
    name: str
    formula: s.Formula
    tracked: bool


def _decl_key(decl) -> tuple[str, str]:
    """Stable sort key for relation/function declarations by kind + name."""
    return (type(decl).__name__, decl.name)


@dataclass(frozen=True)
class _LazyBlock:
    """A universal block instantiated on demand (MBQI)."""

    vars: tuple[s.Var, ...]
    matrix: s.Formula
    selector: int | None


class EprSolver:
    """Accumulates closed exists*forall* constraints and decides them.

    ``exclusive_tracked=True`` declares that tracked constraints will only
    ever be solved one at a time (:meth:`PreparedEpr.solve` with a single
    name).  Their Skolem constants are then drawn from one shared pool --
    exactly like disjuncts of a single formula -- which keeps the ground
    universe proportional to the *largest* tracked constraint instead of
    their total.  This is what makes batched Houdini over hundreds of
    template candidates feasible.
    """

    def __init__(
        self,
        vocab: Vocabulary,
        eager_threshold: int = 3000,
        exclusive_tracked: bool = False,
        canonical_models: bool = False,
        budget: Budget | None = None,
    ) -> None:
        self.vocab = vocab
        self.eager_threshold = eager_threshold
        self.exclusive_tracked = exclusive_tracked
        self.canonical_models = canonical_models
        self.budget = budget if budget is not None and not budget.unlimited else None
        self._constraints: list[_Constraint] = []
        self._names: set[str] = set()

    def add(self, formula: s.Formula, name: str | None = None, track: bool = False) -> str:
        """Add a constraint; returns its (possibly generated) name.

        Tracked constraints participate in unsat cores; untracked ones are
        hard background (axioms, transition encodings).
        """
        if name is None:
            name = f"c{len(self._constraints)}"
        if name in self._names:
            raise ValueError(f"duplicate constraint name {name!r}")
        self._names.add(name)
        self._constraints.append(_Constraint(name, formula, track))
        return name

    def add_all(self, formulas: Iterable[s.Formula]) -> None:
        for formula in formulas:
            self.add(formula)

    # ------------------------------------------------------------- checking

    def prepare(self) -> "PreparedEpr":
        """Ground all constraints once, returning a reusable solver instance.

        The returned :class:`PreparedEpr` can be solved repeatedly under
        different subsets of the *tracked* constraints -- the deletion-based
        core minimization of the auto-generalizer re-solves dozens of
        subsets, and sharing the grounding makes each re-solve a plain
        incremental SAT call.

        When the solver carries a :class:`Budget`, grounding runs under a
        fresh meter: the wall deadline and the grounded-instance cap are
        checked cooperatively, raising :class:`BudgetExceeded` (use
        :meth:`check` for the catching, UNKNOWN-returning wrapper).
        """
        with obs.span("epr.prepare", constraints=len(self._constraints)) as sp:
            with profile.collect() as prof:
                prepared = self._prepare()
            sp.set(instances=prepared.instance_count)
            if prof is not None and prof.wall:
                phases = prof.attrs_ms()
                sp.set(**phases)
                profile.publish(prof)
                # Surfaced through the *first* solve's statistics so
                # SolverStats / bench telemetry aggregate prepare phases
                # exactly once per grounding.
                prepared._pending_phases = phases
            return prepared

    def _prepare(self) -> "PreparedEpr":
        from .split import DisjunctSplitter, SkolemPool, hoist_existentials

        meter = self.budget.start() if self.budget is not None else None

        with profile.phase("normalize"):
            working_vocab, adopted_constants = self._working_vocabulary()
            fresh = FreshNames(
                itertools.chain(
                    (decl.name for decl in working_vocab.relations),
                    (decl.name for decl in working_vocab.functions),
                )
            )
            splitter = DisjunctSplitter(fresh)
            shared_pool = SkolemPool(fresh) if self.exclusive_tracked else None
            skolemized: list[tuple[_Constraint, s.Formula]] = []
            extra_constants: list[FuncDecl] = list(adopted_constants)
            for constraint in self._constraints:
                pool = shared_pool if constraint.tracked else None
                hoisted, constants = hoist_existentials(
                    nnf(eliminate_ite(constraint.formula)), fresh, pool=pool
                )
                extra_constants.extend(constants)
                split = splitter.split(hoisted)
                result = skolemize_ea(split, fresh)
                skolemized.append((constraint, result.universal))
                extra_constants.extend(result.constants)

        universe = ground_universe(working_vocab, extra_constants, meter=meter)
        with profile.phase("cnf"):
            sat = Solver()
            builder = CnfBuilder(sat)
            equality = EqualityTheory(builder, working_vocab, universe)
        prepared = PreparedEpr(
            self, working_vocab, universe, sat, builder, equality,
            exclusive=self.exclusive_tracked,
        )
        prepared._meter = meter

        with profile.phase("cnf"):
            for constraint, universal in skolemized:
                selector: int | None = None
                if constraint.tracked:
                    selector = sat.new_var()
                    prepared.selector_of[constraint.name] = selector
                    prepared.selectors[selector] = constraint.name
                for vars_, matrix in _miniscope(universal):
                    count = 1
                    for var in vars_:
                        count *= len(universe[var.sort])
                    if count > self.eager_threshold and vars_:
                        prepared.lazy_blocks.append(
                            _LazyBlock(tuple(vars_), matrix, selector)
                        )
                        continue
                    if not vars_:
                        prepared.assert_instance(matrix, selector)
                        continue
                    domains = [universe[var.sort] for var in vars_]
                    for combo in itertools.product(*domains):
                        instance = substitute(matrix, dict(zip(vars_, combo)))
                        prepared.assert_instance(instance, selector)
        prepared._meter = None
        return prepared

    def check(self, max_rounds: int = 10_000) -> EprResult:
        """Decide the conjunction of all added constraints.

        Degrades gracefully: a grounding explosion or an exhausted budget
        yields an UNKNOWN :class:`EprResult` (with the typed failure
        reason) instead of an exception.
        """
        try:
            prepared = self.prepare()
        except BudgetExceeded as exceeded:
            return unknown_result(exceeded.reason)
        except GroundingExplosion:
            return unknown_result(FailureReason.GROUNDING_BLOWUP)
        return prepared.solve(max_rounds=max_rounds)

    # --------------------------------------------------- MBQI refinement

    def _refine_lazy(
        self,
        lazy_blocks: list[_LazyBlock],
        universe: Mapping[Sort, list[s.Term]],
        reps: Mapping[s.Term, s.Term],
        builder: CnfBuilder,
        model: dict[int, bool],
        assert_instance,
        meter: BudgetMeter | None = None,
    ) -> int:
        """Instantiate lazy universal blocks over the model's representatives,
        asserting every instance the current model falsifies."""
        rep_terms: dict[Sort, list[s.Term]] = {}
        for sort, terms in universe.items():
            rep_terms[sort] = sorted({reps[t] for t in terms}, key=term_key)
        # The truth of r(t..) in the candidate *quotient* model: some true
        # atom exists whose argument classes match.  This is exactly how
        # model extraction reads relations, so an instance this evaluator
        # accepts is an instance the extracted structure satisfies.
        true_canon: set[tuple[RelDecl, tuple[s.Term, ...]]] = set()
        for atom, var in builder.atoms.items():
            if isinstance(atom, s.Rel) and model.get(var, False):
                true_canon.add((atom.rel, tuple(reps[arg] for arg in atom.args)))
        added = 0
        evaluated = 0
        for block in lazy_blocks:
            if block.selector is not None and not model.get(block.selector, False):
                continue  # tracked constraint currently disabled
            domains = [rep_terms[var.sort] for var in block.vars]
            env: dict[s.Var, s.Term] = {}
            for combo in itertools.product(*domains):
                evaluated += 1
                if meter is not None and evaluated % 256 == 0:
                    meter.check_deadline()
                env = dict(zip(block.vars, combo))
                if self._eval_in_env(block.matrix, env, true_canon, reps):
                    continue
                instance = substitute(block.matrix, env)
                if assert_instance(instance, block.selector):
                    added += 1
        return added

    def _term_rep(
        self, term: s.Term, env: Mapping[s.Var, s.Term], reps: Mapping[s.Term, s.Term]
    ) -> s.Term:
        if isinstance(term, s.Var):
            return env[term]  # bound to a representative already
        assert isinstance(term, s.App)
        if not term.args:
            return reps[term]
        args = tuple(self._term_rep(arg, env, reps) for arg in term.args)
        return reps[s.App(term.func, args)]

    def _eval_in_env(
        self,
        formula: s.Formula,
        env: Mapping[s.Var, s.Term],
        true_canon: set[tuple[RelDecl, tuple[s.Term, ...]]],
        reps: Mapping[s.Term, s.Term],
    ) -> bool:
        """Evaluate a QF matrix in the candidate quotient model under ``env``.

        Relation atoms with no true representative-signature atom default to
        false, matching model extraction.  Avoids building substituted ASTs:
        only instances found violated get materialized.
        """
        if isinstance(formula, s.Rel):
            signature = tuple(self._term_rep(arg, env, reps) for arg in formula.args)
            return (formula.rel, signature) in true_canon
        if isinstance(formula, s.Eq):
            return self._term_rep(formula.lhs, env, reps) == self._term_rep(
                formula.rhs, env, reps
            )
        if isinstance(formula, s.Not):
            return not self._eval_in_env(formula.arg, env, true_canon, reps)
        if isinstance(formula, s.And):
            return all(
                self._eval_in_env(a, env, true_canon, reps) for a in formula.args
            )
        if isinstance(formula, s.Or):
            return any(
                self._eval_in_env(a, env, true_canon, reps) for a in formula.args
            )
        if isinstance(formula, s.Implies):
            return (not self._eval_in_env(formula.lhs, env, true_canon, reps)) or (
                self._eval_in_env(formula.rhs, env, true_canon, reps)
            )
        if isinstance(formula, s.Iff):
            return self._eval_in_env(formula.lhs, env, true_canon, reps) == (
                self._eval_in_env(formula.rhs, env, true_canon, reps)
            )
        raise TypeError(f"not a ground formula: {formula!r}")

    # -------------------------------------------------- working vocabulary

    def _working_vocabulary(self) -> tuple[Vocabulary, list[FuncDecl]]:
        """Adopt symbols used in constraints but absent from the vocabulary."""
        extra_relations: list[RelDecl] = []
        extra_functions: list[FuncDecl] = []
        adopted_constants: list[FuncDecl] = []
        known = set(self.vocab.relations) | set(self.vocab.functions)
        seen: set = set(known)
        for constraint in self._constraints:
            # Deterministic adoption order: symbols_of returns a frozenset,
            # and frozenset iteration order varies with hash randomization.
            # Adoption order decides universe and SAT-variable numbering,
            # which the query fingerprint hashes -- iterating the raw set
            # would give every interpreter its own cache keys, defeating
            # the cross-process disk cache.
            for decl in sorted(s.symbols_of(constraint.formula), key=_decl_key):
                if decl in seen:
                    continue
                seen.add(decl)
                if decl.name in self.vocab:
                    raise ValueError(
                        f"symbol {decl.name!r} conflicts with the vocabulary"
                    )
                if isinstance(decl, RelDecl):
                    extra_relations.append(decl)
                else:
                    extra_functions.append(decl)
                    if decl.is_constant:
                        adopted_constants.append(decl)
        if not extra_relations and not extra_functions:
            return self.vocab, []
        working = self.vocab.extended(
            relations=extra_relations, functions=extra_functions
        )
        return working, adopted_constants

    @staticmethod
    def _stats(
        sat: Solver, instances: int, rounds: int, congruence: int, lazy: int
    ) -> dict[str, int]:
        return {
            "instances": instances,
            "cegar_rounds": rounds,
            "congruence_clauses": congruence,
            "lazy_instances": lazy,
            "sat_vars": sat.num_vars,
            **sat.statistics,
        }

    # ----------------------------------------------------- model extraction

    def _extract(
        self,
        builder: CnfBuilder,
        model: dict[int, bool],
        reps: Mapping[s.Term, s.Term],
        universe: Mapping[Sort, list[s.Term]],
        working_vocab: Vocabulary,
    ) -> tuple[Structure, dict[s.Term, Elem]]:
        elem_of_rep: dict[s.Term, Elem] = {}
        domain: dict[Sort, tuple[Elem, ...]] = {}
        for sort in self.vocab.sorts:
            class_reps = sorted({reps[term] for term in universe[sort]}, key=term_key)
            elems = tuple(
                Elem(f"{sort.name}{index}", sort) for index in range(len(class_reps))
            )
            domain[sort] = elems
            for rep, elem in zip(class_reps, elems):
                elem_of_rep[rep] = elem
        term_to_elem = {
            term: elem_of_rep[reps[term]]
            for sort in self.vocab.sorts
            for term in universe[sort]
        }

        positive: dict[RelDecl, set[tuple[Elem, ...]]] = {
            rel: set() for rel in self.vocab.relations
        }
        for atom, var in builder.atoms.items():
            if not isinstance(atom, s.Rel) or not model.get(var, False):
                continue
            if atom.rel not in positive:
                continue  # selector or adopted symbol, not in the base vocabulary
            positive[atom.rel].add(tuple(term_to_elem[arg] for arg in atom.args))
        rels = {rel: frozenset(tuples) for rel, tuples in positive.items()}

        funcs: dict[FuncDecl, dict[tuple[Elem, ...], Elem]] = {}
        rep_term_of_elem = {elem: rep for rep, elem in elem_of_rep.items()}
        for func in self.vocab.functions:
            table: dict[tuple[Elem, ...], Elem] = {}
            for elem_args in itertools.product(
                *(domain[sort] for sort in func.arg_sorts)
            ):
                term_args = tuple(rep_term_of_elem[elem] for elem in elem_args)
                value_term = s.App(func, term_args)
                table[elem_args] = term_to_elem[value_term]
            funcs[func] = table

        structure = Structure(self.vocab, domain, rels, funcs)
        return structure, term_to_elem


class PreparedEpr:
    """A grounded EPR instance supporting repeated subset solves.

    ``solve(enabled)`` decides the untracked constraints conjoined with the
    tracked constraints whose names are in ``enabled`` (all of them when
    ``enabled`` is None).  Congruence clauses and lazy universal instances
    learned by earlier solves persist: congruence clauses are theory-valid,
    and lazy instances carry their constraint's selector, so they only bite
    when that constraint is enabled.
    """

    def __init__(
        self, owner, working_vocab, universe, sat, builder, equality, exclusive=False
    ):
        self._owner = owner
        self.exclusive = exclusive
        self.working_vocab = working_vocab
        self.universe = universe
        self.sat = sat
        self.builder = builder
        self.equality = equality
        self.selectors: dict[int, str] = {}
        self.selector_of: dict[str, int] = {}
        self.lazy_blocks: list[_LazyBlock] = []
        self._asserted: set[s.Formula] = set()
        self.instance_count = 0
        self._digest: str | None = None
        self._meter: BudgetMeter | None = None  # active during prepare/solve
        self._pending_phases: dict[str, int] = {}  # prepare phases, unreported

    def assert_instance(self, instance: s.Formula, selector: int | None) -> bool:
        if self._meter is not None:
            self._meter.charge_instances()
        if selector is None:
            if instance in self._asserted:
                return False
            self._asserted.add(instance)
        self.builder.assert_formula(instance, selector)
        self.instance_count += 1
        return True

    def solve(
        self, enabled: Iterable[str] | None = None, max_rounds: int = 10_000
    ) -> EprResult:
        with obs.span("epr.solve") as sp:
            with profile.collect() as prof:
                outcome = self._solve(enabled, max_rounds)
            statistics = outcome.statistics
            if prof is not None and prof.wall:
                phases = prof.attrs_ms()
                sp.set(**phases)
                profile.publish(prof)
                if not outcome.cached:
                    # Cached hits keep their bare ``{"cache_hits": 1}``
                    # statistics shape; their (tiny) lookup wall still
                    # lands on the span and in the metrics histogram.
                    statistics.update(phases)
            if self._pending_phases and not outcome.cached:
                # Prepare-time phases (normalize/ground/cnf) ride the first
                # *solved* query's statistics; they are not set on this
                # span -- they already live on the epr.prepare span, and
                # hotspot reports sum phases across both span kinds.
                statistics.update(self._pending_phases)
                self._pending_phases = {}
            sp.set(
                verdict=outcome.verdict,
                cached=outcome.cached,
                instances=statistics.get("instances", self.instance_count),
                solve_ms=statistics.get("solve_ms", 0),
                cegar_rounds=statistics.get("cegar_rounds", 0),
                conflicts=statistics.get("conflicts", 0),
            )
            if obs.metrics_enabled():
                obs.inc("queries_total", verdict=outcome.verdict)
                if outcome.cached:
                    obs.inc("cache_hits_total")
                else:
                    obs.inc("cache_misses_total")
                    obs.observe(
                        "query_latency_ms", statistics.get("solve_ms", 0)
                    )
                    obs.observe("grounded_instances", self.instance_count)
            return outcome

    def _solve(
        self, enabled: Iterable[str] | None = None, max_rounds: int = 10_000
    ) -> EprResult:
        if enabled is None:
            if self.exclusive and len(self.selectors) > 1:
                raise ValueError(
                    "exclusive_tracked solvers must enable one constraint at a time"
                )
            assumptions = sorted(self.selectors)
        else:
            names = set(enabled)
            if self.exclusive and len(names) > 1:
                raise ValueError(
                    "exclusive_tracked solvers must enable one constraint at a time"
                )
            unknown = names - set(self.selector_of)
            if unknown:
                raise KeyError(f"unknown tracked constraints: {sorted(unknown)}")
            assumptions = sorted(self.selector_of[name] for name in names)
        owner = self._owner
        cache = query_cache()
        key = None
        if cache is not None:
            # Fingerprinting hashes a repr of the whole grounded problem;
            # it is cache-key work and billed to the cache phase.
            with profile.phase("cache"):
                key = (self._fingerprint(), tuple(assumptions))
            hit = cache.lookup(key)
            if hit is not None:
                # Solving is deterministic downstream of the grounded CNF
                # and assumptions, so the stored result is exactly what a
                # re-solve would compute; only the statistics differ.
                return replace(hit, statistics={"cache_hits": 1}, cached=True)
        start = time.perf_counter()
        counters = {"rounds": 0, "congruence": 0, "lazy": 0}
        self._meter = owner.budget.start() if owner.budget is not None else None
        try:
            result, reps = self._stable_solve(assumptions, counters, max_rounds)
            if result.satisfiable and owner.canonical_models:
                result, reps = self._canonicalize(
                    assumptions, result, reps, counters, max_rounds
                )
        except BudgetExceeded as exceeded:
            statistics = owner._stats(
                self.sat, self.instance_count, counters["rounds"],
                counters["congruence"], counters["lazy"],
            )
            statistics["solve_ms"] = int((time.perf_counter() - start) * 1000)
            # UNKNOWN proves nothing and must never be served from cache.
            return unknown_result(exceeded.reason, statistics)
        finally:
            self._meter = None
        statistics = owner._stats(
            self.sat, self.instance_count, counters["rounds"],
            counters["congruence"], counters["lazy"],
        )
        statistics["solve_ms"] = int((time.perf_counter() - start) * 1000)
        if not result.satisfiable:
            core = frozenset(
                self.selectors[lit] for lit in result.core if lit in self.selectors
            )
            outcome = EprResult(False, core=core, statistics=statistics)
        else:
            with profile.phase("extract"):
                structure, term_to_elem = owner._extract(
                    self.builder, result.model, reps, self.universe,
                    self.working_vocab,
                )
            outcome = EprResult(
                True,
                model=structure,
                term_to_elem=term_to_elem,
                statistics=statistics,
            )
        if cache is not None:
            cache.store(key, outcome)
        return outcome

    def _fingerprint(self) -> str:
        """Content hash of the grounded problem, computed once on first use.

        Captured before any solving mutates the clause database, the digest
        covers the SAT snapshot (variables, root units, problem clauses),
        the lazy universal blocks, the tracked-selector assignment, and the
        working vocabulary/universe shape -- everything the answer and the
        extracted model can depend on.
        """
        if self._digest is None:
            digest = hashlib.sha256()
            digest.update(repr(self.sat.snapshot()).encode())
            # The CEGAR loop's behaviour depends on what each SAT variable
            # *means* (congruence refutation, MBQI evaluation), not just on
            # the clause shapes -- the atom map must be part of the key.
            digest.update(
                repr(sorted(
                    (var, atom) for atom, var in self.builder.atoms.items()
                )).encode()
            )
            digest.update(
                repr([
                    (block.vars, block.matrix, block.selector)
                    for block in self.lazy_blocks
                ]).encode()
            )
            digest.update(repr(sorted(self.selectors.items())).encode())
            digest.update(
                repr((
                    sorted(decl.name for decl in self.working_vocab.relations),
                    sorted(decl.name for decl in self.working_vocab.functions),
                    sorted(
                        (sort.name, len(terms))
                        for sort, terms in self.universe.items()
                    ),
                    self._owner.canonical_models,
                )).encode()
            )
            self._digest = digest.hexdigest()
        return self._digest

    def _stable_solve(self, assumptions, counters, max_rounds):
        """Run the CEGAR loop to a stable SAT model (with its equality
        representatives) or an UNSAT result; refutes congruence violations
        and violated lazy universal instances along the way."""
        owner = self._owner
        while True:
            counters["rounds"] += 1
            if counters["rounds"] > max_rounds:
                raise RuntimeError("instantiation/congruence loop failed to converge")
            heartbeat.beat()  # liveness for the pool watchdog
            if self._meter is not None:
                self._meter.check_deadline()
            result = self.sat.solve(assumptions, self._meter)
            if not result.satisfiable:
                return result, None
            with profile.phase("theory"):
                reps = self.equality.classes(result.model)
                violations = self.equality.congruence_violations(
                    result.model, reps
                )
            if violations:
                with profile.phase("theory"):
                    for clause in violations:
                        self.sat.add_clause(clause)
                        counters["congruence"] += 1
                continue
            with profile.phase("theory"):
                new_instances = owner._refine_lazy(
                    self.lazy_blocks, self.universe, reps, self.builder,
                    result.model, self.assert_instance, meter=self._meter,
                )
            if new_instances:
                counters["lazy"] += new_instances
                continue
            return result, reps

    def _canonicalize(self, assumptions, result, reps, counters, max_rounds):
        """Refine a stable model into the lexicographically sparsest one.

        Scans base-vocabulary relation atoms in a fixed semantic order --
        sorted by ``(relation name, argument term keys)`` -- and greedily
        commits each to false whenever a stable model allows it (one
        assumption-based re-solve per atom that is currently true).  The
        scan repeats because MBQI trials can mint new ground atoms.  The
        outcome is model-choice determinism: solver heuristics (decision
        order, phase saving, restart timing) no longer pick which of several
        minimal models is returned.
        """
        base_rels = set(self._owner.vocab.relations)
        forced: list[int] = []
        decided: set[int] = set()
        while True:
            # The scan itself is model post-processing; the phase block
            # closes before the per-atom re-solves (which time their own
            # sat/theory phases), keeping phases disjoint.
            with profile.phase("extract"):
                pending = sorted(
                    ((atom.rel.name, tuple(term_key(a) for a in atom.args)), var)
                    for atom, var in self.builder.atoms.items()
                    if isinstance(atom, s.Rel)
                    and atom.rel in base_rels
                    and var not in decided
                )
            if not pending:
                return result, reps
            for _, var in pending:
                decided.add(var)
                if not result.model.get(var, False):
                    forced.append(-var)
                    continue
                trial, trial_reps = self._stable_solve(
                    assumptions + forced + [-var], counters, max_rounds
                )
                if trial.satisfiable:
                    forced.append(-var)
                    result, reps = trial, trial_reps
                else:
                    forced.append(var)


def solve_epr(
    vocab: Vocabulary,
    formulas: Iterable[s.Formula | tuple[str, s.Formula]],
    tracked: Iterable[tuple[str, s.Formula]] = (),
) -> EprResult:
    """One-shot convenience wrapper around :class:`EprSolver`."""
    solver = EprSolver(vocab)
    for item in formulas:
        if isinstance(item, tuple):
            solver.add(item[1], name=item[0])
        else:
            solver.add(item)
    for name, formula in tracked:
        solver.add(formula, name=name, track=True)
    return solver.check()
