"""Ground equality theory, enforced lazily.

The grounding of :mod:`repro.solver.grounding` treats ``=`` as an ordinary
predicate over ground terms, so the equality axioms must be supplied:

* **reflexivity** is folded away during canonicalization (``t = t`` is
  true) and **symmetry** holds because each unordered pair has a single
  variable;
* **transitivity** and **congruence** are enforced *lazily*: a candidate
  SAT model's true equalities induce a union-find quotient; the theory then
  reports refutation clauses for

  - equality atoms assigned false whose endpoints the quotient merged
    (transitivity violations, refuted with a chain of triangle clauses
    along the connecting path),
  - function applications with congruent arguments in different classes,
  - relation atoms with congruent argument tuples but different truth
    values.

Eager per-sort transitivity would be cubic in the ground universe --
transition unrollings of protocols with function state (e.g. the
distributed lock's per-step ``ep`` versions, each contributing ``|node|``
epoch terms) push universes past a hundred terms per sort, where ``n^3``
clauses dominate everything.  Lazily, only the equalities the formula (or
an earlier refutation) actually mentions cost anything.

Termination: every reported clause is violated by the current model and
drawn from a finite space (triples/pairs over the finite universe), so the
CEGAR loop in :mod:`repro.solver.epr` converges.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Mapping

from ..logic import syntax as s
from ..logic.sorts import Sort, Vocabulary
from .cnf import CnfBuilder, term_key


class EqualityTheory:
    """Manages equality reasoning over a ground universe, lazily."""

    def __init__(
        self,
        builder: CnfBuilder,
        vocab: Vocabulary,
        universe: Mapping[Sort, list[s.Term]],
    ) -> None:
        self.builder = builder
        self.vocab = vocab
        self.universe = {sort: list(terms) for sort, terms in universe.items()}

    # ------------------------------------------------------------- quotient

    def _true_edges(self, model: dict[int, bool]) -> dict[s.Term, list[s.Term]]:
        adjacency: dict[s.Term, list[s.Term]] = {}
        for atom, var in self.builder.atoms.items():
            if isinstance(atom, s.Eq) and model.get(var, False):
                adjacency.setdefault(atom.lhs, []).append(atom.rhs)
                adjacency.setdefault(atom.rhs, []).append(atom.lhs)
        return adjacency

    def classes(self, model: dict[int, bool]) -> dict[s.Term, s.Term]:
        """Map each universe term to its class representative under ``model``.

        Classes are the connected components of the true-equality graph;
        representatives are the lexicographically least member (by
        :func:`term_key`), making extraction deterministic.
        """
        adjacency = self._true_edges(model)
        reps: dict[s.Term, s.Term] = {}
        seen: set[s.Term] = set()
        for terms in self.universe.values():
            for term in terms:
                if term in seen:
                    continue
                component = self._component(term, adjacency)
                seen |= component
                rep = min(component, key=term_key)
                for member in component:
                    reps[member] = rep
        # Terms that appear in equality atoms but lie outside the universe
        # cannot exist: atoms are built from universe terms only.
        return reps

    @staticmethod
    def _component(start: s.Term, adjacency) -> set[s.Term]:
        component = {start}
        queue = deque([start])
        while queue:
            term = queue.popleft()
            for neighbor in adjacency.get(term, ()):
                if neighbor not in component:
                    component.add(neighbor)
                    queue.append(neighbor)
        return component

    def _path(self, start: s.Term, goal: s.Term, adjacency) -> list[s.Term]:
        """A path of true equality edges from ``start`` to ``goal``."""
        parents: dict[s.Term, s.Term] = {start: start}
        queue = deque([start])
        while queue:
            term = queue.popleft()
            if term == goal:
                break
            for neighbor in adjacency.get(term, ()):
                if neighbor not in parents:
                    parents[neighbor] = term
                    queue.append(neighbor)
        path = [goal]
        while path[-1] != start:
            path.append(parents[path[-1]])
        path.reverse()
        return path

    # ------------------------------------------------------------ violations

    def congruence_violations(
        self, model: dict[int, bool], reps: dict[s.Term, s.Term]
    ) -> list[list[int]]:
        """Refutation clauses for equality semantics violated by the model."""
        clauses: list[list[int]] = []
        clauses.extend(self._transitivity_violations(model, reps))
        clauses.extend(self._function_violations(model, reps))
        clauses.extend(self._relation_violations(model, reps))
        return clauses

    def _transitivity_violations(
        self, model: dict[int, bool], reps: dict[s.Term, s.Term]
    ) -> list[list[int]]:
        """False equality atoms whose endpoints the quotient merged.

        Refuted with triangle clauses along the connecting path:
        ``eq(t0,ti-1) & eq(ti-1,ti) -> eq(t0,ti)`` for each prefix, ending
        at the falsified atom.  New intermediate equality variables are
        created on demand.
        """
        clauses: list[list[int]] = []
        adjacency = None
        for atom, var in list(self.builder.atoms.items()):
            if not isinstance(atom, s.Eq) or model.get(var, False):
                continue
            lhs, rhs = atom.lhs, atom.rhs
            if reps.get(lhs) != reps.get(rhs) or lhs == rhs:
                continue
            if adjacency is None:
                adjacency = self._true_edges(model)
            path = self._path(lhs, rhs, adjacency)
            for index in range(2, len(path)):
                prefix = self.builder.eq_lit(path[0], path[index - 1])
                edge = self.builder.eq_lit(path[index - 1], path[index])
                conclusion = self.builder.eq_lit(path[0], path[index])
                clauses.append([-prefix, -edge, conclusion])
        return clauses

    def _function_violations(
        self, model: dict[int, bool], reps: dict[s.Term, s.Term]
    ) -> list[list[int]]:
        clauses: list[list[int]] = []
        for func in self.vocab.proper_functions():
            groups: dict[tuple[s.Term, ...], list[s.App]] = {}
            for term in self.universe[func.sort]:
                if isinstance(term, s.App) and term.func == func:
                    signature = tuple(reps[arg] for arg in term.args)
                    groups.setdefault(signature, []).append(term)
            for members in groups.values():
                anchor = members[0]
                for other in members[1:]:
                    if reps[anchor] == reps[other]:
                        continue
                    clause = [self.builder.eq_lit(anchor, other)]
                    for arg_a, arg_b in zip(anchor.args, other.args):
                        if arg_a != arg_b:
                            clause.append(-self.builder.eq_lit(arg_a, arg_b))
                    clauses.append(clause)
        return clauses

    def _relation_violations(
        self, model: dict[int, bool], reps: dict[s.Term, s.Term]
    ) -> list[list[int]]:
        clauses: list[list[int]] = []
        by_relation: dict[object, list[tuple[s.Rel, int]]] = {}
        for atom, var in self.builder.atoms.items():
            if isinstance(atom, s.Rel):
                by_relation.setdefault(atom.rel, []).append((atom, var))
        for atoms in by_relation.values():
            groups: dict[tuple[s.Term, ...], list[tuple[s.Rel, int]]] = {}
            for atom, var in atoms:
                signature = tuple(reps[arg] for arg in atom.args)
                groups.setdefault(signature, []).append((atom, var))
            for members in groups.values():
                anchor_atom, anchor_var = members[0]
                anchor_value = model.get(anchor_var, False)
                for atom, var in members[1:]:
                    if model.get(var, False) == anchor_value:
                        continue
                    premise = []
                    for arg_a, arg_b in zip(anchor_atom.args, atom.args):
                        if arg_a != arg_b:
                            premise.append(-self.builder.eq_lit(arg_a, arg_b))
                    clauses.append(premise + [-anchor_var, var])
                    clauses.append(premise + [anchor_var, -var])
        return clauses
