"""Decision procedures: CDCL SAT, grounding, and the EPR solver.

This package replaces the paper's use of Z3.  The public entry points are
:class:`~repro.solver.epr.EprSolver` / :func:`~repro.solver.epr.solve_epr`
for EPR satisfiability with finite-model extraction and unsat cores, and
:class:`~repro.solver.sat.Solver` for raw propositional problems.
"""

from .budget import (
    Budget,
    BudgetExceeded,
    BudgetMeter,
    FailureReason,
    resolve_budget,
    resolve_retries,
)
from .cache import DiskCache, QueryCache, install_cache, query_cache
from .cnf import CnfBuilder, term_key
from .dispatch import (
    Query,
    query_of,
    resolve_jobs,
    shutdown_pool,
    solve_queries,
    worker_pool,
)
from .epr import EprResult, EprSolver, solve_epr, unknown_result
from .equality import EqualityTheory
from .faults import FaultPlan, install_fault_plan, parse_fault_spec
from .grounding import (
    GroundingExplosion,
    check_universe_closed,
    ground_universe,
    instantiate_universals,
    universe_size,
)
from .sat import SatResult, Solver
from .stats import SolverStats

__all__ = [
    "Budget",
    "BudgetExceeded",
    "BudgetMeter",
    "CnfBuilder",
    "DiskCache",
    "EprResult",
    "EprSolver",
    "EqualityTheory",
    "FailureReason",
    "FaultPlan",
    "GroundingExplosion",
    "Query",
    "QueryCache",
    "SatResult",
    "Solver",
    "SolverStats",
    "check_universe_closed",
    "ground_universe",
    "install_cache",
    "install_fault_plan",
    "instantiate_universals",
    "parse_fault_spec",
    "query_cache",
    "query_of",
    "resolve_budget",
    "resolve_jobs",
    "resolve_retries",
    "shutdown_pool",
    "solve_epr",
    "solve_queries",
    "worker_pool",
    "term_key",
    "universe_size",
    "unknown_result",
]
