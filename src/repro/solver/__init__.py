"""Decision procedures: CDCL SAT, grounding, and the EPR solver.

This package replaces the paper's use of Z3.  The public entry points are
:class:`~repro.solver.epr.EprSolver` / :func:`~repro.solver.epr.solve_epr`
for EPR satisfiability with finite-model extraction and unsat cores, and
:class:`~repro.solver.sat.Solver` for raw propositional problems.
"""

from .cnf import CnfBuilder, term_key
from .epr import EprResult, EprSolver, solve_epr
from .equality import EqualityTheory
from .grounding import (
    GroundingExplosion,
    check_universe_closed,
    ground_universe,
    instantiate_universals,
    universe_size,
)
from .sat import SatResult, Solver

__all__ = [
    "CnfBuilder",
    "EprResult",
    "EprSolver",
    "EqualityTheory",
    "GroundingExplosion",
    "SatResult",
    "Solver",
    "check_universe_closed",
    "ground_universe",
    "instantiate_universals",
    "solve_epr",
    "term_key",
    "universe_size",
]
