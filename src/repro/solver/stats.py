"""Structured solver statistics.

Every solver entry point in this codebase used to report an ad-hoc
``dict[str, int]`` of counters and callers folded them together with
copy-pasted ``_accumulate`` helpers.  :class:`SolverStats` is the one
record they now share: aggregate query counters (sat/unsat answers, cache
hits, queries dispatched to worker processes), the merged EPR/SAT engine
counters, and wall-clock time per named phase.

The raw ``statistics`` dicts on result objects (:class:`EprResult`,
:class:`~repro.core.bounded.BoundedResult`, ...) are kept for
compatibility; a :class:`SolverStats` absorbs them via :meth:`record` and
is what the ``--stats`` CLI flag prints.

The machine-readable superset of these counters lives in the
:mod:`repro.obs.metrics` registry (``--metrics FILE``): the solver layers
publish query verdicts, latency histograms, and fault counters there
directly, and :meth:`phase` mirrors its timings into the
``phase_seconds`` histogram, so the registry subsumes ``SolverStats``
without changing this API.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from .. import obs


@dataclass
class SolverStats:
    """Aggregate counters and per-phase timing for a batch of solver work."""

    queries: int = 0
    sat_answers: int = 0
    unsat_answers: int = 0
    unknown_answers: int = 0  # budget exhaustion / worker failure verdicts
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    dispatched: int = 0  # queries solved in worker processes
    retries: int = 0  # worker attempts re-queued after crash/kill
    worker_kills: int = 0  # hung workers SIGKILLed on deadline
    worker_crashes: int = 0  # workers that died without an answer
    serial_fallbacks: int = 0  # queries finished in-process after retries
    counters: dict[str, int] = field(default_factory=dict)
    phase_seconds: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------ recording

    def record(
        self,
        statistics: Mapping[str, int] | None = None,
        *,
        satisfiable: bool | None = None,
        unknown: bool = False,
        cached: bool = False,
        dispatched: bool = False,
    ) -> None:
        """Absorb one query outcome and its engine counters."""
        self.queries += 1
        if unknown:
            self.unknown_answers += 1
        elif satisfiable is True:
            self.sat_answers += 1
        elif satisfiable is False:
            self.unsat_answers += 1
        if cached:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        if dispatched:
            self.dispatched += 1
        if statistics:
            self.add_counters(statistics)

    def record_result(self, result, *, dispatched: bool = False) -> None:
        """Absorb an :class:`~repro.solver.epr.EprResult` directly.

        Cache hits are identified by the result's explicit ``cached`` flag
        -- not by sniffing ``result.statistics`` for a ``cache_hits`` key,
        which mislabels any result whose merged engine counters happen to
        carry that name.
        """
        self.record(
            result.statistics,
            satisfiable=result.satisfiable,
            unknown=getattr(result, "unknown", False),
            cached=getattr(result, "cached", False),
            dispatched=dispatched,
        )

    def note_cache(self, cache) -> None:
        """Accumulate eviction counts from a :class:`QueryCache` (or None).

        Accumulates rather than assigns so stats merged across multiple
        caches/engines do not under-report evictions.
        """
        if cache is not None:
            self.cache_evictions += cache.evictions

    def add_counters(self, statistics: Mapping[str, int]) -> None:
        for key, value in statistics.items():
            self.counters[key] = self.counters.get(key, 0) + value

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a named phase; nested/repeated phases accumulate."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + elapsed
            obs.observe("phase_seconds", elapsed, phase=name)

    def merge(self, other: "SolverStats") -> None:
        self.queries += other.queries
        self.sat_answers += other.sat_answers
        self.unsat_answers += other.unsat_answers
        self.unknown_answers += other.unknown_answers
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_evictions += other.cache_evictions
        self.dispatched += other.dispatched
        self.retries += other.retries
        self.worker_kills += other.worker_kills
        self.worker_crashes += other.worker_crashes
        self.serial_fallbacks += other.serial_fallbacks
        self.add_counters(other.counters)
        for name, seconds in other.phase_seconds.items():
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    # ------------------------------------------------------------ reporting

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of queries answered from the cache (0.0 when none ran)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def format(self) -> str:
        """A human-readable multi-line summary (what ``--stats`` prints)."""
        lines = ["solver statistics:"]
        verdicts = f"sat {self.sat_answers}, unsat {self.unsat_answers}"
        if self.unknown_answers:
            verdicts += f", unknown {self.unknown_answers}"
        lines.append(f"  queries        {self.queries} ({verdicts})")
        cache_line = (
            f"  cache          {self.cache_hits} hits / "
            f"{self.cache_misses} misses ({self.cache_hit_rate:.0%} hit rate)"
        )
        if self.cache_evictions:
            cache_line += f", {self.cache_evictions} evictions"
        lines.append(cache_line)
        lines.append(f"  dispatched     {self.dispatched} to worker processes")
        if self.retries or self.worker_kills or self.worker_crashes:
            lines.append(
                f"  faults         {self.worker_crashes} crashes, "
                f"{self.worker_kills} kills, {self.retries} retries, "
                f"{self.serial_fallbacks} serial fallbacks"
            )
        for key in sorted(self.counters):
            lines.append(f"  {key:14s} {self.counters[key]}")
        for name in sorted(self.phase_seconds):
            lines.append(f"  [{name}] {self.phase_seconds[name]:.2f}s")
        return "\n".join(lines)
