"""Definitional splitting of quantified disjunctions.

Negating a weakest precondition turns the conjunction over choice branches
into a *disjunction*, each disjunct carrying its own quantifiers (havoc
existentials, axiom-guard universals).  Prenexing such a formula merges all
those blocks into one prefix, and exhaustive instantiation of the merged
universal block is exponential in its width -- hundreds of variables for a
protocol VC.

The classical fix (polarity-aware definitional CNF, lifted to first order)
is applied here *before* skolemization, while every quantifier is still
local to its disjunct:

* ``D1 | D2`` with closed quantified disjuncts becomes
  ``(p1 | p2) & (p1 -> D1) & (p2 -> D2)`` for fresh nullary selector
  relations ``p_i`` -- only the implication direction is needed because the
  input is in negation normal form, so every named subformula occurs
  positively;
* each guard is *pushed through* the disjunct's quantifiers and conjunctions
  (:func:`push_guard`), leaving small independent universal blocks that the
  grounder's miniscoping instantiates separately;
* an ``Or`` with exactly one quantified disjunct needs no selector at all:
  the quantifier-free rest is pushed in directly.

The result is a conjunction-equivalent formula in the same exists*forall*
fragment whose universal blocks have the width of individual axioms (a
handful of variables) instead of the whole VC.
"""

from __future__ import annotations

from ..logic import syntax as s
from ..logic.sorts import FuncDecl, RelDecl
from ..logic.subst import FreshNames, fresh_var, substitute
from ..logic.transform import NotInFragment


class SkolemPool:
    """Shared (sort, index) -> constant pool for cross-formula Skolem reuse.

    Formulas that are never jointly asserted (alternative disjuncts, or
    tracked constraints solved one at a time) may reuse the same Skolem
    constants; the pool hands them out by position so the ground universe
    grows with the *widest* formula instead of the sum of all of them.
    """

    def __init__(self, fresh: FreshNames) -> None:
        self._fresh = fresh
        self._pool: dict[tuple[object, int], FuncDecl] = {}
        self.ordered: list[FuncDecl] = []

    def constant(self, sort, index: int) -> FuncDecl:
        key = (sort, index)
        const = self._pool.get(key)
        if const is None:
            const = FuncDecl(self._fresh(f"sk_{sort.name}{index}"), (), sort)
            self._pool[key] = const
            self.ordered.append(const)
        return const


def hoist_existentials(
    formula: s.Formula,
    fresh: FreshNames,
    pool: SkolemPool | None = None,
    base_counters: dict | None = None,
) -> tuple[s.Formula, list["FuncDecl"]]:
    """Skolemize every (positive) existential of an NNF formula in place.

    In negation normal form each existential occurs positively, so replacing
    its variables by fresh constants preserves satisfiability wherever the
    quantifier sits under conjunctions and disjunctions.  Existentials under
    a universal are outside exists*forall* and raise
    :class:`~repro.logic.transform.NotInFragment`.

    Two refinements matter for solver performance:

    * existentials in *different disjuncts* share Skolem constants --
      ``(exists x. P) | (exists x. Q)`` is ``exists x. (P | Q)``, so both
      sides may use the same constant.  A VC negating a weakest
      precondition has one disjunct per execution path, each mentioning the
      same havoc variables and the same negated conjecture; sharing keeps
      the ground universe (and hence the instantiation of high-arity
      axioms) small.  Constants are allocated per (sort, nesting index)
      with the index saved and restored around disjunct boundaries, and
      conjuncts advance the index so existentials that must coexist stay
      distinct.
    * doing all of this *before* :class:`DisjunctSplitter` makes splitting
      effective: once the existentials are constants, the quantified
      disjuncts of the VC are closed and can be named by nullary selectors.
    """
    if pool is None:
        pool = SkolemPool(fresh)
    before = len(pool.ordered)
    constant_for = pool.constant

    def walk(fml: s.Formula, under_forall: bool, counters: dict) -> s.Formula:
        if isinstance(fml, (s.Rel, s.Eq, s.Not)):
            return fml
        if isinstance(fml, s.And):
            return s.and_(*(walk(arg, under_forall, counters) for arg in fml.args))
        if isinstance(fml, s.Or):
            results = []
            merged = dict(counters)
            for arg in fml.args:
                local = dict(counters)
                results.append(walk(arg, under_forall, local))
                for sort, count in local.items():
                    if count > merged.get(sort, 0):
                        merged[sort] = count
            counters.clear()
            counters.update(merged)
            return s.or_(*results)
        if isinstance(fml, s.Forall):
            return s.forall(fml.vars, walk(fml.body, True, counters))
        if isinstance(fml, s.Exists):
            if under_forall:
                raise NotInFragment(
                    f"existential under a universal (not exists*forall*): {fml}"
                )
            mapping: dict[s.Var, s.Term] = {}
            for var in fml.vars:
                index = counters.get(var.sort, 0)
                counters[var.sort] = index + 1
                mapping[var] = s.App(constant_for(var.sort, index), ())
            return walk(substitute(fml.body, mapping), under_forall, counters)
        raise TypeError(f"formula not in NNF: {fml!r}")

    matrix = walk(formula, False, dict(base_counters or {}))
    return matrix, pool.ordered[before:]


def has_quantifier(formula: s.Formula) -> bool:
    if isinstance(formula, (s.Forall, s.Exists)):
        return True
    if isinstance(formula, s.Not):
        return has_quantifier(formula.arg)
    if isinstance(formula, (s.And, s.Or)):
        return any(has_quantifier(a) for a in formula.args)
    if isinstance(formula, (s.Implies, s.Iff)):
        return has_quantifier(formula.lhs) or has_quantifier(formula.rhs)
    return False


def push_guard(guard: s.Formula, formula: s.Formula) -> s.Formula:
    """An equivalent of ``guard | formula`` friendly to miniscoping.

    ``guard`` must be quantifier free and closed.  The disjunction is
    distributed over conjunctions and moved inside quantifiers (bound
    variables never occur in a closed guard, so this is sound).
    """
    if isinstance(formula, s.And):
        return s.and_(*(push_guard(guard, arg) for arg in formula.args))
    if isinstance(formula, (s.Forall, s.Exists)):
        guard_frees = s.free_vars(guard)
        vars_ = formula.vars
        body = formula.body
        clash = set(vars_) & guard_frees
        if clash:
            avoid = set(guard_frees | s.free_vars(body) | set(vars_))
            renaming: dict[s.Var, s.Term] = {}
            renamed = []
            for var in vars_:
                if var in clash:
                    new = fresh_var(var.name, var.sort, avoid)
                    avoid.add(new)
                    renaming[var] = new
                    renamed.append(new)
                else:
                    renamed.append(var)
            body = substitute(body, renaming)
            vars_ = tuple(renamed)
        ctor = s.forall if isinstance(formula, s.Forall) else s.exists
        return ctor(vars_, push_guard(guard, body))
    return s.or_(guard, formula)


class DisjunctSplitter:
    """Names quantified disjuncts with fresh selector relations."""

    def __init__(self, fresh: FreshNames) -> None:
        self._fresh = fresh
        self.selectors: list[RelDecl] = []

    def split(self, formula: s.Formula) -> s.Formula:
        """Rewrite an NNF formula; the result is equisatisfiable and every
        ``Or`` in it has at most one quantified argument with the rest of
        the arguments pushed inside it."""
        if isinstance(formula, s.And):
            return s.and_(*(self.split(arg) for arg in formula.args))
        if isinstance(formula, (s.Forall, s.Exists)):
            ctor = s.forall if isinstance(formula, s.Forall) else s.exists
            return ctor(formula.vars, self.split(formula.body))
        if isinstance(formula, s.Or):
            args = [self.split(arg) for arg in formula.args]
            quantified = [a for a in args if has_quantifier(a)]
            plain = [a for a in args if not has_quantifier(a)]
            if not quantified:
                return s.or_(*args)
            sides: list[s.Formula] = []
            if len(quantified) > 1:
                remaining: list[s.Formula] = []
                for disjunct in quantified:
                    if s.free_vars(disjunct):
                        # Cannot name an open disjunct with a nullary
                        # selector; leave it in place (rare -- only reachable
                        # through quantified disjunctions under universals).
                        remaining.append(disjunct)
                        continue
                    selector = RelDecl(self._fresh("dsel"), ())
                    self.selectors.append(selector)
                    atom = s.Rel(selector, ())
                    plain.append(atom)
                    sides.append(push_guard(s.not_(atom), disjunct))
                quantified = remaining
            if len(quantified) == 1:
                merged = push_guard(s.or_(*plain), quantified[0])
            else:
                merged = s.or_(*plain, *quantified)
            return s.and_(merged, *sides)
        return formula
