"""Resource budgets for solver queries.

EPR with stratified functions is decidable, but grounding blows up
combinatorially with sort bounds and unrolling depth: real runs routinely
hit queries 1000x slower than their siblings.  The engines survive this the
way IC3/PDR-family tools do -- every obligation carries a :class:`Budget`
and degrades to an UNKNOWN verdict instead of hanging when it runs out.

A :class:`Budget` is a declarative record of limits (wall-clock seconds,
SAT conflict/decision caps, a grounded-instance cap, an optional RSS cap
applied in worker processes).  At solve time it is started into a
:class:`BudgetMeter`, the mutable object the solver loops charge against;
an exhausted meter raises :class:`BudgetExceeded` carrying a typed
:class:`FailureReason`, which the EPR layer converts into an
``EprResult.unknown`` outcome.  Enforcement is *cooperative* inside the
process (periodic deadline and cap checks in the DPLL loop and during
grounding) and *external* in :mod:`repro.solver.dispatch` (per-worker
deadline with SIGKILL, retry with :meth:`Budget.escalated`).

``resolve_budget`` builds a budget from the ``REPRO_TIMEOUT``,
``REPRO_CONFLICT_BUDGET``, and ``REPRO_MEMORY_MB`` environment variables;
malformed values are ignored with a one-line stderr warning (see
:func:`warn_env`), never silently.
"""

from __future__ import annotations

import enum
import os
import sys
import time
from dataclasses import dataclass, replace


class FailureReason(enum.Enum):
    """Why a query failed to produce a SAT/UNSAT answer."""

    TIMEOUT = "timeout"  # wall-clock budget exhausted
    CONFLICT_BUDGET = "conflict-budget"  # SAT conflict/decision cap hit
    GROUNDING_BLOWUP = "grounding-blowup"  # ground universe/instances too big
    MEMORY = "memory"  # worker hit its RSS cap
    WORKER_CRASHED = "worker-crashed"  # worker died without an answer
    WEDGED = "wedged"  # worker stopped heartbeating and was killed


class BudgetExceeded(Exception):
    """A cooperative budget check failed; carries the typed reason."""

    def __init__(self, reason: FailureReason, detail: str = "") -> None:
        self.reason = reason
        self.detail = detail
        super().__init__(f"{reason.value}{': ' + detail if detail else ''}")


def warn_env(name: str, value: str, hint: str = "") -> None:
    """One-line stderr warning for a malformed environment variable.

    Used instead of silently falling back to the default: a typo'd
    ``REPRO_JOBS=8x`` quietly running serial wastes hours before anyone
    notices.
    """
    suffix = f" ({hint})" if hint else ""
    print(
        f"repro: warning: ignoring malformed {name}={value!r}{suffix}",
        file=sys.stderr,
    )


@dataclass(frozen=True)
class Budget:
    """Resource limits attached to one solver query.

    All fields are optional; ``None`` means unlimited.  ``wall_seconds``
    covers grounding plus each solve call; ``conflicts``/``decisions`` cap
    SAT search effort; ``instances`` caps grounded clauses (eager plus
    lazy); ``rss_mb`` is applied via ``resource.setrlimit`` inside worker
    processes only (the parent address space is never limited).
    """

    wall_seconds: float | None = None
    conflicts: int | None = None
    decisions: int | None = None
    instances: int | None = None
    rss_mb: int | None = None

    def start(self) -> "BudgetMeter":
        return BudgetMeter(self)

    def escalated(self, factor: float = 2.0) -> "Budget":
        """The budget for a retry: every effort limit multiplied up.

        The RSS cap escalates too -- an OOM-killed attempt retried with the
        same cap would just die again.
        """

        def scale(value, as_int=True):
            if value is None:
                return None
            scaled = value * factor
            return int(scaled) if as_int else scaled

        return replace(
            self,
            wall_seconds=scale(self.wall_seconds, as_int=False),
            conflicts=scale(self.conflicts),
            decisions=scale(self.decisions),
            instances=scale(self.instances),
            rss_mb=scale(self.rss_mb),
        )

    @property
    def unlimited(self) -> bool:
        return (
            self.wall_seconds is None
            and self.conflicts is None
            and self.decisions is None
            and self.instances is None
            and self.rss_mb is None
        )


class BudgetMeter:
    """A started budget: the deadline and the counters charged against it.

    One meter spans one unit of work (a ``prepare`` or one ``solve`` call
    including its CEGAR rounds).  Charging methods raise
    :class:`BudgetExceeded` the moment a limit is crossed; deadline checks
    are amortized on the cheap paths (decisions, instances) and exact on
    the expensive ones (conflicts).
    """

    __slots__ = ("budget", "deadline", "conflicts", "decisions", "instances")

    def __init__(self, budget: Budget) -> None:
        self.budget = budget
        self.deadline = (
            time.monotonic() + budget.wall_seconds
            if budget.wall_seconds is not None
            else None
        )
        self.conflicts = 0
        self.decisions = 0
        self.instances = 0

    def check_deadline(self) -> None:
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise BudgetExceeded(FailureReason.TIMEOUT)

    def charge_conflict(self) -> None:
        self.conflicts += 1
        cap = self.budget.conflicts
        if cap is not None and self.conflicts > cap:
            raise BudgetExceeded(
                FailureReason.CONFLICT_BUDGET, f"{self.conflicts} conflicts"
            )
        self.check_deadline()

    def charge_decision(self) -> None:
        self.decisions += 1
        cap = self.budget.decisions
        if cap is not None and self.decisions > cap:
            raise BudgetExceeded(
                FailureReason.CONFLICT_BUDGET, f"{self.decisions} decisions"
            )
        if self.decisions % 2048 == 0:
            self.check_deadline()

    def charge_instances(self, count: int = 1) -> None:
        self.instances += count
        cap = self.budget.instances
        if cap is not None and self.instances > cap:
            raise BudgetExceeded(
                FailureReason.GROUNDING_BLOWUP, f"{self.instances} instances"
            )
        if self.instances % 512 == 0:
            self.check_deadline()


def _env_float(name: str) -> float | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
        if value <= 0:
            raise ValueError
        return value
    except ValueError:
        warn_env(name, raw, "expected a positive number")
        return None


def _env_int(name: str, minimum: int = 1) -> int | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
        if value < minimum:
            raise ValueError
        return value
    except ValueError:
        warn_env(name, raw, f"expected an integer >= {minimum}")
        return None


def resolve_budget(
    wall_seconds: float | None = None,
    conflicts: int | None = None,
    rss_mb: int | None = None,
) -> Budget | None:
    """The effective budget: explicit arguments, else environment, else None.

    Reads ``REPRO_TIMEOUT`` (seconds), ``REPRO_CONFLICT_BUDGET``, and
    ``REPRO_MEMORY_MB`` for any limit not given explicitly.  Returns None
    (no budget at all) when every limit ends up unset, so unbudgeted runs
    pay zero metering overhead.
    """
    wall = wall_seconds if wall_seconds is not None else _env_float("REPRO_TIMEOUT")
    cap = conflicts if conflicts is not None else _env_int("REPRO_CONFLICT_BUDGET")
    rss = rss_mb if rss_mb is not None else _env_int("REPRO_MEMORY_MB")
    if wall is None and cap is None and rss is None:
        return None
    return Budget(wall_seconds=wall, conflicts=cap, rss_mb=rss)


def resolve_retries(retries: int | None = None) -> int:
    """Retry count for crashed/hung workers: argument, ``REPRO_RETRIES``, 2."""
    if retries is not None:
        return max(0, retries)
    env = _env_int("REPRO_RETRIES", minimum=0)
    return env if env is not None else 2
