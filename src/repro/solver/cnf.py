"""Tseitin conversion of ground first-order formulas to CNF.

After grounding (see :mod:`repro.solver.grounding`) verification conditions
are boolean combinations of *ground atoms*: relation atoms over ground terms
and equalities between ground terms.  :class:`CnfBuilder` maps each atom to a
SAT variable, introduces Tseitin definition variables for composite
subformulas (with caching, so shared subtrees are encoded once), and installs
the clauses into a :class:`repro.solver.sat.Solver`.

Equality atoms are canonicalized (argument order normalized, ``t = t``
folded to true) so that each semantic equality has exactly one variable --
the equality theory in :mod:`repro.solver.equality` relies on this.
"""

from __future__ import annotations

from typing import Callable

from ..logic import syntax as s
from .sat import Solver

_TRUE_LIT_CLAUSES_INSTALLED = "_cnf_true_lit"


def term_key(term: s.Term) -> str:
    """A deterministic total order key on ground terms."""
    if isinstance(term, s.App):
        if not term.args:
            return term.func.name
        return f"{term.func.name}({','.join(term_key(a) for a in term.args)})"
    raise ValueError(f"not a ground term: {term!r}")


class CnfBuilder:
    """Encodes ground formulas into a SAT solver, one literal per formula."""

    def __init__(self, solver: Solver) -> None:
        self.solver = solver
        self._atom_vars: dict[s.Formula, int] = {}
        self._cache: dict[s.Formula, int] = {}
        self._true_lit: int | None = None

    # ---------------------------------------------------------------- atoms

    @property
    def atoms(self) -> dict[s.Formula, int]:
        """The canonical ground atoms and their SAT variables."""
        return self._atom_vars

    def true_lit(self) -> int:
        """A literal fixed to true (used for degenerate encodings)."""
        if self._true_lit is None:
            self._true_lit = self.solver.new_var()
            self.solver.add_clause([self._true_lit])
        return self._true_lit

    def atom_var(self, atom: s.Formula) -> int:
        """The SAT variable of a canonical ground atom (created on demand)."""
        var = self._atom_vars.get(atom)
        if var is None:
            var = self.solver.new_var()
            self._atom_vars[atom] = var
        return var

    def eq_lit(self, lhs: s.Term, rhs: s.Term) -> int:
        """The literal of the canonicalized equality ``lhs = rhs``."""
        if lhs == rhs:
            return self.true_lit()
        if term_key(rhs) < term_key(lhs):
            lhs, rhs = rhs, lhs
        return self.atom_var(s.Eq(lhs, rhs))

    def rel_lit(self, rel: s.Rel) -> int:
        return self.atom_var(rel)

    # ------------------------------------------------------------- encoding

    def encode(self, formula: s.Formula) -> int:
        """Return a literal equivalid with the ground formula ``formula``.

        Definition clauses for composite subformulas are added to the solver
        as they are created; the returned literal is *not* asserted.
        """
        cached = self._cache.get(formula)
        if cached is not None:
            return cached
        lit = self._encode(formula)
        self._cache[formula] = lit
        return lit

    def _encode(self, formula: s.Formula) -> int:
        if formula == s.TRUE:
            return self.true_lit()
        if formula == s.FALSE:
            return -self.true_lit()
        if isinstance(formula, s.Rel):
            return self.rel_lit(formula)
        if isinstance(formula, s.Eq):
            return self.eq_lit(formula.lhs, formula.rhs)
        if isinstance(formula, s.Not):
            return -self.encode(formula.arg)
        if isinstance(formula, s.And):
            return self._define_and([self.encode(a) for a in formula.args])
        if isinstance(formula, s.Or):
            return -self._define_and([-self.encode(a) for a in formula.args])
        if isinstance(formula, s.Implies):
            return -self._define_and([self.encode(formula.lhs), -self.encode(formula.rhs)])
        if isinstance(formula, s.Iff):
            lhs = self.encode(formula.lhs)
            rhs = self.encode(formula.rhs)
            out = self.solver.new_var()
            self.solver.add_clauses(
                [[-out, -lhs, rhs], [-out, lhs, -rhs], [out, lhs, rhs], [out, -lhs, -rhs]]
            )
            return out
        if isinstance(formula, (s.Forall, s.Exists)):
            raise ValueError(f"cannot encode a quantified formula: {formula}")
        raise TypeError(f"not a formula: {formula!r}")

    def _define_and(self, lits: list[int]) -> int:
        if not lits:
            return self.true_lit()
        if len(lits) == 1:
            return lits[0]
        out = self.solver.new_var()
        for lit in lits:
            self.solver.add_clause([-out, lit])
        self.solver.add_clause([out] + [-lit for lit in lits])
        return out

    # ------------------------------------------------------------ asserting

    def assert_formula(self, formula: s.Formula, selector: int | None = None) -> None:
        """Assert ``formula``; with ``selector`` the assertion is conditional
        on the selector literal (enabling assumption-based unsat cores)."""
        lit = self.encode(formula)
        if selector is None:
            self.solver.add_clause([lit])
        else:
            self.solver.add_clause([-selector, lit])

    def value_of(self, atom: s.Formula, model: dict[int, bool]) -> bool:
        """Read a canonical atom's value from a SAT model (default false)."""
        var = self._atom_vars.get(atom)
        if var is None:
            return False
        return model[var]
