"""Per-protocol verification telemetry: the Fig. 14 shape, machine-readable.

Runs the inductiveness check of every bundled protocol's published
invariant with a fresh query cache and a :class:`SolverStats` collector,
and writes one row per protocol -- wall time, query count, verdict
counts, cache hit rate, and whether the invariant held -- into
``BENCH_protocols.json`` at the repository root (schema documented in
:mod:`benchmarks.telemetry`).

This is the regression baseline the paper evaluation table grows from:
diffing two BENCH files across commits shows exactly which protocol got
slower, chattier, or (catastrophically) stopped verifying.
"""

import time

import pytest

from repro.core.induction import check_inductive
from repro.protocols import ALL_PROTOCOLS
from repro.solver import QueryCache, SolverStats, install_cache

from .conftest import record
from .telemetry import write_bench


@pytest.fixture
def fresh_cache():
    cache = QueryCache()
    old = install_cache(cache)
    yield cache
    install_cache(old)


def _protocol_row(name, bundle, ledger_root) -> dict:
    from repro.proof.ledger import Ledger

    ledger = Ledger(str(ledger_root / name))
    stats = SolverStats()
    start = time.perf_counter()
    result = check_inductive(
        bundle.program, list(bundle.invariant), stats=stats, ledger=ledger
    )
    wall = time.perf_counter() - start
    # Warm rerun: with the ledger populated, every obligation is served
    # from disk before any solver object is built (schema v2 columns).
    warm_start = time.perf_counter()
    warm = check_inductive(
        bundle.program, list(bundle.invariant), ledger=ledger
    )
    warm_wall = time.perf_counter() - warm_start
    return {
        "wall_s": round(wall, 3),
        "holds": result.holds,
        "queries": stats.queries,
        "sat": stats.sat_answers,
        "unsat": stats.unsat_answers,
        "unknown": stats.unknown_answers,
        "cache_hit_rate": round(stats.cache_hit_rate, 3),
        "conjectures": len(bundle.invariant),
        "sorts": bundle.sort_count(),
        "symbols": bundle.symbol_count(),
        "ledger_hits": warm.statistics.get("ledger_hits", 0),
        "ledger_misses": warm.statistics.get("ledger_misses", 0),
        "ledger_warm_wall_s": round(warm_wall, 3),
        # Schema v3: per-phase wall totals (ms) aggregated by SolverStats
        # from the phase_*_ms keys the profiler puts in every query's
        # statistics; lets the regression gate name the phase that slowed.
        "phases": {
            key[len("phase_") : -len("_ms")]: value
            for key, value in sorted(stats.counters.items())
            if key.startswith("phase_")
            and key.endswith("_ms")
            and not key.endswith("_cpu_ms")
        },
    }


def test_protocol_telemetry(benchmark, bundles, results_dir, fresh_cache, tmp_path):
    """Check every bundled invariant; emit BENCH_protocols.json."""

    def run():
        return {
            name: _protocol_row(name, bundles[name], tmp_path)
            for name in sorted(bundles)
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_bench("protocols", rows)
    lines = [
        f"{'protocol':22s} {'wall':>7s} {'queries':>7s} {'unsat':>6s} "
        f"{'hit%':>5s} {'ledger':>6s} holds"
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:22s} {row['wall_s']:6.2f}s {row['queries']:7d} "
            f"{row['unsat']:6d} {row['cache_hit_rate']:5.0%} "
            f"{row['ledger_hits']:6d} {row['holds']}"
        )
    record(results_dir, "protocols_telemetry", "\n".join(lines) + "\n")
    assert set(rows) == set(ALL_PROTOCOLS)
    # Every bundled invariant is the paper's published one; all must hold.
    failing = [name for name, row in rows.items() if not row["holds"]]
    assert not failing, f"published invariants no longer inductive: {failing}"
    # The warm rerun must be discharged entirely from the ledger.
    resolved = [name for name, row in rows.items() if row["ledger_misses"]]
    assert not resolved, f"warm ledger rerun re-solved obligations: {resolved}"
