"""Decision-procedure microbenchmarks: the substrate behind every check.

These are proper multi-round benchmarks (the workloads are deterministic
and fast): CDCL on classic instances, EPR grounding/solving on the ring
axioms at growing Skolem counts, and the MBQI path against the eager path.
"""

import pytest

from repro.logic import (
    FuncDecl,
    RelDecl,
    Sort,
    exists,
    forall,
    parse_formula,
    vocabulary,
)
from repro.logic.syntax import Var, and_, distinct
from repro.solver import EprSolver, Solver

node = Sort("node")
ident = Sort("id")
VOCAB = vocabulary(
    sorts=[node, ident],
    relations=[
        RelDecl("le", (ident, ident)),
        RelDecl("btw", (node, node, node)),
        RelDecl("leader", (node,)),
    ],
    functions=[FuncDecl("idn", (node,), ident)],
)

RING = parse_formula(
    "(forall X, Y, Z. btw(X, Y, Z) -> btw(Y, Z, X))"
    " & (forall W, X, Y, Z. btw(W, X, Y) & btw(W, Y, Z) -> btw(W, X, Z))"
    " & (forall W, X, Y. btw(W, X, Y) -> ~btw(W, Y, X))"
    " & (forall W:node, X:node, Y:node."
    "    W ~= X & X ~= Y & W ~= Y -> btw(W, X, Y) | btw(W, Y, X))",
    VOCAB,
)


def _pigeonhole(holes: int) -> Solver:
    solver = Solver()
    var = {}
    for pigeon in range(holes + 1):
        for hole in range(holes):
            var[pigeon, hole] = solver.new_var()
    for pigeon in range(holes + 1):
        solver.add_clause([var[pigeon, hole] for hole in range(holes)])
    for hole in range(holes):
        for p1 in range(holes + 1):
            for p2 in range(p1 + 1, holes + 1):
                solver.add_clause([-var[p1, hole], -var[p2, hole]])
    return solver


@pytest.mark.parametrize("holes", [5, 6])
def test_sat_pigeonhole(benchmark, holes):
    def run():
        return _pigeonhole(holes).solve()

    result = benchmark(run)
    assert not result.satisfiable


@pytest.mark.parametrize("n", [3, 5, 7])
def test_epr_ring_models(benchmark, n):
    """Satisfiability of the ring axioms with n distinct node witnesses:
    grounding cost grows as the 4-variable transitivity axiom meets a
    universe of n Skolem constants."""
    witnesses = tuple(Var(f"N{i}", node) for i in range(n))
    query = exists(witnesses, distinct(*witnesses))

    def run():
        solver = EprSolver(VOCAB)
        solver.add(RING)
        solver.add(query)
        return solver.check()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.satisfiable
    assert result.model.sort_size(node) >= n
    benchmark.extra_info["instances"] = result.statistics["instances"]
    benchmark.extra_info["lazy_instances"] = result.statistics["lazy_instances"]


@pytest.mark.parametrize("threshold", [0, 100000])
def test_epr_mbqi_vs_eager(benchmark, threshold):
    """The MBQI ablation: threshold 0 instantiates everything lazily,
    a huge threshold instantiates everything eagerly; both must agree."""
    witnesses = tuple(Var(f"N{i}", node) for i in range(5))
    query = exists(witnesses, distinct(*witnesses))

    def run():
        solver = EprSolver(VOCAB, eager_threshold=threshold)
        solver.add(RING)
        solver.add(parse_formula("forall N1, N2. N1 ~= N2 -> idn(N1) ~= idn(N2)", VOCAB))
        solver.add(query)
        return solver.check()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.satisfiable
    benchmark.extra_info["instances"] = result.statistics["instances"]
    benchmark.extra_info["lazy_instances"] = result.statistics["lazy_instances"]


def test_epr_unsat_core(benchmark):
    """Assumption-based cores over tracked constraints."""
    order = parse_formula(
        "(forall X:id. le(X, X))"
        " & (forall X, Y, Z:id. le(X, Y) & le(Y, Z) -> le(X, Z))"
        " & (forall X, Y:id. le(X, Y) & le(Y, X) -> X = Y)"
        " & (forall X, Y:id. le(X, Y) | le(Y, X))",
        VOCAB,
    )
    bad = parse_formula("exists X:id, Y:id. ~le(X, Y) & ~le(Y, X)", VOCAB)
    noise = [
        parse_formula(f"exists N{i}:node. leader(N{i}) | ~leader(N{i})", VOCAB)
        for i in range(5)
    ]

    def run():
        solver = EprSolver(VOCAB)
        solver.add(order, name="order")
        solver.add(bad, name="bad", track=True)
        for index, formula in enumerate(noise):
            solver.add(formula, name=f"noise{index}", track=True)
        return solver.check()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert not result.satisfiable
    assert result.core == {"bad"}
