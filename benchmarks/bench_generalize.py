"""Generalization benchmarks (Figures 7-9, the Section 2.3 bound anecdote,
and the unsat-core ablation called out in DESIGN.md)."""

import pytest

from repro.core.bounded import check_k_invariance, make_unroller
from repro.core.generalize import auto_generalize, check_unreachable
from repro.core.minimize import PositiveTuples, SortSize, find_minimal_cti
from repro.core.policy import violation_subconfiguration
from repro.logic import Sort, parse_formula
from repro.logic.partial import from_structure


@pytest.fixture(scope="module")
def first_cti(leader):
    program = leader.program
    measures = [
        SortSize(Sort("node")),
        SortSize(Sort("id")),
        PositiveTuples(program.vocab.relation("pnd")),
        PositiveTuples(program.vocab.relation("leader")),
    ]
    result = find_minimal_cti(program, list(leader.safety), measures)
    assert result.cti is not None
    return result.cti


@pytest.fixture(scope="module")
def upper_bound(leader, first_cti):
    target = next(
        t
        for t in leader.invariant[1:]
        if not first_cti.state.satisfies(t.formula)
    )
    return violation_subconfiguration(first_cti.state, target.formula)


def test_auto_generalize_with_core_polish(benchmark, leader, upper_bound):
    """The full Section 4.5 pipeline: validate s_u, core, deletion pass."""
    unroller = make_unroller(leader.program)

    def run():
        return auto_generalize(leader.program, upper_bound, 3, unroller, polish=True)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.ok
    benchmark.extra_info["kept_facts"] = outcome.partial.fact_count()
    benchmark.extra_info["dropped_facts"] = len(outcome.dropped)


def test_auto_generalize_core_only(benchmark, leader, upper_bound):
    """Ablation: assumption cores without the deletion polish."""
    unroller = make_unroller(leader.program)

    def run():
        return auto_generalize(leader.program, upper_bound, 3, unroller, polish=False)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.ok
    benchmark.extra_info["kept_facts"] = outcome.partial.fact_count()


def test_rejected_generalization_shows_trace(benchmark, leader, first_cti):
    """The failure path: an over-general s_u is refuted with a witness."""
    partial = from_structure(first_cti.state)
    for name in ("n", "m", "i", "btw", "pnd"):
        partial = partial.forget(name)
    unroller = make_unroller(leader.program)

    def run():
        return check_unreachable(leader.program, partial, 3, unroller)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not result.unreachable
    assert result.trace is not None
    benchmark.extra_info["witness_depth"] = result.depth


def test_bound_sensitivity(benchmark, leader):
    """The Section 2.3 anecdote: bound 2 accepts a bogus conjecture that
    bound 3 refutes (two distinct nodes, one a leader)."""
    program = leader.program
    bogus = parse_formula(
        "forall N1, N2. ~(N1 ~= N2 & leader(N1))", program.vocab
    )
    unroller = make_unroller(program)

    def run():
        shallow = check_k_invariance(program, bogus, 2, unroller).holds
        deep = check_k_invariance(program, bogus, 3, unroller).holds
        return shallow, deep

    shallow, deep = benchmark.pedantic(run, rounds=1, iterations=1)
    assert shallow and not deep
    benchmark.extra_info["accepted_at_bound"] = 2
    benchmark.extra_info["refuted_at_bound"] = 3
