"""Bounded verification benchmarks (Section 2.2 / 4.1, Figure 4).

The paper reports that protocols "can be verified for about 10 transitions
in a few minutes" with Z3; our pure-Python solver reproduces the *shape* --
per-depth cost grows with the unrolling as the ground universe widens --
at smaller bounds.  The Figure 4 regression drives the buggy model (no
``unique_ids``) to its depth-4 counterexample.
"""

import pytest

from repro.core.bounded import find_error_trace, make_unroller, check_k_invariance

from .conftest import record


@pytest.mark.parametrize("k", [1, 2, 3])
def test_safety_bmc_scaling(benchmark, leader, k):
    """Time-to-verify 'no assertion violation within k iterations'."""

    def run():
        return find_error_trace(leader.program, k)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.holds
    benchmark.extra_info["k"] = k
    benchmark.extra_info.update(
        {key: result.statistics.get(key, 0) for key in ("instances", "sat_vars")}
    )


def test_figure4_bug_trace(benchmark, leader, results_dir):
    """Reproduce Figure 4: two leaders at depth 4 once unique_ids is gone."""
    buggy = leader.program.without_axiom("unique_ids")

    def run():
        return find_error_trace(buggy, 4)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not result.holds and result.depth == 4
    result.trace.validate()
    leader_rel = buggy.vocab.relation("leader")
    assert result.trace.states[-1].positive_count(leader_rel) >= 2
    benchmark.extra_info["depth"] = result.depth
    benchmark.extra_info["trace_nodes"] = result.trace.states[0].sort_size(
        buggy.vocab.sorts[0]
    )
    record(
        results_dir,
        "figure4_trace",
        f"Figure 4 reproduction (bound 4, unique_ids omitted):\n\n{result.trace}\n",
    )


def test_k_invariance_of_invariant(benchmark, leader):
    """k-invariance of every published conjecture at bound 2 (the check
    behind BMC + Auto Generalize's validation step)."""
    unroller = make_unroller(leader.program)

    def run():
        return [
            check_k_invariance(leader.program, c.formula, 2, unroller).holds
            for c in leader.invariant
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(results)
