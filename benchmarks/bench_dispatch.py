"""Parallel dispatch and query-cache benchmarks.

Measures the two wins of the solver-dispatch layer:

* fanning the independent per-depth BMC queries of
  :func:`~repro.core.bounded.check_k_invariance` across worker processes
  (``--jobs``), which turns sum-of-depth-costs into max-of-depth-costs on
  multi-core machines -- the wall-clock speedup assertion is skipped on
  single-core machines, where forked workers just time-slice one CPU;
* answering repeated obligations from the query cache: re-running Houdini
  over an unchanged candidate pool (the common edit-recheck loop) re-solves
  nothing, and a repeated multi-depth BMC sweep is answered entirely from
  the cache.

All numbers are reported through :class:`~repro.solver.stats.SolverStats`.
"""

import os
import time

import pytest

from repro.core.bounded import check_k_invariance
from repro.core.houdini import houdini
from repro.logic import Sort, Var
from repro.solver import QueryCache, SolverStats, install_cache

from .conftest import record

BMC_BOUND = 3
JOBS = 4


@pytest.fixture
def no_cache():
    """Disable the query cache so timings measure actual solving."""
    old = install_cache(None)
    yield
    install_cache(old)


@pytest.fixture
def fresh_cache():
    cache = QueryCache()
    old = install_cache(cache)
    yield cache
    install_cache(old)


def _bmc_once(bundle, jobs, stats):
    safety = bundle.safety[0].formula
    start = time.perf_counter()
    result = check_k_invariance(bundle.program, safety, BMC_BOUND, jobs=jobs, stats=stats)
    return result, time.perf_counter() - start


def test_parallel_bmc_speedup(benchmark, bundles, results_dir, no_cache):
    """Multi-depth BMC, serial vs ``--jobs 4``."""
    bundle = bundles["leader_election"]
    serial_stats, parallel_stats = SolverStats(), SolverStats()
    with serial_stats.phase("bmc-serial"):
        serial_result, serial_time = _bmc_once(bundle, 1, serial_stats)

    def run():
        with parallel_stats.phase("bmc-parallel"):
            return _bmc_once(bundle, JOBS, parallel_stats)

    parallel_result, parallel_time = benchmark.pedantic(run, rounds=1, iterations=1)
    assert serial_result.holds and parallel_result.holds
    speedup = serial_time / parallel_time if parallel_time else float("inf")
    benchmark.extra_info.update(
        {"serial_s": round(serial_time, 2), "jobs": JOBS, "speedup": round(speedup, 2)}
    )
    summary = (
        f"BMC k={BMC_BOUND} leader_election: serial {serial_time:.2f}s, "
        f"--jobs {JOBS} {parallel_time:.2f}s, speedup {speedup:.2f}x "
        f"(on {os.cpu_count()} cpu)\n\n{serial_stats.format()}\n\n"
        f"{parallel_stats.format()}\n"
    )
    record(results_dir, "dispatch_bmc_speedup", summary)
    assert parallel_stats.dispatched == BMC_BOUND + 1
    if (os.cpu_count() or 1) < 2:
        pytest.skip(f"single-core machine: measured {speedup:.2f}x, not asserted")
    assert speedup >= 1.5


def test_cached_bmc_rerun_speedup(benchmark, bundles, results_dir, fresh_cache):
    """Repeating an identical multi-depth BMC sweep is answered from cache."""
    bundle = bundles["leader_election"]
    cold_stats, warm_stats = SolverStats(), SolverStats()
    _, cold_time = _bmc_once(bundle, 1, cold_stats)

    def run():
        return _bmc_once(bundle, 1, warm_stats)

    result, warm_time = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.holds
    speedup = cold_time / warm_time if warm_time else float("inf")
    benchmark.extra_info.update(
        {"cold_s": round(cold_time, 2), "speedup": round(speedup, 2)}
    )
    record(
        results_dir,
        "dispatch_bmc_cached_rerun",
        f"BMC k={BMC_BOUND} rerun: cold {cold_time:.2f}s, warm {warm_time:.2f}s "
        f"({speedup:.1f}x)\n\n{warm_stats.format()}\n",
    )
    assert warm_stats.cache_hit_rate == 1.0
    assert speedup >= 1.5


def test_houdini_rerun_cache_hit_rate(benchmark, bundles, results_dir, fresh_cache):
    """Re-running Houdini over an unchanged pool hits the cache >= 90%."""
    from repro.core.absint import enumerate_candidates

    bundle = bundles["lock_server"]
    client = Sort("client")
    variables = [Var("C1", client), Var("C2", client)]
    pool = list(
        enumerate_candidates(
            bundle.program.vocab,
            variables,
            max_literals=2,
            include_equality=True,
            max_candidates=400,
        )
    )
    first_stats, second_stats = SolverStats(), SolverStats()
    first = houdini(bundle.program, pool, stats=first_stats)

    def run():
        return houdini(bundle.program, pool, stats=second_stats)

    second = benchmark.pedantic(run, rounds=1, iterations=1)
    assert [c.name for c in second.invariant] == [c.name for c in first.invariant]
    benchmark.extra_info.update(
        {
            "pool": len(pool),
            "hit_rate": round(second_stats.cache_hit_rate, 3),
        }
    )
    record(
        results_dir,
        "dispatch_houdini_cache",
        f"houdini rerun over {len(pool)} candidates: "
        f"{second_stats.cache_hits}/{second_stats.queries} queries from cache "
        f"({second_stats.cache_hit_rate:.0%})\n\n{second_stats.format()}\n",
    )
    assert second_stats.cache_hit_rate >= 0.9


def test_budget_metering_overhead(benchmark, bundles, results_dir, no_cache):
    """A generous budget must not measurably slow solving down.

    The meter is charged on every conflict and amortized elsewhere; this
    pins the cooperative-enforcement overhead on a real workload (serial
    multi-depth BMC) to under 25%.
    """
    from repro.solver import Budget

    bundle = bundles["leader_election"]
    safety = bundle.safety[0].formula
    start = time.perf_counter()
    plain = check_k_invariance(bundle.program, safety, BMC_BOUND, jobs=1)
    plain_time = time.perf_counter() - start
    budget = Budget(wall_seconds=600.0, conflicts=50_000_000, instances=50_000_000)

    def run():
        return check_k_invariance(
            bundle.program, safety, BMC_BOUND, jobs=1, budget=budget
        )

    start = time.perf_counter()
    metered = benchmark.pedantic(run, rounds=1, iterations=1)
    metered_time = time.perf_counter() - start
    assert plain.holds and metered.holds and not metered.unknown
    overhead = metered_time / plain_time - 1.0 if plain_time else 0.0
    benchmark.extra_info.update(
        {"plain_s": round(plain_time, 2), "overhead": round(overhead, 3)}
    )
    record(
        results_dir,
        "dispatch_budget_overhead",
        f"BMC k={BMC_BOUND} leader_election: unbudgeted {plain_time:.2f}s, "
        f"budgeted {metered_time:.2f}s ({overhead:+.1%} overhead)\n",
    )
    assert overhead < 0.25
