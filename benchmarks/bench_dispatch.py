"""Parallel dispatch and query-cache benchmarks.

Measures the two wins of the solver-dispatch layer:

* fanning the independent per-depth BMC queries of
  :func:`~repro.core.bounded.check_k_invariance` across the persistent
  worker pool (``--jobs``), which turns sum-of-depth-costs into
  max-of-depth-costs on multi-core machines -- the wall-clock speedup
  assertion is skipped on machines with one *effective* CPU
  (``sched_getaffinity``), where forked workers just time-slice, and the
  JSON section carries an explicit ``single_cpu`` marker so downstream
  tooling never mistakes a time-sliced figure for a dispatch regression;
* answering repeated obligations from the query cache: re-running Houdini
  over an unchanged candidate pool (the common edit-recheck loop) re-solves
  nothing, and a repeated multi-depth BMC sweep in a **fresh interpreter**
  is answered from the disk-backed persistent cache
  (``REPRO_CACHE_PERSIST=1``) -- the cross-run win the in-memory cache
  cannot provide.

All numbers are reported through :class:`~repro.solver.stats.SolverStats`
and, machine-readably, merged into ``BENCH_dispatch.json`` at the repo
root (see :mod:`benchmarks.telemetry`).

``test_tracing_overhead`` pins the observability tentpole's promise:
span tracing on a serial BMC workload must cost no more than 5% wall
time over the untraced run.  ``test_profiler_overhead`` holds the
per-phase query profiler (:mod:`repro.obs.profile`) to the same 5%
envelope, timers-on (the default) versus timers-off.
"""

import io
import json
import os
import subprocess
import sys
import time

import pytest

from repro import obs
from repro.core.bounded import check_k_invariance
from repro.core.houdini import houdini
from repro.logic import Sort, Var
from repro.solver import QueryCache, SolverStats, install_cache

from .conftest import record
from .telemetry import REPO_ROOT, effective_cpus, update_bench

BMC_BOUND = 3
JOBS = 4


@pytest.fixture
def no_cache():
    """Disable the query cache so timings measure actual solving."""
    old = install_cache(None)
    yield
    install_cache(old)


@pytest.fixture
def fresh_cache():
    cache = QueryCache()
    old = install_cache(cache)
    yield cache
    install_cache(old)


def _bmc_once(bundle, jobs, stats):
    safety = bundle.safety[0].formula
    start = time.perf_counter()
    result = check_k_invariance(bundle.program, safety, BMC_BOUND, jobs=jobs, stats=stats)
    return result, time.perf_counter() - start


def test_parallel_bmc_speedup(benchmark, bundles, results_dir, no_cache):
    """Multi-depth BMC, serial vs ``--jobs 4``."""
    bundle = bundles["leader_election"]
    serial_stats, parallel_stats = SolverStats(), SolverStats()
    with serial_stats.phase("bmc-serial"):
        serial_result, serial_time = _bmc_once(bundle, 1, serial_stats)

    def run():
        with parallel_stats.phase("bmc-parallel"):
            return _bmc_once(bundle, JOBS, parallel_stats)

    parallel_result, parallel_time = benchmark.pedantic(run, rounds=1, iterations=1)
    assert serial_result.holds and parallel_result.holds
    speedup = serial_time / parallel_time if parallel_time else float("inf")
    cpus = effective_cpus()
    benchmark.extra_info.update(
        {"serial_s": round(serial_time, 2), "jobs": JOBS, "speedup": round(speedup, 2)}
    )
    summary = (
        f"BMC k={BMC_BOUND} leader_election: serial {serial_time:.2f}s, "
        f"--jobs {JOBS} {parallel_time:.2f}s, speedup {speedup:.2f}x "
        f"(on {cpus} effective cpu)\n\n{serial_stats.format()}\n\n"
        f"{parallel_stats.format()}\n"
    )
    record(results_dir, "dispatch_bmc_speedup", summary)
    update_bench(
        "dispatch",
        "bmc_speedup",
        {
            "serial_s": round(serial_time, 3),
            "parallel_s": round(parallel_time, 3),
            "jobs": JOBS,
            "speedup": round(speedup, 2),
            "queries": parallel_stats.queries,
            "dispatched": parallel_stats.dispatched,
            "effective_cpus": cpus,
            # A speedup measured while workers time-slice one CPU says
            # nothing about dispatch; consumers must ignore such figures.
            "single_cpu": cpus < 2,
        },
    )
    assert parallel_stats.dispatched == BMC_BOUND + 1
    if cpus < 2:
        pytest.skip(
            f"1 effective CPU: measured {speedup:.2f}x, flagged in JSON, "
            "not asserted"
        )
    assert speedup >= 1.5


RERUN_PROTOCOL = "leader_election"
RERUN_BOUND = 4


def _rerun_workload(cache_dir, label):
    """Run the BMC workload in a fresh interpreter with the disk cache on."""
    env = dict(os.environ)
    env.update(
        {
            "PYTHONPATH": str(REPO_ROOT / "src"),
            "REPRO_CACHE_PERSIST": "1",
            "REPRO_CACHE_DIR": str(cache_dir),
        }
    )
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "benchmarks.rerun_workload",
            RERUN_PROTOCOL,
            str(RERUN_BOUND),
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, f"{label} run failed:\n{proc.stderr}"
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_persistent_cache_cross_process_rerun(benchmark, results_dir, tmp_path):
    """A fresh interpreter re-answers an identical BMC sweep from disk.

    The in-memory cache dies with the cold process; ``REPRO_CACHE_PERSIST``
    is what carries its 100% warm hit rate across the process boundary.
    The warm run still grounds every query (fingerprints hash the
    *grounded* problem), so the speedup bounds the solve fraction, not the
    full wall time.
    """
    cache_dir = tmp_path / "persist"
    cold = _rerun_workload(cache_dir, "cold")

    def run():
        return _rerun_workload(cache_dir, "warm")

    warm = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cold["holds"] and warm["holds"]
    cold_time, warm_time = cold["wall_s"], warm["wall_s"]
    speedup = cold_time / warm_time if warm_time else float("inf")
    benchmark.extra_info.update(
        {"cold_s": round(cold_time, 2), "speedup": round(speedup, 2)}
    )
    record(
        results_dir,
        "dispatch_bmc_cached_rerun",
        f"BMC k={RERUN_BOUND} {RERUN_PROTOCOL} cross-process rerun: "
        f"cold {cold_time:.2f}s, warm {warm_time:.2f}s ({speedup:.1f}x), "
        f"warm hit rate {warm['cache_hit_rate']:.0%} via disk cache\n",
    )
    update_bench(
        "dispatch",
        "cached_rerun",
        {
            "protocol": RERUN_PROTOCOL,
            "bound": RERUN_BOUND,
            "cross_process": True,
            "cold_s": round(cold_time, 3),
            "warm_s": round(warm_time, 3),
            "speedup": round(speedup, 2),
            "cache_hit_rate": round(warm["cache_hit_rate"], 3),
        },
    )
    assert warm["cache_hit_rate"] == 1.0
    assert speedup >= 1.7


def _ledger_workload(ledger_dir, label):
    """Run the proof workload in a fresh interpreter with a shared ledger."""
    env = dict(os.environ)
    env.update(
        {
            "PYTHONPATH": str(REPO_ROOT / "src"),
            "REPRO_LEDGER_DIR": str(ledger_dir),
        }
    )
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "benchmarks.rerun_workload",
            RERUN_PROTOCOL,
            "prove",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, f"{label} run failed:\n{proc.stderr}"
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_ledger_cross_process_rerun(benchmark, results_dir, tmp_path):
    """A fresh interpreter re-proves an unchanged protocol from the ledger.

    Unlike the disk cache (which still grounds every query and only skips
    solving), the ledger recognizes proven obligations by content address
    before any solver object exists -- the warm run issues zero queries,
    so its speedup bounds the entire prove pipeline, not just the solve
    fraction.
    """
    ledger_dir = tmp_path / "ledger"
    cold = _ledger_workload(ledger_dir, "cold")

    def run():
        return _ledger_workload(ledger_dir, "warm")

    warm = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cold["holds"] and warm["holds"]
    cold_time, warm_time = cold["wall_s"], warm["wall_s"]
    speedup = cold_time / warm_time if warm_time else float("inf")
    benchmark.extra_info.update(
        {"cold_s": round(cold_time, 2), "speedup": round(speedup, 2)}
    )
    record(
        results_dir,
        "dispatch_ledger_rerun",
        f"prove {RERUN_PROTOCOL} cross-process rerun: "
        f"cold {cold_time:.2f}s ({cold['queries']} queries), "
        f"warm {warm_time:.2f}s ({warm['queries']} queries, {speedup:.1f}x) "
        f"via proven-lemma ledger\n",
    )
    update_bench(
        "dispatch",
        "ledger_rerun",
        {
            "protocol": RERUN_PROTOCOL,
            "cross_process": True,
            "cold_s": round(cold_time, 3),
            "warm_s": round(warm_time, 3),
            "speedup": round(speedup, 2),
            "cold_queries": cold["queries"],
            "warm_queries": warm["queries"],
            "ledger_hit_rate": round(warm["ledger_hit_rate"], 3),
        },
    )
    assert warm["queries"] == 0
    assert warm["ledger_hit_rate"] == 1.0
    assert speedup >= 1.7


def test_houdini_rerun_cache_hit_rate(benchmark, bundles, results_dir, fresh_cache):
    """Re-running Houdini over an unchanged pool hits the cache >= 90%."""
    from repro.core.absint import enumerate_candidates

    bundle = bundles["lock_server"]
    client = Sort("client")
    variables = [Var("C1", client), Var("C2", client)]
    pool = list(
        enumerate_candidates(
            bundle.program.vocab,
            variables,
            max_literals=2,
            include_equality=True,
            max_candidates=400,
        )
    )
    first_stats, second_stats = SolverStats(), SolverStats()
    first = houdini(bundle.program, pool, stats=first_stats)

    def run():
        return houdini(bundle.program, pool, stats=second_stats)

    second = benchmark.pedantic(run, rounds=1, iterations=1)
    assert [c.name for c in second.invariant] == [c.name for c in first.invariant]
    benchmark.extra_info.update(
        {
            "pool": len(pool),
            "hit_rate": round(second_stats.cache_hit_rate, 3),
        }
    )
    record(
        results_dir,
        "dispatch_houdini_cache",
        f"houdini rerun over {len(pool)} candidates: "
        f"{second_stats.cache_hits}/{second_stats.queries} queries from cache "
        f"({second_stats.cache_hit_rate:.0%})\n\n{second_stats.format()}\n",
    )
    update_bench(
        "dispatch",
        "houdini_cache",
        {
            "pool": len(pool),
            "queries": second_stats.queries,
            "cache_hits": second_stats.cache_hits,
            "cache_hit_rate": round(second_stats.cache_hit_rate, 3),
        },
    )
    assert second_stats.cache_hit_rate >= 0.9


def test_budget_metering_overhead(benchmark, bundles, results_dir, no_cache):
    """A generous budget must not measurably slow solving down.

    The meter is charged on every conflict and amortized elsewhere; this
    pins the cooperative-enforcement overhead on a real workload (serial
    multi-depth BMC) to under 25%.
    """
    from repro.solver import Budget

    bundle = bundles["leader_election"]
    safety = bundle.safety[0].formula
    start = time.perf_counter()
    plain = check_k_invariance(bundle.program, safety, BMC_BOUND, jobs=1)
    plain_time = time.perf_counter() - start
    budget = Budget(wall_seconds=600.0, conflicts=50_000_000, instances=50_000_000)

    def run():
        return check_k_invariance(
            bundle.program, safety, BMC_BOUND, jobs=1, budget=budget
        )

    start = time.perf_counter()
    metered = benchmark.pedantic(run, rounds=1, iterations=1)
    metered_time = time.perf_counter() - start
    assert plain.holds and metered.holds and not metered.unknown
    overhead = metered_time / plain_time - 1.0 if plain_time else 0.0
    benchmark.extra_info.update(
        {"plain_s": round(plain_time, 2), "overhead": round(overhead, 3)}
    )
    record(
        results_dir,
        "dispatch_budget_overhead",
        f"BMC k={BMC_BOUND} leader_election: unbudgeted {plain_time:.2f}s, "
        f"budgeted {metered_time:.2f}s ({overhead:+.1%} overhead)\n",
    )
    update_bench(
        "dispatch",
        "budget_overhead",
        {
            "plain_s": round(plain_time, 3),
            "metered_s": round(metered_time, 3),
            "overhead": round(overhead, 4),
        },
    )
    assert overhead < 0.25


def test_tracing_overhead(benchmark, bundles, results_dir, no_cache):
    """Tracing on must cost <= 5% wall time on serial BMC; fail loudly.

    Both configurations run best-of-2 to damp scheduler noise: tracing
    writes one small JSON line per span into an in-memory buffer, so any
    real regression here means the hot-path guards in :mod:`repro.obs`
    stopped being cheap.
    """
    bundle = bundles["leader_election"]
    safety = bundle.safety[0].formula

    def bmc():
        return check_k_invariance(bundle.program, safety, BMC_BOUND, jobs=1)

    def best_of(runs, setup=None, teardown=None):
        best = float("inf")
        result = None
        for _ in range(runs):
            state = setup() if setup else None
            start = time.perf_counter()
            result = bmc()
            elapsed = time.perf_counter() - start
            if teardown:
                teardown(state)
            best = min(best, elapsed)
        return result, best

    plain_result, plain_time = best_of(2)

    def install():
        tracer = obs.Tracer(sink=io.StringIO())
        obs.install_tracer(tracer)
        return tracer

    def uninstall(tracer):
        obs.install_tracer(None)

    def run():
        return best_of(2, setup=install, teardown=uninstall)

    traced_result, traced_time = benchmark.pedantic(run, rounds=1, iterations=1)
    assert plain_result.holds and traced_result.holds
    overhead = traced_time / plain_time - 1.0 if plain_time else 0.0
    benchmark.extra_info.update(
        {"plain_s": round(plain_time, 3), "overhead": round(overhead, 3)}
    )
    record(
        results_dir,
        "dispatch_tracing_overhead",
        f"BMC k={BMC_BOUND} leader_election: untraced {plain_time:.2f}s, "
        f"traced {traced_time:.2f}s ({overhead:+.1%} overhead)\n",
    )
    update_bench(
        "dispatch",
        "tracing_overhead",
        {
            "plain_s": round(plain_time, 3),
            "traced_s": round(traced_time, 3),
            "overhead": round(overhead, 4),
        },
    )
    assert overhead <= 0.05, (
        f"tracing overhead {overhead:+.1%} exceeds the 5% budget "
        f"(untraced {plain_time:.2f}s, traced {traced_time:.2f}s)"
    )


def test_profiler_overhead(benchmark, bundles, results_dir, no_cache):
    """Phase timers on (the default) must cost <= 5% over timers off.

    The profiler brackets every grounding, CDCL call, theory round, and
    cache access with two ``perf_counter`` + two ``thread_time`` reads;
    this pins that the coarse placement keeps the serial BMC workload
    within the same 5% envelope the tracer honors.
    """
    from repro.obs import profile

    bundle = bundles["leader_election"]
    safety = bundle.safety[0].formula

    def bmc():
        return check_k_invariance(bundle.program, safety, BMC_BOUND, jobs=1)

    def best_of(runs):
        best = float("inf")
        result = None
        for _ in range(runs):
            start = time.perf_counter()
            result = bmc()
            best = min(best, time.perf_counter() - start)
        return result, best

    was_on = profile.set_profiling(False)
    try:
        off_result, off_time = best_of(2)
    finally:
        profile.set_profiling(True)

    def run():
        return best_of(2)

    try:
        on_result, on_time = benchmark.pedantic(run, rounds=1, iterations=1)
    finally:
        profile.set_profiling(was_on)
    assert off_result.holds and on_result.holds
    overhead = on_time / off_time - 1.0 if off_time else 0.0
    benchmark.extra_info.update(
        {"off_s": round(off_time, 3), "overhead": round(overhead, 3)}
    )
    record(
        results_dir,
        "dispatch_profiler_overhead",
        f"BMC k={BMC_BOUND} leader_election: profiler off {off_time:.2f}s, "
        f"on {on_time:.2f}s ({overhead:+.1%} overhead)\n",
    )
    update_bench(
        "dispatch",
        "profiler_overhead",
        {
            "off_s": round(off_time, 3),
            "on_s": round(on_time, 3),
            "overhead": round(overhead, 4),
        },
    )
    assert overhead <= 0.05, (
        f"profiler overhead {overhead:+.1%} exceeds the 5% budget "
        f"(off {off_time:.2f}s, on {on_time:.2f}s)"
    )
