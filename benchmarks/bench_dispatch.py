"""Parallel dispatch and query-cache benchmarks.

Measures the two wins of the solver-dispatch layer:

* fanning the independent per-depth BMC queries of
  :func:`~repro.core.bounded.check_k_invariance` across worker processes
  (``--jobs``), which turns sum-of-depth-costs into max-of-depth-costs on
  multi-core machines -- the wall-clock speedup assertion is skipped on
  single-core machines, where forked workers just time-slice one CPU;
* answering repeated obligations from the query cache: re-running Houdini
  over an unchanged candidate pool (the common edit-recheck loop) re-solves
  nothing, and a repeated multi-depth BMC sweep is answered entirely from
  the cache.

All numbers are reported through :class:`~repro.solver.stats.SolverStats`
and, machine-readably, merged into ``BENCH_dispatch.json`` at the repo
root (see :mod:`benchmarks.telemetry`).

``test_tracing_overhead`` pins the observability tentpole's promise:
span tracing on a serial BMC workload must cost no more than 5% wall
time over the untraced run.
"""

import io
import os
import time

import pytest

from repro import obs
from repro.core.bounded import check_k_invariance
from repro.core.houdini import houdini
from repro.logic import Sort, Var
from repro.solver import QueryCache, SolverStats, install_cache

from .conftest import record
from .telemetry import update_bench

BMC_BOUND = 3
JOBS = 4


@pytest.fixture
def no_cache():
    """Disable the query cache so timings measure actual solving."""
    old = install_cache(None)
    yield
    install_cache(old)


@pytest.fixture
def fresh_cache():
    cache = QueryCache()
    old = install_cache(cache)
    yield cache
    install_cache(old)


def _bmc_once(bundle, jobs, stats):
    safety = bundle.safety[0].formula
    start = time.perf_counter()
    result = check_k_invariance(bundle.program, safety, BMC_BOUND, jobs=jobs, stats=stats)
    return result, time.perf_counter() - start


def test_parallel_bmc_speedup(benchmark, bundles, results_dir, no_cache):
    """Multi-depth BMC, serial vs ``--jobs 4``."""
    bundle = bundles["leader_election"]
    serial_stats, parallel_stats = SolverStats(), SolverStats()
    with serial_stats.phase("bmc-serial"):
        serial_result, serial_time = _bmc_once(bundle, 1, serial_stats)

    def run():
        with parallel_stats.phase("bmc-parallel"):
            return _bmc_once(bundle, JOBS, parallel_stats)

    parallel_result, parallel_time = benchmark.pedantic(run, rounds=1, iterations=1)
    assert serial_result.holds and parallel_result.holds
    speedup = serial_time / parallel_time if parallel_time else float("inf")
    benchmark.extra_info.update(
        {"serial_s": round(serial_time, 2), "jobs": JOBS, "speedup": round(speedup, 2)}
    )
    summary = (
        f"BMC k={BMC_BOUND} leader_election: serial {serial_time:.2f}s, "
        f"--jobs {JOBS} {parallel_time:.2f}s, speedup {speedup:.2f}x "
        f"(on {os.cpu_count()} cpu)\n\n{serial_stats.format()}\n\n"
        f"{parallel_stats.format()}\n"
    )
    record(results_dir, "dispatch_bmc_speedup", summary)
    update_bench(
        "dispatch",
        "bmc_speedup",
        {
            "serial_s": round(serial_time, 3),
            "parallel_s": round(parallel_time, 3),
            "jobs": JOBS,
            "speedup": round(speedup, 2),
            "queries": parallel_stats.queries,
            "dispatched": parallel_stats.dispatched,
        },
    )
    assert parallel_stats.dispatched == BMC_BOUND + 1
    if (os.cpu_count() or 1) < 2:
        pytest.skip(f"single-core machine: measured {speedup:.2f}x, not asserted")
    assert speedup >= 1.5


def test_cached_bmc_rerun_speedup(benchmark, bundles, results_dir, fresh_cache):
    """Repeating an identical multi-depth BMC sweep is answered from cache."""
    bundle = bundles["leader_election"]
    cold_stats, warm_stats = SolverStats(), SolverStats()
    _, cold_time = _bmc_once(bundle, 1, cold_stats)

    def run():
        return _bmc_once(bundle, 1, warm_stats)

    result, warm_time = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.holds
    speedup = cold_time / warm_time if warm_time else float("inf")
    benchmark.extra_info.update(
        {"cold_s": round(cold_time, 2), "speedup": round(speedup, 2)}
    )
    record(
        results_dir,
        "dispatch_bmc_cached_rerun",
        f"BMC k={BMC_BOUND} rerun: cold {cold_time:.2f}s, warm {warm_time:.2f}s "
        f"({speedup:.1f}x)\n\n{warm_stats.format()}\n",
    )
    update_bench(
        "dispatch",
        "cached_rerun",
        {
            "cold_s": round(cold_time, 3),
            "warm_s": round(warm_time, 3),
            "speedup": round(speedup, 2),
            "cache_hit_rate": round(warm_stats.cache_hit_rate, 3),
        },
    )
    assert warm_stats.cache_hit_rate == 1.0
    assert speedup >= 1.5


def test_houdini_rerun_cache_hit_rate(benchmark, bundles, results_dir, fresh_cache):
    """Re-running Houdini over an unchanged pool hits the cache >= 90%."""
    from repro.core.absint import enumerate_candidates

    bundle = bundles["lock_server"]
    client = Sort("client")
    variables = [Var("C1", client), Var("C2", client)]
    pool = list(
        enumerate_candidates(
            bundle.program.vocab,
            variables,
            max_literals=2,
            include_equality=True,
            max_candidates=400,
        )
    )
    first_stats, second_stats = SolverStats(), SolverStats()
    first = houdini(bundle.program, pool, stats=first_stats)

    def run():
        return houdini(bundle.program, pool, stats=second_stats)

    second = benchmark.pedantic(run, rounds=1, iterations=1)
    assert [c.name for c in second.invariant] == [c.name for c in first.invariant]
    benchmark.extra_info.update(
        {
            "pool": len(pool),
            "hit_rate": round(second_stats.cache_hit_rate, 3),
        }
    )
    record(
        results_dir,
        "dispatch_houdini_cache",
        f"houdini rerun over {len(pool)} candidates: "
        f"{second_stats.cache_hits}/{second_stats.queries} queries from cache "
        f"({second_stats.cache_hit_rate:.0%})\n\n{second_stats.format()}\n",
    )
    update_bench(
        "dispatch",
        "houdini_cache",
        {
            "pool": len(pool),
            "queries": second_stats.queries,
            "cache_hits": second_stats.cache_hits,
            "cache_hit_rate": round(second_stats.cache_hit_rate, 3),
        },
    )
    assert second_stats.cache_hit_rate >= 0.9


def test_budget_metering_overhead(benchmark, bundles, results_dir, no_cache):
    """A generous budget must not measurably slow solving down.

    The meter is charged on every conflict and amortized elsewhere; this
    pins the cooperative-enforcement overhead on a real workload (serial
    multi-depth BMC) to under 25%.
    """
    from repro.solver import Budget

    bundle = bundles["leader_election"]
    safety = bundle.safety[0].formula
    start = time.perf_counter()
    plain = check_k_invariance(bundle.program, safety, BMC_BOUND, jobs=1)
    plain_time = time.perf_counter() - start
    budget = Budget(wall_seconds=600.0, conflicts=50_000_000, instances=50_000_000)

    def run():
        return check_k_invariance(
            bundle.program, safety, BMC_BOUND, jobs=1, budget=budget
        )

    start = time.perf_counter()
    metered = benchmark.pedantic(run, rounds=1, iterations=1)
    metered_time = time.perf_counter() - start
    assert plain.holds and metered.holds and not metered.unknown
    overhead = metered_time / plain_time - 1.0 if plain_time else 0.0
    benchmark.extra_info.update(
        {"plain_s": round(plain_time, 2), "overhead": round(overhead, 3)}
    )
    record(
        results_dir,
        "dispatch_budget_overhead",
        f"BMC k={BMC_BOUND} leader_election: unbudgeted {plain_time:.2f}s, "
        f"budgeted {metered_time:.2f}s ({overhead:+.1%} overhead)\n",
    )
    update_bench(
        "dispatch",
        "budget_overhead",
        {
            "plain_s": round(plain_time, 3),
            "metered_s": round(metered_time, 3),
            "overhead": round(overhead, 4),
        },
    )
    assert overhead < 0.25


def test_tracing_overhead(benchmark, bundles, results_dir, no_cache):
    """Tracing on must cost <= 5% wall time on serial BMC; fail loudly.

    Both configurations run best-of-2 to damp scheduler noise: tracing
    writes one small JSON line per span into an in-memory buffer, so any
    real regression here means the hot-path guards in :mod:`repro.obs`
    stopped being cheap.
    """
    bundle = bundles["leader_election"]
    safety = bundle.safety[0].formula

    def bmc():
        return check_k_invariance(bundle.program, safety, BMC_BOUND, jobs=1)

    def best_of(runs, setup=None, teardown=None):
        best = float("inf")
        result = None
        for _ in range(runs):
            state = setup() if setup else None
            start = time.perf_counter()
            result = bmc()
            elapsed = time.perf_counter() - start
            if teardown:
                teardown(state)
            best = min(best, elapsed)
        return result, best

    plain_result, plain_time = best_of(2)

    def install():
        tracer = obs.Tracer(sink=io.StringIO())
        obs.install_tracer(tracer)
        return tracer

    def uninstall(tracer):
        obs.install_tracer(None)

    def run():
        return best_of(2, setup=install, teardown=uninstall)

    traced_result, traced_time = benchmark.pedantic(run, rounds=1, iterations=1)
    assert plain_result.holds and traced_result.holds
    overhead = traced_time / plain_time - 1.0 if plain_time else 0.0
    benchmark.extra_info.update(
        {"plain_s": round(plain_time, 3), "overhead": round(overhead, 3)}
    )
    record(
        results_dir,
        "dispatch_tracing_overhead",
        f"BMC k={BMC_BOUND} leader_election: untraced {plain_time:.2f}s, "
        f"traced {traced_time:.2f}s ({overhead:+.1%} overhead)\n",
    )
    update_bench(
        "dispatch",
        "tracing_overhead",
        {
            "plain_s": round(plain_time, 3),
            "traced_s": round(traced_time, 3),
            "overhead": round(overhead, 4),
        },
    )
    assert overhead <= 0.05, (
        f"tracing overhead {overhead:+.1%} exceeds the 5% budget "
        f"(untraced {plain_time:.2f}s, traced {traced_time:.2f}s)"
    )
