"""Machine-readable benchmark telemetry: ``BENCH_<name>.json`` emitters.

Every benchmark run leaves a JSON artifact at the repository root so CI
and regression tooling can diff numbers across commits without scraping
pytest output.  Schema (version 3)::

    {
      "schema": 3,
      "bench": "<name>",
      "generated_unix": <float>,
      "git_rev": "<short rev or null>",
      "config": {"python": "...", "platform": "...", "cpus": N},
      "sections": {"<section>": {...}, ...}
    }

``sections`` is the per-benchmark payload: one entry per test (for
``BENCH_dispatch.json``) or per protocol row (for
``BENCH_protocols.json``, whose rows carry ``wall_s``, ``queries``,
verdict counts, ``cache_hit_rate``, and ``holds``).

Version 2 added the proven-lemma ledger columns to the protocol rows:
``ledger_hits``/``ledger_misses`` count warm-rerun obligation lookups
against :mod:`repro.proof.ledger`, and ``ledger_warm_wall_s`` is the
wall time of that rerun (every obligation served from disk).

Version 3 added the ``phases`` sub-dict to the protocol rows -- the
per-phase wall totals (``normalize``/``ground``/``cnf``/``cache``/
``sat``/``theory``/``extract``, in ms) that
:mod:`repro.obs.profile` attaches to every query's statistics -- so the
regression gate (:mod:`repro.obs.benchcmp`, ``benchmarks/compare.py``)
can attribute a wall-time regression to the phase that slowed down.

:func:`update_bench` is incremental -- each test merges its own section
into the existing file -- so a partial benchmark run refreshes only the
numbers it measured.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import subprocess
import sys
import time

SCHEMA_VERSION = 3

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def git_rev() -> str | None:
    """The current short commit hash, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def effective_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine; CI runners and containers
    routinely pin processes to a subset via cgroups/affinity, and a
    speedup figure measured on 1 effective CPU says nothing about the
    dispatch layer.  Falls back to ``os.cpu_count()`` on platforms
    without ``sched_getaffinity``.
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_config() -> dict:
    """The environment snapshot embedded in every BENCH file."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
        "effective_cpus": effective_cpus(),
        "argv": sys.argv[1:],
    }


def bench_path(name: str) -> pathlib.Path:
    return REPO_ROOT / f"BENCH_{name}.json"


def write_bench(name: str, sections: dict) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` from scratch with the given sections."""
    payload = {
        "schema": SCHEMA_VERSION,
        "bench": name,
        "generated_unix": time.time(),
        "git_rev": git_rev(),
        "config": run_config(),
        "sections": sections,
    }
    path = bench_path(name)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def update_bench(name: str, section: str, data: dict) -> pathlib.Path:
    """Merge one section into ``BENCH_<name>.json``, creating it if needed."""
    path = bench_path(name)
    sections: dict = {}
    if path.exists():
        try:
            sections = json.loads(path.read_text()).get("sections", {})
        except (json.JSONDecodeError, AttributeError):
            sections = {}
    sections[section] = data
    return write_bench(name, sections)
