"""Figure 14 reproduction: the paper's evaluation table.

For every protocol this regenerates the row (S, RF, C, I, G):

* S, RF, C, I are read off our models and invariants;
* G -- the number of CTIs in the interactive search -- is *measured* by
  replaying a session with an oracle user who contributes the published
  conjectures as their CTIs appear (Section 5.2's interaction count);
* the benchmark timings cover the final inductiveness check of each row,
  i.e. the fully automatic part of the paper's workflow.

Paper values are embedded for the EXPERIMENTS.md comparison; the row shape
(which protocols need more interaction, relative invariant sizes) is the
reproduction target -- see EXPERIMENTS.md for the per-row deviations.
"""

import pytest

from repro.core.induction import check_inductive
from repro.core.policy import OraclePolicy
from repro.core.session import Session

from .conftest import record

PAPER_ROWS = {
    # protocol: (S, RF, C, I, G) as printed in Figure 14
    "leader_election": (2, 5, 3, 12, 3),
    "lock_server": (5, 11, 3, 21, 8),
    "distributed_lock": (2, 5, 3, 26, 12),
    "learning_switch": (2, 5, 11, 18, 3),
    "db_chain": (4, 13, 11, 35, 7),
    "chord": (1, 13, 35, 46, 4),
}

_session_cache: dict[str, object] = {}


def _measured_g(name, bundle):
    """Replay the interactive session once per protocol (cached)."""
    if name not in _session_cache:
        session = Session(bundle.program, initial=bundle.safety)
        outcome = session.run(OraclePolicy(bundle.invariant), max_iterations=40)
        assert outcome.success, f"{name}: oracle session failed: {outcome.reason}"
        _session_cache[name] = outcome
    return _session_cache[name].cti_count


@pytest.mark.parametrize("name", sorted(PAPER_ROWS))
def test_inductiveness_check(benchmark, bundles, name):
    """Time the final inductiveness check of each Figure 14 row."""
    bundle = bundles[name]
    result = benchmark.pedantic(
        check_inductive,
        args=(bundle.program, list(bundle.invariant)),
        rounds=1,
        iterations=1,
    )
    assert result.holds
    benchmark.extra_info["S"] = bundle.sort_count()
    benchmark.extra_info["RF"] = bundle.symbol_count()
    benchmark.extra_info["C"] = bundle.literal_count(bundle.safety)
    benchmark.extra_info["I"] = bundle.literal_count(bundle.invariant)
    benchmark.extra_info["paper_row"] = PAPER_ROWS[name]


@pytest.mark.parametrize("name", sorted(PAPER_ROWS))
def test_interactive_session_g(benchmark, bundles, name):
    """Measure (and time) the oracle replay that yields the G column."""
    bundle = bundles[name]

    def run():
        session = Session(bundle.program, initial=bundle.safety)
        return session.run(OraclePolicy(bundle.invariant), max_iterations=40)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.success
    _session_cache[name] = outcome
    benchmark.extra_info["G"] = outcome.cti_count
    benchmark.extra_info["paper_G"] = PAPER_ROWS[name][4]


def test_zz_emit_table(bundles, results_dir):
    """Write the measured Figure 14 table (runs after the G sessions)."""
    lines = [
        "Figure 14 reproduction: measured on our models (paper values in parens)",
        "",
        f"{'Protocol':26s} {'S':>7s} {'RF':>8s} {'C':>8s} {'I':>8s} {'G':>8s}",
    ]
    for name in PAPER_ROWS:
        bundle = bundles[name]
        paper = PAPER_ROWS[name]
        measured_g = _measured_g(name, bundle)
        cells = [
            f"{bundle.sort_count()}({paper[0]})",
            f"{bundle.symbol_count()}({paper[1]})",
            f"{bundle.literal_count(bundle.safety)}({paper[2]})",
            f"{bundle.literal_count(bundle.invariant)}({paper[3]})",
            f"{measured_g}({paper[4]})",
        ]
        lines.append(
            f"{name:26s} " + " ".join(f"{cell:>8s}" for cell in cells)
        )
    record(results_dir, "figure14", "\n".join(lines) + "\n")
