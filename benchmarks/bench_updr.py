"""The UPDR comparison (Section 6 / related work, reference [17]).

The paper reports that the fully automatic UPDR "is fragile ... we were
not successful in applying it to the examples verified here", motivating
the interactive method.  This benchmark runs our UPDR implementation on
the Figure 14 protocols under a budget and records each verdict: a SAFE is
a win for automation, an UNKNOWN/DIVERGED reproduces the paper's
fragility observation; UNSAFE would be a soundness bug (asserted against).
"""

import pytest

from repro.core.houdini import proves
from repro.core.induction import check_inductive
from repro.core.updr import UpdrStatus, updr

from .conftest import record

PROTOCOLS = ["leader_election", "lock_server", "distributed_lock"]

_verdicts: dict[str, str] = {}


@pytest.mark.parametrize("name", PROTOCOLS)
def test_updr_verdict(benchmark, bundles, name):
    bundle = bundles[name]

    def run():
        return updr(bundle.program, max_frames=5, max_obligations=60)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.status != UpdrStatus.UNSAFE  # all protocols are safe
    if result.status == UpdrStatus.SAFE:
        assert check_inductive(bundle.program, list(result.invariant)).holds
        assert proves(bundle.program, result.invariant, bundle.safety[0])
    _verdicts[name] = (
        f"{result.status.value} (frames={result.frames_used}, "
        f"clauses={result.clauses_learned}, "
        f"solver_calls={result.statistics.get('solver_calls', 0)})"
    )
    benchmark.extra_info["status"] = result.status.value
    benchmark.extra_info["clauses"] = result.clauses_learned


def test_zz_emit_verdicts(results_dir):
    lines = ["UPDR (automatic baseline) verdicts under budget:", ""]
    lines += [f"  {name:20s} {verdict}" for name, verdict in _verdicts.items()]
    lines.append("")
    lines.append(
        "paper: 'The method is fragile, however, and we were not successful"
        " in applying it to the examples verified here.'"
    )
    record(results_dir, "updr_verdicts", "\n".join(lines) + "\n")
