"""Regression gate CLI: diff two BENCH_*.json telemetry files.

Usage::

    python benchmarks/compare.py BASELINE CANDIDATE [--max-ratio R]
        [--floor-s S] [--report-only]

Exit 0 when every drift stays inside the noise envelope, 1 on a
regression (a timing past ``max_ratio``x + ``floor_s``, a ``holds``
flip, an ``unknown`` increase).  ``--report-only`` always exits 0 --
the PR mode, where the printed report is advisory.

The comparison logic lives in :mod:`repro.obs.benchcmp` (shared with
``repro bench diff``); this wrapper only fixes up ``sys.path`` so the
script runs from a bare checkout.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.obs import benchcmp  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json files with noise-aware thresholds"
    )
    parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    parser.add_argument("candidate", help="freshly generated BENCH_*.json")
    parser.add_argument(
        "--max-ratio", type=float, default=benchcmp.DEFAULT_MAX_RATIO,
        help="relative growth allowed before a timing regresses "
             f"(default {benchcmp.DEFAULT_MAX_RATIO}x)",
    )
    parser.add_argument(
        "--floor-s", type=float, default=benchcmp.DEFAULT_FLOOR_S,
        help="absolute seconds of growth always tolerated "
             f"(default {benchcmp.DEFAULT_FLOOR_S}s)",
    )
    parser.add_argument(
        "--report-only", action="store_true",
        help="print the report but always exit 0 (PR-gate mode)",
    )
    args = parser.parse_args(argv)
    return benchcmp.diff_files(
        args.baseline,
        args.candidate,
        max_ratio=args.max_ratio,
        floor_s=args.floor_s,
        report_only=args.report_only,
    )


if __name__ == "__main__":
    sys.exit(main())
