"""The automatic baseline (Section 5.1): template pools + batched Houdini.

Times the fully automatic lock-server proof and the Houdini filtering of
the published invariants (a no-op pass that measures pure check overhead).
"""

from repro.core.absint import enumerate_candidates
from repro.core.houdini import houdini, proves
from repro.logic import Sort, Var

from .conftest import record


def test_houdini_lock_server_templates(benchmark, bundles, results_dir):
    bundle = bundles["lock_server"]
    client = Sort("client")
    variables = [Var("C1", client), Var("C2", client)]
    pool = list(
        enumerate_candidates(
            bundle.program.vocab,
            variables,
            max_literals=3,
            include_equality=True,
            max_candidates=4000,
        )
    )

    def run():
        return houdini(bundle.program, pool)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert proves(bundle.program, result.invariant, bundle.safety[0])
    benchmark.extra_info["pool"] = len(pool)
    benchmark.extra_info["survivors"] = len(result.invariant)
    benchmark.extra_info["rounds"] = result.rounds
    record(
        results_dir,
        "houdini_lock_server",
        f"pool {len(pool)} -> {len(result.invariant)} survivors in "
        f"{result.rounds} rounds; safety implied: True\n",
    )


def test_houdini_keeps_published_invariants(benchmark, bundles):
    """Every protocol's published invariant is a Houdini fixpoint."""
    names = ["leader_election", "lock_server", "distributed_lock", "chord"]

    def run():
        out = {}
        for name in names:
            bundle = bundles[name]
            result = houdini(bundle.program, list(bundle.invariant))
            out[name] = len(result.invariant) == len(bundle.invariant)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(results.values()), results
