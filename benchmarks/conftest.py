"""Shared fixtures for the benchmark harness.

Bundles are session-scoped: building a protocol model is cheap, but tests
compare declaration objects, and one shared instance keeps them identical.
Results intended for EXPERIMENTS.md are also appended to
``benchmarks/results/`` as plain text so a benchmark run regenerates the
paper-versus-measured tables.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.protocols import ALL_PROTOCOLS

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bundles():
    return {name: module.build() for name, module in ALL_PROTOCOLS.items()}


@pytest.fixture(scope="session")
def leader(bundles):
    return bundles["leader_election"]


def record(results_dir: pathlib.Path, name: str, text: str) -> None:
    path = results_dir / f"{name}.txt"
    path.write_text(text)
    print(f"\n[written {path}]\n{text}")
