"""Subprocess workload for the cross-process persistent-cache benchmark.

``test_persistent_cache_cross_process_rerun`` launches this script twice
in fresh interpreters -- cold, then warm -- with ``REPRO_CACHE_PERSIST=1``
pointed at a private ``REPRO_CACHE_DIR``.  The in-memory query cache dies
with each process; any warm-run speedup is therefore attributable to the
disk-backed store alone.

Usage: ``python -m benchmarks.rerun_workload <protocol> <bound>``.
Prints one JSON object on stdout: workload wall time (measured inside the
process, excluding interpreter startup) plus the solver's query/cache
counters so the caller can assert a 100% warm hit rate.
"""

from __future__ import annotations

import json
import sys
import time


def main() -> None:
    protocol, bound = sys.argv[1], int(sys.argv[2])
    from repro.core.bounded import check_k_invariance
    from repro.protocols import ALL_PROTOCOLS
    from repro.solver import SolverStats

    bundle = ALL_PROTOCOLS[protocol].build()
    safety = bundle.safety[0].formula
    stats = SolverStats()
    start = time.perf_counter()
    result = check_k_invariance(
        bundle.program, safety, bound, jobs=1, stats=stats
    )
    wall = time.perf_counter() - start
    print(
        json.dumps(
            {
                "wall_s": wall,
                "holds": result.holds,
                "queries": stats.queries,
                "cache_hits": stats.cache_hits,
                "cache_hit_rate": stats.cache_hit_rate,
            }
        )
    )


if __name__ == "__main__":
    main()
