"""Subprocess workloads for the cross-process rerun benchmarks.

Two modes, both launched twice in fresh interpreters -- cold, then warm
-- so that any warm-run speedup is attributable to the on-disk store
alone (every in-memory cache dies with its process):

* ``python -m benchmarks.rerun_workload <protocol> <bound>`` -- the BMC
  sweep behind ``test_persistent_cache_cross_process_rerun``, with
  ``REPRO_CACHE_PERSIST=1`` pointed at a private ``REPRO_CACHE_DIR``.
  The warm run still grounds every query; only solving is skipped.

* ``python -m benchmarks.rerun_workload <protocol> prove`` -- the proof
  workload behind ``test_ledger_cross_process_rerun``, with
  ``REPRO_LEDGER_DIR`` pointed at a private ledger.  The warm run skips
  *everything*: proven obligations are recognized by content address
  before any solver object is built, so it reports zero queries.

Each prints one JSON object on stdout: workload wall time (measured
inside the process, excluding interpreter startup) plus the counters the
caller asserts on (cache hit rate, or ledger hits and query count).
"""

from __future__ import annotations

import json
import sys
import time


def bmc_mode(protocol: str, bound: int) -> dict:
    from repro.core.bounded import check_k_invariance
    from repro.protocols import ALL_PROTOCOLS
    from repro.solver import SolverStats

    bundle = ALL_PROTOCOLS[protocol].build()
    safety = bundle.safety[0].formula
    stats = SolverStats()
    start = time.perf_counter()
    result = check_k_invariance(
        bundle.program, safety, bound, jobs=1, stats=stats
    )
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "holds": result.holds,
        "queries": stats.queries,
        "cache_hits": stats.cache_hits,
        "cache_hit_rate": stats.cache_hit_rate,
    }


def prove_mode(protocol: str) -> dict:
    from repro.proof.ledger import default_ledger
    from repro.proof.manager import plan_of, prove
    from repro.protocols import ALL_PROTOCOLS

    bundle = ALL_PROTOCOLS[protocol].build()
    plan = plan_of(bundle.program, bundle.invariant)
    ledger = default_ledger()
    start = time.perf_counter()
    report = prove(plan, ledger=ledger)
    wall = time.perf_counter() - start
    return {
        "wall_s": wall,
        "holds": report.ok,
        "queries": report.queries,
        "ledger_hits": report.ledger_hits,
        "ledger_misses": report.ledger_misses,
        "ledger_hit_rate": report.hit_rate,
    }


def main() -> None:
    protocol, mode = sys.argv[1], sys.argv[2]
    if mode == "prove":
        payload = prove_mode(protocol)
    else:
        payload = bmc_mode(protocol, int(mode))
    print(json.dumps(payload))


if __name__ == "__main__":
    main()
