"""Algorithm 1 ablation (Section 4.3): minimal versus arbitrary CTIs.

The design-choice DESIGN.md calls out: minimization costs extra solver
calls but produces the small CTIs the generalization step depends on.
Measured here on the first CTI of the leader election session.
"""

import pytest

from repro.core.minimize import (
    NegativeTuples,
    PositiveTuples,
    SortSize,
    find_minimal_cti,
)
from repro.logic import Sort

from .conftest import record


def _measures(program):
    return [
        SortSize(Sort("node")),
        SortSize(Sort("id")),
        PositiveTuples(program.vocab.relation("pnd")),
        PositiveTuples(program.vocab.relation("leader")),
    ]


def _size(cti, program):
    node, ident = program.vocab.sorts
    return (
        cti.state.sort_size(node)
        + cti.state.sort_size(ident),
        cti.state.positive_count(program.vocab.relation("pnd"))
        + cti.state.positive_count(program.vocab.relation("leader")),
    )


def test_unminimized_cti(benchmark, leader, results_dir):
    def run():
        return find_minimal_cti(leader.program, list(leader.safety), ())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    elements, tuples = _size(result.cti, leader.program)
    benchmark.extra_info["elements"] = elements
    benchmark.extra_info["tuples"] = tuples
    record(
        results_dir,
        "minimize_ablation_off",
        f"without measures: {elements} elements, {tuples} mutable tuples\n",
    )
    assert elements >= 4


def test_minimized_cti(benchmark, leader, results_dir):
    def run():
        return find_minimal_cti(
            leader.program, list(leader.safety), _measures(leader.program)
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    elements, tuples = _size(result.cti, leader.program)
    # The Figure 7 (a1) shape: 2 nodes + 2 ids, 1 pending + 1 leader.
    assert elements == 4 and tuples == 2
    assert dict(result.bounds) == {"|node|": 2, "|id|": 2, "#pnd": 1, "#leader": 1}
    benchmark.extra_info["elements"] = elements
    benchmark.extra_info["tuples"] = tuples
    record(
        results_dir,
        "minimize_ablation_on",
        f"with measures: {elements} elements, {tuples} mutable tuples "
        f"(bounds {result.bounds})\n",
    )


def test_negative_tuple_measure(benchmark, leader):
    """Lexicographic order with a negative-tuple measure still terminates
    and yields a total CTI."""
    program = leader.program
    measures = [
        SortSize(Sort("node")),
        SortSize(Sort("id")),
        NegativeTuples(program.vocab.relation("leader")),
    ]

    def run():
        return find_minimal_cti(program, list(leader.safety), measures)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.cti is not None
