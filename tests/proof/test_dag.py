"""The proof-dependency DAG: scheduling, cycle rejection, diagnostics."""

import pytest

from repro.analysis.diagnostics import Diagnostics, Severity
from repro.proof.dag import (
    CycleError,
    ProofDag,
    ProofEdge,
    build_dag,
    cycle_diagnostics,
    provers_of,
)
from repro.rml.ast import ProofDecl
from repro.rml.parser import parse_program
from repro.rml.typecheck import program_diagnostics


def decl(name, proves, uses=()):
    return ProofDecl(name, tuple(proves), tuple(uses))


# ------------------------------------------------------------------ scheduling


def test_diamond_frontiers():
    """a <- b, a <- c, {b, c} <- d layers as [a], [b, c], [d]."""
    dag = build_dag(
        [
            decl("a", ["i_a"]),
            decl("b", ["i_b"], ["i_a"]),
            decl("c", ["i_c"], ["i_a"]),
            decl("d", ["i_d"], ["i_b", "i_c"]),
        ]
    )
    assert dag.frontiers() == [("a",), ("b", "c"), ("d",)]
    assert dag.prerequisites("d") == ("b", "c")
    assert dag.prerequisites("a") == ()


def test_independent_proofs_share_one_frontier():
    dag = build_dag([decl("p", ["x"]), decl("q", ["y"]), decl("r", ["z"])])
    assert dag.frontiers() == [("p", "q", "r")]


def test_provers_of_first_declaration_wins():
    provers = provers_of([decl("p", ["x", "y"]), decl("q", ["y", "z"])])
    assert provers == {"x": "p", "y": "p", "z": "q"}


def test_unknown_lemma_contributes_no_edge():
    """RML303's job, not the scheduler's: the edge is simply absent."""
    dag = build_dag([decl("p", ["x"], ["ghost"])])
    assert dag.edges == ()
    assert dag.frontiers() == [("p",)]


def test_discovered_edges_reschedule():
    dag = build_dag([decl("p", ["x"]), decl("q", ["y"])])
    assert dag.frontiers() == [("p", "q")]
    extended = dag.with_edges(
        [ProofEdge("q", "p", "x", kind="discovered")]
    )
    assert extended.frontiers() == [("p",), ("q",)]


# --------------------------------------------------------------------- cycles


def test_two_proof_cycle_detected_with_closing_edge():
    dag = build_dag(
        [decl("p1", ["i1"], ["i2"]), decl("p2", ["i2"], ["i1"])]
    )
    cycles = dag.cycles()
    assert len(cycles) == 1
    (cycle,) = cycles
    # The walk returns to its start; the LAST edge closes the cycle.
    assert cycle[0].src == cycle[-1].dst
    assert {edge.src for edge in cycle} == {"p1", "p2"}
    with pytest.raises(CycleError, match="proof-dependency cycle"):
        dag.frontiers()


def test_self_loop_is_a_cycle():
    dag = build_dag([decl("p", ["i"], ["i"])])
    cycles = dag.cycles()
    assert len(cycles) == 1
    assert cycles[0][0].src == cycles[0][0].dst == "p"
    with pytest.raises(CycleError):
        dag.frontiers()


def test_parallel_with_references_deduplicate():
    """Duplicate `with` lemmas yield one edge in cycle provenance."""
    dag = build_dag([decl("p", ["i"], ["j", "j"]), decl("q", ["j"], ["i"])])
    cycles = dag.cycles()
    assert len(cycles) == 1
    assert len(cycles[0]) == 2


def test_cycle_diagnostics_name_every_edge_and_the_closer():
    dag = build_dag(
        [
            decl("p1", ["i1"], ["i2"]),
            decl("p2", ["i2"], ["i3"]),
            decl("p3", ["i3"], ["i1"]),
        ]
    )
    diagnostics = cycle_diagnostics(dag)
    assert len(diagnostics) == 1
    (diagnostic,) = diagnostics
    assert diagnostic.code == "RML304"
    assert diagnostic.severity is Severity.ERROR
    assert "p1 -> p2 -> p3 -> p1" in diagnostic.message
    notes = [note.message for note in diagnostic.notes]
    # One note per non-closing edge, one naming the closer, one rationale.
    assert len(notes) == 4
    assert "closes the cycle back to" in notes[2]
    assert "unsound" in notes[3]


def test_acyclic_dag_has_no_diagnostics():
    dag = build_dag([decl("a", ["x"]), decl("b", ["y"], ["x"])])
    assert cycle_diagnostics(dag) == ()


# ----------------------------------------------------- surface-level diagnostics

CYCLE_SOURCE = """
program cyc

sort t

relation r : t

init {
    assume forall X:t. ~r(X);
}

invariant a: forall X:t. ~r(X)
invariant b: forall X:t. ~r(X)

proof pa proves a with b
proof pb proves b with a

action noop {
    assume true;
}
"""


def codes_of(source):
    program = parse_program(source, check=False)
    return [d.code for d in program_diagnostics(program)]


def test_with_cycle_rejected_by_typecheck_with_spans():
    program = parse_program(CYCLE_SOURCE, check=False)
    diagnostics = [
        d for d in program_diagnostics(program) if d.code == "RML304"
    ]
    assert len(diagnostics) == 1
    assert diagnostics[0].span is not None  # sourced, not synthetic
    closing = [
        n for n in diagnostics[0].notes if "closes the cycle" in n.message
    ]
    assert len(closing) == 1 and closing[0].span is not None


def test_unknown_proof_reference_is_rml301():
    source = CYCLE_SOURCE.replace(
        "proof pa proves a with b\nproof pb proves b with a",
        "proof pa proves ghost",
    )
    assert "RML301" in codes_of(source)


def test_with_reference_to_mainline_invariant_is_rml303():
    source = CYCLE_SOURCE.replace(
        "proof pa proves a with b\nproof pb proves b with a",
        "proof pa proves a with b",
    )
    # b exists but no declared proof establishes it (implicit main does).
    assert "RML303" in codes_of(source)


def test_duplicate_invariant_name_is_rml302():
    source = CYCLE_SOURCE.replace(
        "invariant b: forall X:t. ~r(X)",
        "invariant a: forall X:t. ~r(X)",
    ).replace("proof pa proves a with b\nproof pb proves b with a", "")
    assert "RML302" in codes_of(source)


def test_non_universal_invariant_is_rml305():
    source = CYCLE_SOURCE.replace(
        "invariant b: forall X:t. ~r(X)",
        "invariant b: exists X:t. r(X)",
    ).replace("proof pa proves a with b\nproof pb proves b with a", "")
    assert "RML305" in codes_of(source)
