"""The proven-lemma ledger: key determinism, durability, staleness."""

import dataclasses
import json
import os
import subprocess
import sys

import pytest

import repro
from repro.core.induction import obligation_premises, obligations
from repro.proof.ledger import (
    LEDGER_FORMAT,
    Ledger,
    LedgerEntry,
    default_ledger,
    keys_of,
    ledger_dir,
    ledger_enabled,
    lemma_set_fingerprint,
    program_fingerprint,
)
from repro.proof.manager import plan_of, status
from repro.protocols import lock_server


@pytest.fixture(scope="module")
def bundle():
    return lock_server.build()


def entry_for(bundle, index=0):
    obligation = obligations(bundle.program, bundle.invariant)[index]
    key, ph, oh, lh = keys_of(
        bundle.program,
        obligation,
        obligation_premises(obligation, bundle.invariant),
    )
    return key, LedgerEntry(
        program=bundle.program.name,
        invariant=obligation.target or "<no-abort>",
        kind=obligation.kind,
        program_hash=ph,
        obligation_hash=oh,
        lemma_hash=lh,
    )


# --------------------------------------------------------------- determinism

# Prints every ledger key for the lock_server protocol; run under two
# different PYTHONHASHSEEDs, the outputs must be byte-identical -- the
# fingerprints go through the order-deterministic printer, never a set.
_KEYS_SCRIPT = """
import json
from repro.core.induction import obligation_premises, obligations
from repro.proof.ledger import keys_of, program_fingerprint
from repro.protocols import lock_server

bundle = lock_server.build()
keys = [program_fingerprint(bundle.program)]
for obligation in obligations(bundle.program, bundle.invariant):
    key, _, oh, lh = keys_of(
        bundle.program,
        obligation,
        obligation_premises(obligation, bundle.invariant),
    )
    keys.extend([key, oh, lh])
print(json.dumps(keys))
"""


def _keys_under_hashseed(seed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", _KEYS_SCRIPT],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert out.returncode == 0, out.stderr
    return json.loads(out.stdout)


def test_keys_identical_across_hash_seeds():
    first = _keys_under_hashseed("0")
    second = _keys_under_hashseed("4242")
    assert first == second
    assert len(first) > 1


def test_lemma_set_fingerprint_order_and_duplicate_insensitive(bundle):
    formulas = [c.formula for c in bundle.invariant]
    assert lemma_set_fingerprint(formulas) == lemma_set_fingerprint(
        list(reversed(formulas)) + formulas
    )
    assert lemma_set_fingerprint(formulas) != lemma_set_fingerprint(
        formulas[1:]
    )


def test_program_fingerprint_tracks_the_transition_relation(bundle):
    program = bundle.program
    edited = dataclasses.replace(program, body=program.init)
    assert program_fingerprint(program) != program_fingerprint(edited)
    assert program_fingerprint(program) == program_fingerprint(
        dataclasses.replace(program)
    )


# ---------------------------------------------------------------- durability


def test_record_then_proven_roundtrip(tmp_path, bundle):
    ledger = Ledger(str(tmp_path))
    key, entry = entry_for(bundle)
    assert ledger.proven(key) is None
    ledger.record(entry)
    found = ledger.proven(key)
    assert found is not None
    assert found.invariant == entry.invariant
    assert found.kind == entry.kind
    assert ledger.hits == 1 and ledger.misses == 1
    assert len(ledger) == 1


def test_truncated_entry_reads_unproven_and_is_deleted(tmp_path, bundle, caplog):
    ledger = Ledger(str(tmp_path))
    key, entry = entry_for(bundle)
    ledger.record(entry)
    path = ledger._path(key)
    with open(path, "r+") as handle:
        handle.truncate(10)
    with caplog.at_level("WARNING", logger="repro.store"):
        assert ledger.proven(key) is None
    assert not os.path.exists(path)
    assert "treated as unproven" in caplog.text
    # Deleted means the next lookup is a clean miss, not another warning.
    assert ledger.proven(key) is None


def test_stale_schema_entry_reads_unproven(tmp_path, bundle):
    ledger = Ledger(str(tmp_path))
    key, entry = entry_for(bundle)
    ledger.record(entry)
    path = ledger._path(key)
    with open(path) as handle:
        payload = json.load(handle)
    payload["format"] = LEDGER_FORMAT + 1
    with open(path, "w") as handle:
        json.dump(payload, handle)
    assert ledger.proven(key) is None
    assert not os.path.exists(path)


def test_corruption_warns_once_per_store(tmp_path, bundle, caplog):
    ledger = Ledger(str(tmp_path))
    with caplog.at_level("WARNING", logger="repro.store"):
        for index in (0, 1):
            key, entry = entry_for(bundle, index)
            ledger.record(entry)
            with open(ledger._path(key), "w") as handle:
                handle.write("{ not json")
            assert ledger.proven(key) is None
    assert caplog.text.count("treated as unproven") == 1


def test_key_mismatch_is_corruption(tmp_path, bundle):
    """A hand-moved entry must not prove a different obligation."""
    ledger = Ledger(str(tmp_path))
    key0, entry0 = entry_for(bundle, 0)
    key1, _ = entry_for(bundle, 1)
    ledger.record(entry0)
    os.makedirs(os.path.dirname(ledger._path(key1)), exist_ok=True)
    os.replace(ledger._path(key0), ledger._path(key1))
    assert ledger.proven(key1) is None


def test_unwritable_root_counts_write_errors_and_never_raises(bundle):
    ledger = Ledger("/proc/definitely-not-writable")
    _, entry = entry_for(bundle)
    ledger.record(entry)
    assert ledger.write_errors == 1


def test_entries_scan_does_not_inflate_hits(tmp_path, bundle):
    ledger = Ledger(str(tmp_path))
    for index in (0, 1, 2):
        ledger.record(entry_for(bundle, index)[1])
    scanned = list(ledger.entries())
    assert len(scanned) == 3
    assert ledger.hits == 0


# --------------------------------------------------------------- environment


def test_ledger_env_toggles(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LEDGER", "0")
    assert not ledger_enabled()
    assert default_ledger() is None
    monkeypatch.setenv("REPRO_LEDGER", "1")
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path))
    assert ledger_enabled()
    assert ledger_dir() == str(tmp_path)
    ledger = default_ledger()
    assert ledger is not None and ledger.root == str(tmp_path)


# ----------------------------------------------------------------- staleness


def test_status_reports_stale_after_transition_edit(tmp_path, bundle):
    """Editing the transition relation flips proven rows to stale."""
    from repro.proof.manager import prove

    ledger = Ledger(str(tmp_path))
    plan = plan_of(bundle.program, bundle.invariant)
    report = prove(plan, ledger=ledger)
    assert report.ok
    assert all(row.state == "proven" for row in status(plan, ledger))

    edited = dataclasses.replace(bundle.program, body=bundle.program.init)
    edited_plan = plan_of(edited, bundle.invariant)
    rows = status(edited_plan, Ledger(str(tmp_path)))
    assert rows and all(row.state == "stale" for row in rows)
