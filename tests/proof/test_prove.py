"""End-to-end proof management: prove/status, the CLI, engine reruns."""

import json

import pytest

from repro.cli import main
from repro.core.houdini import houdini
from repro.core.induction import check_inductive
from repro.core.session import Session
from repro.proof.ledger import Ledger
from repro.proof.manager import MAIN_PROOF, NO_ABORT, plan_of, prove, status
from repro.protocols import lock_server
from repro.rml.parser import parse_program

DIAMOND_SOURCE = """
program diamond

sort t

relation r1 : t
relation r2 : t
relation r3 : t
relation r4 : t

init {
    assume forall X:t. ~r1(X);
    assume forall X:t. ~r2(X);
    assume forall X:t. ~r3(X);
    assume forall X:t. ~r4(X);
}

safety empty: forall X:t. ~r1(X)

invariant i1: forall X:t. ~r1(X)
invariant i2: forall X:t. ~r2(X)
invariant i3: forall X:t. ~r3(X)
invariant i4: forall X:t. ~r4(X)

proof p1 proves i1
proof p2 proves i2 with i1
proof p3 proves i3 with i1
proof p4 proves i4 with i2, i3

action noop {
    assume true;
}
"""

CYCLE_SOURCE = """
program cyc

sort t

relation r : t

init {
    assume forall X:t. ~r(X);
}

invariant a: forall X:t. ~r(X)
invariant b: forall X:t. ~r(X)

proof pa proves a with b
proof pb proves b with a

action noop {
    assume true;
}
"""


@pytest.fixture(scope="module")
def bundle():
    return lock_server.build()


# ----------------------------------------------------------------- the parser


def test_invariant_and_proof_declarations_parse():
    program = parse_program(DIAMOND_SOURCE)
    assert [inv.name for inv in program.invariants] == ["i1", "i2", "i3", "i4"]
    assert program.invariant_named("i2") is not None
    assert [(p.name, p.proves, p.uses) for p in program.proofs] == [
        ("p1", ("i1",), ()),
        ("p2", ("i2",), ("i1",)),
        ("p3", ("i3",), ("i1",)),
        ("p4", ("i4",), ("i2", "i3")),
    ]
    # Spans are threaded for diagnostics.
    assert program.invariants[0].span is not None
    assert program.proofs[3].use_spans[1] is not None


def test_proof_requires_proves_keyword():
    from repro.logic.lexer import ParseError

    with pytest.raises(ParseError):
        parse_program("program p\nsort t\ninit { assume true; }\nproof q: x\n")


# ---------------------------------------------------------------- plan shapes


def test_bundle_plan_is_single_main_node(bundle):
    plan = plan_of(bundle.program, bundle.invariant)
    assert [node.name for node in plan.nodes] == [MAIN_PROOF]
    assert plan.frontiers() == [(MAIN_PROOF,)]
    assert set(plan.invariants) == {c.name for c in bundle.invariant}
    assert plan.prover_of("C0") == MAIN_PROOF


def test_declared_proofs_shape_the_plan():
    plan = plan_of(parse_program(DIAMOND_SOURCE))
    assert plan.frontiers() == [("p1",), ("p2", "p3"), ("p4",)]
    assert plan.node_named("p4").lemmas == ("i2", "i3")


# -------------------------------------------------------------- prove + ledger


def test_prove_twice_issues_zero_queries_second_time(tmp_path, bundle):
    ledger = Ledger(str(tmp_path))
    plan = plan_of(bundle.program, bundle.invariant)

    cold = prove(plan, ledger=ledger)
    assert cold.ok and cold.queries > 0 and cold.ledger_hits == 0

    warm = prove(plan, ledger=ledger)
    assert warm.ok
    assert warm.queries == 0
    assert warm.hit_rate == 1.0
    assert warm.ledger_hits == cold.queries
    assert all(outcome.via == "ledger" for outcome in warm.outcomes)

    rows = status(plan, ledger)
    assert {row.name for row in rows} == set(plan.invariants) | {NO_ABORT}
    assert all(row.state == "proven" for row in rows)
    assert all(row.entries for row in rows)


def test_diamond_obligations_discharged_exactly_once(tmp_path):
    plan = plan_of(parse_program(DIAMOND_SOURCE))
    ledger = Ledger(str(tmp_path))
    report = prove(plan, ledger=ledger)
    assert report.ok
    # 4 invariants x (initiation + consecution) + 1 no-abort, no repeats:
    # i1's proof is not re-run for p2/p3/p4, only assumed.
    assert report.queries == 9
    solved = [(o.node, o.description) for o in report.outcomes]
    assert len(solved) == len(set(solved))
    assert prove(plan, ledger=ledger).queries == 0


def test_prove_without_ledger_solves_every_time(bundle):
    plan = plan_of(bundle.program, bundle.invariant)
    first = prove(plan)
    second = prove(plan)
    assert first.ok and second.ok
    assert first.queries == second.queries > 0
    assert second.ledger_hits == 0


def test_identical_obligations_share_one_ledger_entry(tmp_path):
    """Content addressing: same-formula invariants prove once, even cold."""
    twins = parse_program(
        "program twins\n\nsort t\n\nrelation r : t\n\n"
        "init {\n    assume forall X:t. ~r(X);\n}\n\n"
        "invariant a: forall X:t. ~r(X)\n"
        "invariant b: forall X:t. ~r(X)\n\n"
        "action noop {\n    assume true;\n}\n"
    )
    report = prove(plan_of(twins), ledger=Ledger(str(tmp_path)))
    assert report.ok
    # b's obligations are byte-identical to a's (same key), so each pair
    # is solved once even on the cold run; every invariant still gets an
    # outcome and a provenance entry.
    assert report.queries == 2
    assert len(report.outcomes) == 4
    assert all(
        row.state == "proven"
        for row in status(plan_of(twins), Ledger(str(tmp_path)))
    )


def test_prove_reports_cti_on_buggy_protocol(tmp_path):
    broken = parse_program(
        DIAMOND_SOURCE.replace(
            "action noop {\n    assume true;\n}",
            "variable c : t\n\naction bad {\n    havoc c;\n    insert r1(c);\n}",
        )
    )
    report = prove(plan_of(broken), ledger=Ledger(str(tmp_path)))
    assert not report.ok
    assert report.cti is not None
    assert report.failed_node is not None
    # Nothing unsound was recorded: a rerun still fails.
    assert not prove(plan_of(broken), ledger=Ledger(str(tmp_path))).ok


# ------------------------------------------------------------------ the CLI


def write_rml(tmp_path, source, name="model.rml"):
    path = tmp_path / name
    path.write_text(source)
    return str(path)


def test_cli_prove_cold_then_warm(tmp_path, capsys):
    ledger_dir = str(tmp_path / "ledger")
    code = main(["prove", "lock_server", "--ledger-dir", ledger_dir])
    assert code == 0
    assert "all proof obligations discharged" in capsys.readouterr().out

    code = main(
        ["prove", "lock_server", "--ledger-dir", ledger_dir, "--format", "json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["queries"] == 0
    assert payload["ledger_hit_rate"] == 1.0

    code = main(
        ["status", "lock_server", "--ledger-dir", ledger_dir, "--format", "json"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert all(
        row["state"] == "proven" for row in payload["invariants"]
    )


def test_cli_status_unproven_exits_nonzero(tmp_path, capsys):
    code = main(
        ["status", "lock_server", "--ledger-dir", str(tmp_path / "empty")]
    )
    assert code == 1
    assert "unproven" in capsys.readouterr().out


def test_cli_prove_rejects_with_cycle_before_solving(tmp_path, capsys):
    path = write_rml(tmp_path, CYCLE_SOURCE)
    code = main(["prove", path, "--ledger-dir", str(tmp_path / "ledger")])
    captured = capsys.readouterr()
    assert code == 2
    assert "RML304" in captured.err
    assert "closes the cycle" in captured.err
    assert "refusing to start the solver" in captured.err
    # Pre-solve: nothing was recorded.
    assert not (tmp_path / "ledger").exists()


def test_cli_prove_rml_file_with_proofs(tmp_path, capsys):
    path = write_rml(tmp_path, DIAMOND_SOURCE)
    ledger_dir = str(tmp_path / "ledger")
    assert main(["prove", path, "--ledger-dir", ledger_dir]) == 0
    capsys.readouterr()
    assert main(["status", path, "--ledger-dir", ledger_dir]) == 0
    out = capsys.readouterr().out
    assert "proven" in out and "p4" in out


def test_cli_prove_unknown_target_errors():
    with pytest.raises(SystemExit):
        main(["prove", "no_such_protocol_or_file"])


# ------------------------------------------------------------- engine reruns


def test_check_inductive_consults_the_ledger(tmp_path, bundle):
    ledger = Ledger(str(tmp_path))
    cold = check_inductive(bundle.program, bundle.invariant, ledger=ledger)
    assert cold.holds
    assert cold.statistics.get("ledger_hits", 0) == 0
    warm = check_inductive(bundle.program, bundle.invariant, ledger=ledger)
    assert warm.holds
    assert warm.statistics["ledger_hits"] > 0
    assert warm.statistics.get("ledger_misses", 0) == 0


def test_session_seeds_from_declared_invariants_and_uses_ledger(tmp_path):
    program = parse_program(DIAMOND_SOURCE)
    session = Session.from_program(program, ledger=Ledger(str(tmp_path)))
    assert [c.name for c in session.conjectures] == ["i1", "i2", "i3", "i4"]
    assert session.check().holds
    warm = session.check()
    assert warm.holds and warm.statistics["ledger_hits"] > 0


def test_houdini_skips_a_fully_ledgered_pool(tmp_path, bundle):
    ledger = Ledger(str(tmp_path))
    first = houdini(bundle.program, bundle.invariant, ledger=ledger)
    assert first.invariant == tuple(bundle.invariant)
    second = houdini(bundle.program, bundle.invariant, ledger=ledger)
    assert second.invariant == tuple(bundle.invariant)
    assert second.rounds == 0
    assert second.statistics["ledger_hits"] > 0
