"""Run directories, meta.json, and the signal-to-exception bridge."""

import json
import os
import signal

import pytest

from repro.recovery.resume import (
    META_FORMAT,
    META_NAME,
    RunMeta,
    default_run_dir,
    load_meta,
    runs_root,
    write_meta,
)
from repro.recovery.signals import Interrupted, install_handlers


class TestRunDir:
    def test_deterministic(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUNS_DIR", raising=False)
        first = default_run_dir("verify", "examples/lock_server.rml")
        second = default_run_dir("verify", "examples/lock_server.rml")
        assert first == second
        assert first.startswith(os.path.join(".repro-runs", "verify-"))
        assert "lock_server" in first

    def test_distinguishes_targets_sharing_a_basename(self):
        assert default_run_dir("verify", "a/x.rml") != default_run_dir(
            "verify", "b/x.rml"
        )

    def test_distinguishes_commands(self):
        assert default_run_dir("check", "lock_server") != default_run_dir(
            "bmc", "lock_server"
        )

    def test_env_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
        assert runs_root() == str(tmp_path / "runs")
        assert default_run_dir("check", "x").startswith(str(tmp_path))


class TestMeta:
    def test_roundtrip(self, tmp_path):
        run_dir = str(tmp_path / "run")
        written = write_meta(
            run_dir, "verify", ["verify", "x.rml", "--run-dir", run_dir],
            "x.rml",
        )
        loaded = load_meta(run_dir)
        assert loaded is not None
        assert loaded.command == written.command == "verify"
        assert loaded.argv == ("verify", "x.rml", "--run-dir", run_dir)
        assert loaded.target == "x.rml"

    def test_missing_directory_is_none(self, tmp_path):
        assert load_meta(str(tmp_path / "nope")) is None

    def test_foreign_format_is_none(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / META_NAME).write_text(
            json.dumps({"format": META_FORMAT + 1, "meta": {}})
        )
        assert load_meta(str(run_dir)) is None

    def test_garbage_is_none(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / META_NAME).write_text("{half a json")
        assert load_meta(str(run_dir)) is None

    def test_unwritable_dir_degrades_silently(self):
        meta = write_meta(
            "/proc/definitely-not-writable", "check", ["check"], "x"
        )
        assert isinstance(meta, RunMeta)  # best effort, never raises


class TestSignals:
    def test_sigterm_raises_interrupted(self):
        restore = install_handlers()
        try:
            with pytest.raises(Interrupted) as caught:
                os.kill(os.getpid(), signal.SIGTERM)
                # the handler fires at a bytecode boundary; give it one
                for _ in range(1000):
                    pass
            assert caught.value.signum == signal.SIGTERM
            assert "SIGTERM" in str(caught.value)
        finally:
            restore()

    def test_restore_reinstates_previous_handlers(self):
        before = signal.getsignal(signal.SIGTERM)
        restore = install_handlers()
        assert signal.getsignal(signal.SIGTERM) is not before
        restore()
        assert signal.getsignal(signal.SIGTERM) is before
