"""Worker heartbeats and the dispatch wedge watchdog."""

import multiprocessing
import os

import pytest

from repro import obs
from repro.logic import RelDecl, Sort, Var, vocabulary
from repro.logic import syntax as s
from repro.recovery import heartbeat
from repro.solver.dispatch import shutdown_pool, solve_queries
from repro.solver.epr import EprSolver
from repro.solver.stats import SolverStats


@pytest.fixture(autouse=True)
def _disarmed():
    heartbeat.disarm()
    yield
    heartbeat.disarm()


class TestBeat:
    def test_disarmed_beat_is_a_noop(self):
        heartbeat.beat()  # must not raise, nothing armed

    def test_armed_beat_sends_one_byte(self):
        reader, writer = multiprocessing.Pipe(duplex=False)
        heartbeat.arm(writer)
        heartbeat.beat(force=True)
        assert reader.poll(1.0)
        assert reader.recv_bytes() == b"."
        reader.close()
        writer.close()

    def test_beats_are_rate_limited(self):
        reader, writer = multiprocessing.Pipe(duplex=False)
        heartbeat.arm(writer)
        heartbeat.beat(force=True)
        for _ in range(100):
            heartbeat.beat()  # within the interval: suppressed
        assert reader.recv_bytes() == b"."
        assert not reader.poll(0)
        reader.close()
        writer.close()

    def test_broken_pipe_disarms_quietly(self):
        reader, writer = multiprocessing.Pipe(duplex=False)
        heartbeat.arm(writer)
        reader.close()
        writer.close()
        heartbeat.beat(force=True)  # must not raise
        assert not heartbeat.armed()


class TestTimeout:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_HEARTBEAT_TIMEOUT", raising=False)
        assert heartbeat.heartbeat_timeout() == heartbeat.DEFAULT_TIMEOUT

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT_TIMEOUT", "7.5")
        assert heartbeat.heartbeat_timeout() == 7.5

    def test_malformed_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEARTBEAT_TIMEOUT", "soon")
        assert heartbeat.heartbeat_timeout() == heartbeat.DEFAULT_TIMEOUT


needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="requires the fork start method"
)

elem = Sort("elem")
p = RelDecl("p", (elem,))
VOCAB = vocabulary(sorts=[elem], relations=[p], functions=[])
X = Var("X", elem)


def _queries(count):
    out = []
    for index in range(count):
        solver = EprSolver(VOCAB)
        solver.add(s.exists((X,), s.Rel(p, (X,))), name=f"q{index}")
        out.append((solver, None, f"wedge-{index}"))
    return out


@needs_fork
class TestWedgeWatchdog:
    def test_silently_hung_worker_is_killed_and_work_retried(
        self, monkeypatch
    ):
        """A worker that stops beating is SIGKILLed by the watchdog well
        before any wall deadline, and its query still completes (retry or
        in-process fallback)."""
        monkeypatch.setenv("REPRO_FAULT", "hang:1.0:600,seed:3")
        monkeypatch.setenv("REPRO_HEARTBEAT_TIMEOUT", "1.0")
        monkeypatch.setenv("REPRO_RETRIES", "0")
        registry = obs.MetricsRegistry()
        old = obs.install_metrics(registry)
        stats = SolverStats()
        try:
            from repro.solver.dispatch import query_of

            queries = [
                query_of(solver, name=name)
                for solver, _, name in _queries(2)
            ]
            results = [
                result
                for (result,) in solve_queries(queries, jobs=2, stats=stats)
            ]
        finally:
            obs.install_metrics(old)
            shutdown_pool()
            monkeypatch.delenv("REPRO_FAULT")
        assert all(result.satisfiable for result in results)
        counters = registry.to_dict().get("counters", {})
        assert counters.get("worker_wedged_total", 0) >= 1
