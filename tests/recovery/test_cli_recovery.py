"""End-to-end crash safety through the CLI, in subprocesses.

Covers the acceptance criterion of the recovery work: a run SIGKILLed at
an arbitrary journal point and resumed must reach the verdict of an
uninterrupted run, reusing journaled work instead of re-solving it; an
interrupted run must exit resumable (75) and leave no orphaned pool
workers behind.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.recovery import EXIT_RESUMABLE

SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

needs_fork = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="requires the fork start method"
)


def _run(cwd, argv, extra_env=None, **kwargs):
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop("REPRO_FAULT", None)
    env.update(extra_env or {})
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        cwd=cwd, env=env, capture_output=True, text=True, timeout=300,
        **kwargs,
    )


def _reused_ratio(metrics_path):
    with open(metrics_path) as handle:
        return json.load(handle).get("gauges", {}).get("resume_reused_ratio")


class TestResumeFlow:
    def test_torn_journal_resumes_to_the_same_verdict(self, tmp_path):
        cwd = str(tmp_path)
        first = _run(cwd, ["check", "lock_server", "--run-dir", "rd"])
        assert first.returncode == 0, first.stderr

        journal = tmp_path / "rd" / "journal.jsonl"
        blob = journal.read_bytes()
        journal.write_bytes(blob[:-7])  # tear the final append

        second = _run(
            cwd,
            ["check", "lock_server", "--run-dir", "rd", "--resume",
             "--metrics", "m.json"],
        )
        assert second.returncode == 0, second.stderr
        ratio = _reused_ratio(tmp_path / "m.json")
        assert ratio is not None and 0.0 < ratio <= 1.0

    def test_resume_subcommand_reinvokes_the_recorded_argv(self, tmp_path):
        cwd = str(tmp_path)
        first = _run(cwd, ["check", "lock_server", "--run-dir", "rd"])
        assert first.returncode == 0, first.stderr
        resumed = _run(cwd, ["resume", "rd"])
        assert resumed.returncode == 0, resumed.stderr
        assert "resuming: repro check lock_server" in resumed.stderr

    def test_resume_of_a_non_run_dir_fails_cleanly(self, tmp_path):
        result = _run(str(tmp_path), ["resume", "not-a-run"])
        assert result.returncode == 2
        assert "meta.json" in result.stderr


@needs_fork
class TestChaosKill9:
    """SIGKILL the main process at random journal points; resume; compare."""

    def _verdict_after_chaos(self, cwd, argv, run_dir, seed):
        fault = {"REPRO_FAULT": f"kill9:0.5,seed:{seed}"}
        result = _run(cwd, [*argv, "--run-dir", run_dir], extra_env=fault)
        kills = 0
        while result.returncode in (-9, 128 + 9):
            kills += 1
            assert kills < 80, "chaos run makes no progress"
            result = _run(
                cwd, [*argv, "--run-dir", run_dir, "--resume"],
                extra_env=fault,
            )
        return result, kills

    @pytest.mark.slow
    def test_check_survives_arbitrary_kills(self, tmp_path):
        cwd = str(tmp_path)
        argv = ["check", "lock_server"]
        reference = _run(cwd, argv)
        result, kills = self._verdict_after_chaos(cwd, argv, "rd", seed=1)
        assert kills > 0, "kill9:0.5 never fired -- chaos hook is dead"
        assert result.returncode == reference.returncode
        # a fault-free resume of the finished run is pure replay
        final = _run(
            cwd,
            [*argv, "--run-dir", "rd", "--resume", "--metrics", "m.json"],
        )
        assert final.returncode == reference.returncode
        assert _reused_ratio(tmp_path / "m.json") == 1.0

    @pytest.mark.slow
    def test_verify_survives_arbitrary_kills(self, tmp_path):
        cwd = str(tmp_path)
        rml = os.path.join(
            os.path.dirname(SRC), "examples", "lock_server.rml"
        )
        argv = ["verify", rml]
        reference = _run(cwd, argv)
        result, kills = self._verdict_after_chaos(cwd, argv, "rd", seed=2)
        assert result.returncode == reference.returncode
        assert result.stdout.splitlines()[-1] == \
            reference.stdout.splitlines()[-1]


@needs_fork
@pytest.mark.skipif(
    not os.path.isdir("/proc"), reason="orphan scan reads /proc"
)
class TestNoOrphans:
    def _children_of(self, pid):
        children = []
        for entry in os.listdir("/proc"):
            if not entry.isdigit():
                continue
            try:
                with open(f"/proc/{entry}/stat") as handle:
                    fields = handle.read().rsplit(")", 1)[1].split()
            except OSError:
                continue
            if int(fields[1]) == pid:  # ppid is the field after the state
                children.append(int(entry))
        return children

    def test_interrupt_reaps_every_pool_worker(self, tmp_path):
        """Ctrl-C mid-dispatch: the run exits resumable and no worker
        process outlives it (the orphaned-children bug)."""
        env = dict(
            os.environ,
            PYTHONPATH=SRC,
            # workers hang forever, watchdog off: they stay alive until
            # the shutdown path explicitly reaps them
            REPRO_FAULT="hang:1.0:600",
            REPRO_HEARTBEAT_TIMEOUT="0",
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "check", "lock_server",
             "-j", "2", "--run-dir", "rd"],
            cwd=str(tmp_path), env=env, start_new_session=True,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                workers = self._children_of(process.pid)
                if workers:
                    break
                time.sleep(0.1)
            assert workers, "pool workers never appeared"
            os.kill(process.pid, signal.SIGINT)
            stderr = process.communicate(timeout=60)[1]
            assert process.returncode == EXIT_RESUMABLE, stderr
            assert "resume with:" in stderr
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                try:
                    os.killpg(process.pid, 0)
                except ProcessLookupError:
                    break  # the whole session is gone: nothing orphaned
                time.sleep(0.1)
            else:
                pytest.fail(f"surviving processes: "
                            f"{self._children_of(process.pid)}")
        finally:
            try:
                os.killpg(process.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
