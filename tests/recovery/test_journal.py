"""The write-ahead run journal: durability, torn tails, schema guard."""

import json
import os

import pytest

from repro.recovery.journal import JOURNAL_FORMAT, Journal


@pytest.fixture()
def path(tmp_path):
    return str(tmp_path / "run" / "journal.jsonl")


class TestRoundtrip:
    def test_fresh_then_resume_replays_everything(self, path):
        journal = Journal.fresh(path, {"command": "check"})
        journal.append("houdini.init", "k1", failing=["a"], unknown=[])
        journal.append("houdini.round", "k1:1", failing=[], unknown=[])
        journal.close()

        resumed = Journal.resume(path)
        assert [e.kind for e in resumed.events] == [
            "houdini.init", "houdini.round",
        ]
        assert resumed.replay("houdini.init", "k1") == {
            "failing": ["a"], "unknown": [],
        }
        assert resumed.reused == 1
        resumed.close()

    def test_resume_continues_the_sequence(self, path):
        journal = Journal.fresh(path)
        journal.append("obligation", "x", verdict="unsat")
        journal.close()
        resumed = Journal.resume(path)
        resumed.append("obligation", "y", verdict="unsat")
        resumed.close()
        lines = [
            json.loads(line) for line in open(path, encoding="utf-8")
        ]
        assert [line["seq"] for line in lines] == [0, 1, 2]
        assert all(line["v"] == JOURNAL_FORMAT for line in lines)

    def test_replay_last_event_wins(self, path):
        journal = Journal.fresh(path)
        journal.append("updr.frames", "p", frames="old")
        journal.append("updr.frames", "p", frames="new")
        journal.close()
        resumed = Journal.resume(path)
        assert resumed.replay("updr.frames", "p") == {"frames": "new"}
        resumed.close()

    def test_append_after_close_is_a_noop(self, path):
        journal = Journal.fresh(path)
        journal.close()
        journal.append("obligation", "x", verdict="unsat")
        assert journal.recorded == 0

    def test_events_of_orders_and_filters(self, path):
        journal = Journal.fresh(path)
        journal.append("updr.frames", "p", frames="f0")
        journal.append("updr.clause", "p", clause="c1", level=1)
        journal.append("updr.clause", "q", clause="other", level=1)
        journal.append("updr.clause", "p", clause="c2", level=2)
        journal.close()
        resumed = Journal.resume(path)
        events = resumed.events_of(("updr.frames", "updr.clause"), "p")
        assert [e.data.get("clause", e.data.get("frames")) for e in events] \
            == ["f0", "c1", "c2"]
        resumed.close()


class TestTornTail:
    def test_half_written_last_line_is_truncated(self, path):
        journal = Journal.fresh(path)
        journal.append("obligation", "a", verdict="unsat")
        journal.append("obligation", "b", verdict="unsat")
        journal.close()
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[:-9])  # cut into the final line

        resumed = Journal.resume(path)
        assert [e.key for e in resumed.events] == ["a"]
        # the tail was truncated on disk too: the next append is valid JSONL
        resumed.append("obligation", "b", verdict="unsat")
        resumed.close()
        lines = [json.loads(line) for line in open(path, encoding="utf-8")]
        assert [line["seq"] for line in lines] == [0, 1, 2]

    def test_garbage_tail_is_dropped(self, path):
        journal = Journal.fresh(path)
        journal.append("obligation", "a", verdict="unsat")
        journal.close()
        with open(path, "ab") as handle:
            handle.write(b'{"not": "an event"}\n')
        resumed = Journal.resume(path)
        assert [e.key for e in resumed.events] == ["a"]
        resumed.close()

    def test_missing_trailing_newline_means_torn(self, path):
        journal = Journal.fresh(path)
        journal.append("obligation", "a", verdict="unsat")
        journal.close()
        with open(path, "ab") as handle:
            # valid JSON but no newline: the crash hit mid-write
            handle.write(
                json.dumps(
                    {"v": JOURNAL_FORMAT, "seq": 2, "kind": "obligation",
                     "key": "b", "data": {}}
                ).encode()
            )
        resumed = Journal.resume(path)
        assert [e.key for e in resumed.events] == ["a"]
        resumed.close()


class TestSchemaGuard:
    def test_foreign_schema_replays_as_empty(self, path):
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {"v": 999, "seq": 0, "kind": "header", "key": "",
                     "data": {}}
                )
                + "\n"
            )
            handle.write(
                json.dumps(
                    {"v": 999, "seq": 1, "kind": "obligation", "key": "a",
                     "data": {"verdict": "unsat"}}
                )
                + "\n"
            )
        resumed = Journal.resume(path)
        assert resumed.events == []
        assert resumed.replay("obligation", "a") is None
        # it starts over with a fresh header of the current schema
        resumed.append("obligation", "b", verdict="unsat")
        resumed.close()
        lines = [json.loads(line) for line in open(path, encoding="utf-8")]
        assert [line["v"] for line in lines] == [JOURNAL_FORMAT] * 2
        assert [line["seq"] for line in lines] == [0, 1]


class TestMetrics:
    def test_reused_ratio(self, path):
        journal = Journal.fresh(path)
        journal.append("obligation", "a", verdict="unsat")
        journal.append("obligation", "b", verdict="unsat")
        journal.close()
        resumed = Journal.resume(path)
        assert resumed.reused_ratio() == 0.0
        assert resumed.replay("obligation", "a") is not None
        assert resumed.replay("obligation", "b") is not None
        assert resumed.reused_ratio() == 1.0
        resumed.append("obligation", "c", verdict="unsat")
        assert resumed.reused_ratio() == pytest.approx(2 / 3)
        resumed.close()
