"""``repro report`` surfaces journal appends and transient-I/O retries."""

from repro import obs
from repro.cli import main


def _synthetic(events):
    base = [{"e": "run", "run": "r1", "v": 1}]
    return base + events


class TestDurabilitySection:
    def test_journal_and_retry_points_are_summarized(self):
        events = _synthetic([
            {"e": "point", "id": "p1", "name": "journal.append", "ts": 0.1,
             "attrs": {"kind": "obligation"}},
            {"e": "point", "id": "p2", "name": "journal.append", "ts": 0.2,
             "attrs": {"kind": "obligation"}},
            {"e": "point", "id": "p3", "name": "journal.append", "ts": 0.3,
             "attrs": {"kind": "houdini.round"}},
            {"e": "point", "id": "p4", "name": "store.retry", "ts": 0.4,
             "attrs": {"op": "write abc123", "errno": 11, "attempt": 1}},
            {"e": "start", "id": "s1", "name": "journal.load", "ts": 0.0},
            {"e": "end", "id": "s1", "dur": 0.001,
             "attrs": {"events": 7}},
        ])
        report = obs.render_report(events)
        assert (
            "durability (journal resume, worker supervision, stores):"
            in report
        )
        assert "journal loads: 1 (7 event(s) replayed)" in report
        assert "journal appends: 3" in report
        assert "2 obligation" in report and "1 houdini.round" in report
        # Consolidated durability gauges: replay share plus fault totals.
        assert "resume_reused_ratio: 0.700" in report  # 7 / (7 + 3)
        assert "worker_wedged_total: 0" in report
        assert "store_retries_total: 1" in report
        assert "write abc123" in report

    def test_section_absent_without_durability_events(self):
        report = obs.render_report(_synthetic([]))
        assert "durability" not in report

    def test_traced_journaled_run_reports_appends(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        code = main([
            "check", "lock_server",
            "--run-dir", str(tmp_path / "rd"),
            "--trace", str(trace),
        ])
        assert code == 0
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "journal appends:" in out
        assert "obligation" in out
