"""Engines replaying their journal: zero re-execution of completed work.

Every test runs an engine twice against the same journal file: a live
run that records, then a resumed run that must reach the identical
verdict while re-issuing **no solver queries** for journaled-complete
work (asserted through :class:`~repro.solver.stats.SolverStats` query
counts -- the acceptance criterion of the crash-safety work).
"""

import pytest

from repro.core.bounded import check_k_invariance, find_error_trace
from repro.core.houdini import houdini, pool_fingerprint
from repro.core.induction import Conjecture, check_inductive
from repro.core.updr import UpdrStatus, updr
from repro.logic import FuncDecl, RelDecl, Sort, parse_formula, vocabulary
from repro.proof.manager import plan_of, prove
from repro.protocols import lock_server
from repro.recovery.journal import Journal
from repro.rml.ast import Assume, Havoc, Program, choice, seq
from repro.rml.sugar import assert_, insert
from repro.solver.stats import SolverStats


@pytest.fixture(scope="module")
def lock_bundle():
    return lock_server.build()


@pytest.fixture()
def journal_path(tmp_path):
    return str(tmp_path / "journal.jsonl")


def _monotone_program() -> Program:
    """p only ever grows and q stays within p: safe, UPDR-friendly."""
    elem = Sort("elem")
    p = RelDecl("p", (elem,))
    q = RelDecl("q", (elem,))
    c = FuncDecl("c", (), elem)
    vocab = vocabulary(sorts=[elem], relations=[p, q], functions=[c])
    from repro.logic.parser import parse_term

    fml = lambda src: parse_formula(src, vocab)
    init = seq(
        Assume(fml("forall X. ~p(X)")),
        Assume(fml("forall X. ~q(X)")),
    )
    add_p = seq(Havoc(c), insert(p, parse_term("c", vocab)))
    add_q = seq(
        Havoc(c), Assume(fml("p(c)")), insert(q, parse_term("c", vocab))
    )
    body = seq(
        assert_(fml("forall X. q(X) -> p(X)")),
        choice(add_p, add_q, labels=("add_p", "add_q")),
    )
    return Program(
        name="monotone", vocab=vocab, axioms=(), init=init, body=body
    )


class TestHoudiniResume:
    def test_resume_skips_every_round(self, lock_bundle, journal_path):
        vocab = lock_bundle.program.vocab
        wrong = Conjecture(
            "no_holder", parse_formula("forall C:client. ~holds(C)", vocab)
        )
        pool = [*lock_bundle.invariant, wrong]

        live = Journal.fresh(journal_path)
        live_stats = SolverStats()
        first = houdini(
            lock_bundle.program, pool, stats=live_stats, journal=live
        )
        live.close()
        assert live_stats.queries > 0
        assert first.rounds >= 2  # the wrong conjecture forces a real round

        resumed = Journal.resume(journal_path)
        resumed_stats = SolverStats()
        second = houdini(
            lock_bundle.program, pool, stats=resumed_stats, journal=resumed
        )
        assert resumed_stats.queries == 0
        assert [c.name for c in second.invariant] == [
            c.name for c in first.invariant
        ]
        assert second.rounds == first.rounds
        assert second.dropped_consecution == first.dropped_consecution
        assert resumed.reused_ratio() == 1.0
        assert second.statistics["journal_hits"] > 0
        resumed.close()

    def test_pool_fingerprint_is_order_insensitive(self, lock_bundle):
        pool = list(lock_bundle.invariant)
        forward = pool_fingerprint(lock_bundle.program, pool)
        backward = pool_fingerprint(lock_bundle.program, pool[::-1])
        assert forward == backward

    def test_different_pool_does_not_replay(self, lock_bundle, journal_path):
        live = Journal.fresh(journal_path)
        houdini(lock_bundle.program, list(lock_bundle.invariant), journal=live)
        live.close()
        resumed = Journal.resume(journal_path)
        stats = SolverStats()
        smaller = list(lock_bundle.invariant)[:3]
        houdini(lock_bundle.program, smaller, stats=stats, journal=resumed)
        assert stats.queries > 0  # a different pool is a different run
        resumed.close()


class TestInductionResume:
    def test_resume_discharges_from_journal(self, lock_bundle, journal_path):
        live = Journal.fresh(journal_path)
        live_stats = SolverStats()
        first = check_inductive(
            lock_bundle.program, list(lock_bundle.invariant),
            stats=live_stats, journal=live,
        )
        live.close()
        assert first.holds and live_stats.queries > 0

        resumed = Journal.resume(journal_path)
        resumed_stats = SolverStats()
        second = check_inductive(
            lock_bundle.program, list(lock_bundle.invariant),
            stats=resumed_stats, journal=resumed,
        )
        assert second.holds
        assert resumed_stats.queries == 0
        assert second.statistics["journal_hits"] == live_stats.queries
        resumed.close()


class TestBoundedResume:
    def test_k_invariance_resumes_to_zero_queries(
        self, lock_bundle, journal_path
    ):
        safety = lock_bundle.safety[0].formula
        live = Journal.fresh(journal_path)
        live_stats = SolverStats()
        first = check_k_invariance(
            lock_bundle.program, safety, 3, stats=live_stats, journal=live
        )
        live.close()
        assert first.holds and live_stats.queries > 0

        resumed = Journal.resume(journal_path)
        resumed_stats = SolverStats()
        second = check_k_invariance(
            lock_bundle.program, safety, 3, stats=resumed_stats,
            journal=resumed,
        )
        assert second.holds == first.holds
        assert resumed_stats.queries == 0
        resumed.close()

    def test_error_trace_resumes_to_zero_queries(
        self, lock_bundle, journal_path
    ):
        live = Journal.fresh(journal_path)
        live_stats = SolverStats()
        first = find_error_trace(
            lock_bundle.program, 3, stats=live_stats, journal=live
        )
        live.close()
        assert first.holds and live_stats.queries > 0

        resumed = Journal.resume(journal_path)
        resumed_stats = SolverStats()
        second = find_error_trace(
            lock_bundle.program, 3, stats=resumed_stats, journal=resumed
        )
        assert second.holds == first.holds
        assert resumed_stats.queries == 0
        resumed.close()


class TestUpdrResume:
    def test_frames_restored_from_snapshot(self, journal_path):
        program = _monotone_program()
        live = Journal.fresh(journal_path)
        live_stats = SolverStats()
        first = updr(
            program, max_frames=8, max_obligations=200, stats=live_stats,
            journal=live,
        )
        live.close()
        assert first.status == UpdrStatus.SAFE

        resumed = Journal.resume(journal_path)
        resumed_stats = SolverStats()
        second = updr(
            program, max_frames=8, max_obligations=200, stats=resumed_stats,
            journal=resumed,
        )
        assert second.status == UpdrStatus.SAFE
        # completed frames and learned clauses come from the journal; only
        # the final fixpoint confirmation may re-solve
        assert resumed_stats.queries < live_stats.queries
        assert resumed.reused > 0
        resumed.close()


class TestProveResume:
    def test_dag_resumes_via_journal(self, lock_bundle, journal_path):
        plan = plan_of(lock_bundle.program, lock_bundle.invariant)
        live = Journal.fresh(journal_path)
        first = prove(plan, journal=live)
        live.close()
        assert first.ok and first.queries > 0

        resumed = Journal.resume(journal_path)
        second = prove(plan, journal=resumed)
        assert second.ok
        assert second.queries == 0
        assert {outcome.via for outcome in second.outcomes} == {"journal"}
        assert resumed.reused_ratio() == 1.0
        resumed.close()
