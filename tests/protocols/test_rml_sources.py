"""Text models must verify exactly like the programmatic ones."""

import pytest

from repro.core.induction import Conjecture, check_inductive
from repro.logic import parse_formula
from repro.protocols import rml_sources
from repro.rml.parser import parse_program
from repro.rml.typecheck import check_program


def _conjectures(program, pairs):
    return [
        Conjecture(name, parse_formula(source, program.vocab))
        for name, source in pairs
    ]


class TestLockServerText:
    @pytest.fixture(scope="class")
    def program(self):
        return parse_program(rml_sources.LOCK_SERVER)

    def test_well_formed(self, program):
        check_program(program)
        assert {r.name for r in program.vocab.relations} == {
            "lock_msg",
            "grant_msg",
            "unlock_msg",
            "holds",
            "server_free",
        }

    def test_invariant_inductive(self, program):
        conjectures = _conjectures(program, rml_sources.LOCK_SERVER_INVARIANT)
        assert check_inductive(program, conjectures).holds

    def test_safety_alone_not_inductive(self, program):
        conjectures = _conjectures(program, rml_sources.LOCK_SERVER_INVARIANT[:1])
        assert not check_inductive(program, conjectures).holds

    def test_matches_programmatic_statistics(self, program):
        from repro.protocols import lock_server

        bundle = lock_server.build()
        assert len(program.vocab.relations) == len(bundle.program.vocab.relations)
        assert len(program.vocab.sorts) == len(bundle.program.vocab.sorts)


class TestDistributedLockText:
    @pytest.fixture(scope="class")
    def program(self):
        return parse_program(rml_sources.DISTRIBUTED_LOCK)

    def test_well_formed(self, program):
        check_program(program)
        ep = program.vocab.function("ep")
        assert ep.arity == 1 and ep.sort.name == "epoch"

    def test_point_update_parsed_as_sugar(self, program):
        """``ep(n) := e`` expands to the Figure 12 ite update."""
        from repro.logic import Ite
        from repro.rml.ast import UpdateFunc, subcommands

        updates = [
            c
            for c in subcommands(program.body)
            if isinstance(c, UpdateFunc) and c.func.name == "ep"
        ]
        assert updates
        assert isinstance(updates[0].term, Ite)
    @pytest.mark.slow
    def test_invariant_inductive(self, program):
        conjectures = _conjectures(program, rml_sources.DISTRIBUTED_LOCK_INVARIANT)
        assert check_inductive(program, conjectures).holds

    @pytest.mark.slow
    def test_bmc_clean(self, program):
        from repro.core.bounded import find_error_trace

        assert find_error_trace(program, 2).holds
