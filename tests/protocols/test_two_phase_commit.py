"""Two-phase commit, the beyond-the-paper example written in RML text
(examples/two_phase_commit.py): parse, verify, and session-replay."""

import pytest

from repro.core.induction import Conjecture, check_inductive
from repro.core.bounded import find_error_trace
from repro.core.policy import OraclePolicy
from repro.core.session import Session
from repro.logic import parse_formula
from repro.rml.parser import parse_program
from repro.rml.typecheck import check_program

import importlib.util
import pathlib

_SPEC = importlib.util.spec_from_file_location(
    "two_phase_commit_example",
    pathlib.Path(__file__).parent.parent.parent / "examples" / "two_phase_commit.py",
)
_MODULE = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(_MODULE)


@pytest.fixture(scope="module")
def program():
    return parse_program(_MODULE.SOURCE)


@pytest.fixture(scope="module")
def conjectures(program):
    return [
        Conjecture(name, parse_formula(source, program.vocab))
        for name, source in _MODULE.INVARIANT
    ]


class TestTwoPhaseCommit:
    def test_well_formed(self, program):
        check_program(program)
        assert program.name == "two_phase_commit"

    def test_no_error_within_three(self, program):
        assert find_error_trace(program, 3).holds

    def test_invariant_inductive(self, program, conjectures):
        assert check_inductive(program, conjectures).holds

    def test_safety_alone_not_inductive(self, program, conjectures):
        result = check_inductive(program, conjectures[:2])
        assert not result.holds

    def test_session_replay(self, program, conjectures):
        session = Session(program, initial=conjectures[:2])
        outcome = session.run(OraclePolicy(conjectures))
        assert outcome.success
        assert outcome.cti_count <= 5

    def test_broken_variant_caught_by_bmc(self, program):
        """Dropping decide_commit's unanimity assume breaks validity."""
        source = _MODULE.SOURCE.replace(
            "assume forall N:node. vote_yes(N);", ""
        )
        broken = parse_program(source)
        result = find_error_trace(broken, 3)
        assert not result.holds
        result.trace.validate()
