"""Cross-protocol checks: every Figure 14 row builds, typechecks, and its
invariant is genuinely inductive while the bare safety property is not."""

import pytest

from repro.core.induction import check_inductive, check_initiation
from repro.rml.typecheck import check_program
from repro.protocols import (
    chord,
    db_chain,
    distributed_lock,
    leader_election,
    learning_switch,
    lock_server,
)

MODULES = {
    "leader_election": leader_election,
    "lock_server": lock_server,
    "distributed_lock": distributed_lock,
    "learning_switch": learning_switch,
    "db_chain": db_chain,
    "chord": chord,
}

# Expected Figure 14 style statistics for OUR models (paper values noted in
# EXPERIMENTS.md where they differ).
EXPECTED_STATS = {
    "leader_election": {"S": 2, "RF": 5},
    "lock_server": {"S": 1, "RF": 5},
    "distributed_lock": {"S": 2, "RF": 5},
    "learning_switch": {"S": 2, "RF": 7},
    "db_chain": {"S": 4, "RF": 10},
    "chord": {"S": 1, "RF": 6},
}


@pytest.fixture(scope="module", params=sorted(MODULES))
def bundle(request):
    return request.param, MODULES[request.param].build()


class TestWellFormedness:
    def test_program_checks(self, bundle):
        _, b = bundle
        check_program(b.program)

    def test_vocabulary_stratified(self, bundle):
        _, b = bundle
        b.program.vocab.check_stratified()

    def test_stats_match_model(self, bundle):
        name, b = bundle
        expected = EXPECTED_STATS[name]
        assert b.sort_count() == expected["S"]
        assert b.symbol_count() == expected["RF"]

    def test_safety_subset_of_invariant(self, bundle):
        _, b = bundle
        invariant_names = {c.name for c in b.invariant}
        assert {c.name for c in b.safety} <= invariant_names


@pytest.mark.slow
class TestInvariants:
    def test_conjectures_satisfy_initiation(self, bundle):
        _, b = bundle
        for conjecture in b.invariant:
            result = check_initiation(b.program, conjecture)
            assert not result.satisfiable, f"{conjecture.name} fails initiation"

    def test_invariant_is_inductive(self, bundle):
        _, b = bundle
        result = check_inductive(b.program, list(b.invariant))
        assert result.holds, (result.cti and str(result.cti.obligation.description))

    def test_safety_alone_is_not_inductive(self, bundle):
        """The interactive search is necessary: no protocol's assertion set
        is inductive by itself."""
        _, b = bundle
        result = check_inductive(b.program, list(b.safety))
        assert not result.holds
        assert result.cti is not None
        # The CTI state satisfies axioms and the current conjectures
        # (the search-loop invariant of Section 4.2).
        assert result.cti.state.satisfies(b.program.axiom_formula)
        for conjecture in b.safety:
            assert result.cti.state.satisfies(conjecture.formula)


@pytest.mark.slow
class TestBoundedSafety:
    def test_no_error_within_small_bound(self, bundle):
        from repro.core.bounded import find_error_trace

        name, b = bundle
        # Function-heavy unrollings (per-step `ep` versions widening the
        # epoch universe) make deep bounds expensive; depth 1 still
        # exercises init + a full transition + both abort probes.
        bound = 1 if name == "distributed_lock" else 2
        result = find_error_trace(b.program, bound)
        assert result.holds
