"""End-to-end reproduction of the paper's Section 2.3 walkthrough:
the interactive session discovers an invariant equivalent to Figure 6's
C0 & C1 & C2 & C3 in exactly G = 3 CTI/generalization iterations."""

import pytest

from repro.core.minimize import PositiveTuples, SortSize
from repro.core.policy import GeneralizingOraclePolicy
from repro.core.session import Session
from repro.logic import Sort, and_, not_
from repro.solver import EprSolver


def equivalent_under_axioms(program, f, g) -> bool:
    a = EprSolver(program.vocab)
    a.add(and_(program.axiom_formula, f, not_(g)))
    b = EprSolver(program.vocab)
    b.add(and_(program.axiom_formula, g, not_(f)))
    return not a.check().satisfiable and not b.check().satisfiable


@pytest.fixture(scope="module")
def outcome(leader_bundle):
    program = leader_bundle.program
    measures = [
        SortSize(Sort("node")),
        SortSize(Sort("id")),
        PositiveTuples(program.vocab.relation("pnd")),
        PositiveTuples(program.vocab.relation("leader")),
    ]
    session = Session(
        program, initial=leader_bundle.safety, bmc_bound=3, measures=measures
    )
    policy = GeneralizingOraclePolicy(leader_bundle.invariant[1:], bound=3)
    result = session.run(policy, max_iterations=6)
    return session, result


@pytest.mark.slow
class TestWalkthrough:
    def test_session_succeeds(self, outcome):
        _, result = outcome
        assert result.success

    def test_g_column_matches_figure14(self, outcome):
        """Figure 14, row 'Leader election in ring': G = 3."""
        _, result = outcome
        assert result.cti_count == 3

    def test_conjectures_match_figure6(self, leader_bundle, outcome):
        """Each generalized conjecture is equivalent, under the ring and
        order axioms, to one of the paper's C1, C2, C3 -- and all three are
        covered."""
        _, result = outcome
        program = leader_bundle.program
        found = [c for c in result.conjectures if c.name != "C0"]
        assert len(found) == 3
        matched = set()
        for conjecture in found:
            for target in leader_bundle.invariant[1:]:
                if equivalent_under_axioms(program, conjecture.formula, target.formula):
                    matched.add(target.name)
                    break
            else:
                pytest.fail(f"{conjecture.name} matches no paper conjecture")
        assert matched == {"C1", "C2", "C3"}

    def test_final_set_is_inductive(self, outcome):
        session, result = outcome
        assert session.check().holds

    def test_i_column_matches_figure14(self, leader_bundle):
        """Figure 14: the leader election invariant has 12 literals (counted
        on the paper's published C0..C3)."""
        assert leader_bundle.literal_count(leader_bundle.invariant) == 12
        assert leader_bundle.literal_count(leader_bundle.safety) == 3
