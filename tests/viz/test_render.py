"""Text and DOT renderers for states, partial structures, and traces."""

import pytest

from repro.logic import Elem, from_structure, make_structure
from repro.viz import (
    diff_to_text,
    partial_to_dot,
    partial_to_text,
    structure_to_dot,
    structure_to_text,
    trace_to_text,
)


@pytest.fixture()
def state(ring_vocab):
    node, ident = ring_vocab.sorts
    node0, node1 = Elem("node0", node), Elem("node1", node)
    id0, id1 = Elem("id0", ident), Elem("id1", ident)
    return make_structure(
        ring_vocab,
        universe={node: [node0, node1], ident: [id0, id1]},
        rels={
            "le": [(id0, id1)],
            "leader": [(node0,)],
            "pnd": [(id1, node1)],
            "btw": [],
        },
        funcs={"idn": {(node0,): id0, (node1,): id1}},
    )


class TestText:
    def test_structure_text_lists_everything(self, state):
        text = structure_to_text(state)
        assert "sort node = {node0, node1}" in text
        assert "leader = {(node0)}" in text
        assert "idn(node0) = id0" in text

    def test_partial_text_lists_defined_facts_only(self, state):
        partial = from_structure(state).forget("btw").forget("le").forget("pnd")
        text = partial_to_text(partial)
        assert "leader(node0)" in text
        assert "~leader(node1)" in text
        assert "pnd" not in text

    def test_diff_shows_changes(self, state, ring_vocab):
        leader = ring_vocab.relation("leader")
        node1 = state.universe[ring_vocab.sorts[0]][1]
        after = state.with_rel(leader, set(state.rels[leader]) | {(node1,)})
        diff = diff_to_text(state, after)
        assert "+ leader(node1)" in diff

    def test_diff_no_change(self, state):
        assert "(no change)" in diff_to_text(state, state)

    def test_trace_text(self, state, ring_vocab):
        leader = ring_vocab.relation("leader")
        node1 = state.universe[ring_vocab.sorts[0]][1]
        after = state.with_rel(leader, set(state.rels[leader]) | {(node1,)})
        text = trace_to_text([state, after], ["receive"])
        assert "state 0:" in text
        assert "step 1 (receive):" in text


class TestDot:
    def test_structure_dot_is_valid_digraph(self, state):
        dot = structure_to_dot(state, hide={"btw"})
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"node0"' in dot
        assert "leader" in dot

    def test_unary_relations_as_labels(self, state):
        dot = structure_to_dot(state)
        assert "~leader" in dot  # node1's negative label

    def test_high_arity_in_notes(self, ring_vocab, state):
        node = ring_vocab.sorts[0]
        node0, node1 = state.universe[node]
        btw = ring_vocab.relation("btw")
        with_btw = state.with_rel(btw, {(node0, node1, node0)})
        dot = structure_to_dot(with_btw)
        assert "btw(node0, node1, node0)" in dot

    def test_derived_relation_edges(self, state, ring_vocab):
        node = ring_vocab.sorts[0]
        node0, node1 = state.universe[node]

        def next_edges(structure):
            return {(node0, node1)}

        dot = structure_to_dot(state, derived={"next": next_edges}, hide={"btw"})
        assert 'label="next"' in dot

    def test_partial_dot_negative_edges_dotted(self, state, ring_vocab):
        partial = (
            from_structure(state)
            .forget("btw")
            .forget("idn")
            .forget("le")
            .forget("leader", polarity=False)
        )
        dot = partial_to_dot(partial)
        assert "style=dotted" in dot  # negative pnd facts
        assert "digraph" in dot

    def test_escaping(self, ring_vocab):
        node, ident = ring_vocab.sorts
        weird = Elem('no"de', node)
        id0 = Elem("id0", ident)
        structure = make_structure(
            ring_vocab,
            universe={node: [weird], ident: [id0]},
            funcs={"idn": {(weird,): id0}},
        )
        dot = structure_to_dot(structure)
        assert '\\"' in dot


class TestTraceDot:
    @pytest.mark.slow
    def test_trace_dot_clusters(self, leader_bundle):
        from repro.core.bounded import check_k_invariance
        from repro.logic import parse_formula

        vocab = leader_bundle.program.vocab
        no_leader = parse_formula("forall N:node. ~leader(N)", vocab)
        result = check_k_invariance(leader_bundle.program, no_leader, 2)
        assert not result.holds
        dot = result.trace.to_dot()
        assert "subgraph cluster_0" in dot
        assert "subgraph cluster_2" in dot
