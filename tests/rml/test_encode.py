"""The transition-relation encoder: SSA versions, selectors, projections.

The key soundness property -- a SAT model of the step formula projects to a
genuine program transition -- is covered indirectly by every BMC test's
``Trace.validate``; here we test the encoder's structure and its agreement
with the interpreter on a tiny system.
"""

import itertools

import pytest

from repro.logic import (
    FALSE,
    TRUE,
    Elem,
    FuncDecl,
    RelDecl,
    Sort,
    Var,
    make_structure,
    parse_formula,
    vocabulary,
)
from repro.rml.ast import (
    Assume,
    Axiom,
    Choice,
    Havoc,
    Program,
    Skip,
    UpdateRel,
    seq,
)
from repro.rml.encode import TransitionEncoder, project_state
from repro.rml.interp import execute
from repro.solver import EprSolver

elem = Sort("elem")
p = RelDecl("p", (elem,))
c = FuncDecl("c", (), elem)
VOCAB = vocabulary(sorts=[elem], relations=[p], functions=[c])
X = Var("X", elem)


def fml(source, free=None):
    return parse_formula(source, VOCAB, free=free)


def make_program(body, init=Skip(), axioms=()):
    return Program(name="tiny", vocab=VOCAB, axioms=tuple(axioms), init=init, body=body)


class TestEncoderStructure:
    def test_versions_created_per_assignment(self):
        program = make_program(seq(UpdateRel(p, (X,), TRUE), UpdateRel(p, (X,), FALSE)))
        encoder = TransitionEncoder(program)
        step = encoder.encode_step(program.body, encoder.base_env(), "s0")
        # Two sequential updates need two intermediate versions plus the
        # shared post version.
        assert len(encoder.new_relations) >= 3

    def test_version_sharing_across_branches(self):
        branch = UpdateRel(p, (X,), TRUE)
        other = UpdateRel(p, (X,), FALSE)
        program = make_program(Choice((branch, other)))
        encoder = TransitionEncoder(program)
        encoder.encode_step(program.body, encoder.base_env(), "s0")
        versions = [r for r in encoder.new_relations if r.name.startswith("p_v")]
        # Both branches update p starting from the same version: shared.
        assert len(versions) == 2  # one shared branch version + the post copy

    def test_selectors_expose_labels(self):
        program = make_program(
            Choice((Skip(), UpdateRel(p, (X,), TRUE)), ("noop", "fill"))
        )
        encoder = TransitionEncoder(program)
        step = encoder.encode_step(program.body, encoder.base_env(), "s0")
        labels = {labels for _, labels in step.selectors}
        assert labels == {("noop",), ("fill",)}

    def test_abort_formula_collects_paths(self):
        from repro.rml.sugar import assert_

        program = make_program(assert_(fml("forall X. p(X)")))
        encoder = TransitionEncoder(program)
        step = encoder.encode_step(program.body, encoder.base_env(), "s0")
        assert step.abort_formula != FALSE

    def test_no_abort_formula_when_no_abort(self):
        program = make_program(Skip() if False else UpdateRel(p, (X,), TRUE))
        encoder = TransitionEncoder(program)
        step = encoder.encode_step(program.body, encoder.base_env(), "s0")
        assert step.abort_formula == FALSE


class TestEncodingAgainstInterpreter:
    """For every pre-state s and the encoder's step formula T: the set of
    post-states of T-models starting at s equals the interpreter's
    successor set."""

    BODIES = [
        UpdateRel(p, (X,), parse_formula("~p(X)", VOCAB, free={"X": elem})),
        seq(Havoc(c), UpdateRel(p, (X,), parse_formula("X = c", VOCAB, free={"X": elem}))),
        Choice(
            (
                UpdateRel(p, (X,), TRUE),
                seq(Assume(parse_formula("p(c)", VOCAB)), UpdateRel(p, (X,), FALSE)),
            )
        ),
        seq(
            Assume(parse_formula("exists X. p(X)", VOCAB)),
            UpdateRel(p, (X,), parse_formula("~p(X)", VOCAB, free={"X": elem})),
        ),
    ]

    @pytest.mark.parametrize("body", BODIES, ids=lambda b: type(b).__name__)
    def test_post_state_sets_agree(self, body):
        program = make_program(body)
        encoder = TransitionEncoder(program)
        env0 = encoder.base_env()
        step = encoder.encode_step(program.body, env0, "s0")

        # Pre-states over a 2-element domain, pinned via diagrams.
        e0, e1 = Elem("e0", elem), Elem("e1", elem)
        for bits in itertools.product([False, True], repeat=2):
            for c_value in (e0, e1):
                pre = make_structure(
                    VOCAB,
                    universe={elem: [e0, e1]},
                    rels={"p": [(e,) for e, bit in zip((e0, e1), bits) if bit]},
                    funcs={"c": {(): c_value}},
                )
                expected = {
                    _key(o.state, program)
                    for o in execute(program.body, pre, TRUE)
                    if o.state is not None
                }
                found = set()
                # Enumerate models of diagram(pre) & T by blocking... for a
                # 2-element domain it is cheaper to check each candidate
                # post-state for consistency.
                for post_bits in itertools.product([False, True], repeat=2):
                    for post_c in (e0, e1):
                        post = make_structure(
                            VOCAB,
                            universe={elem: [e0, e1]},
                            rels={
                                "p": [
                                    (e,)
                                    for e, bit in zip((e0, e1), post_bits)
                                    if bit
                                ]
                            },
                            funcs={"c": {(): post_c}},
                        )
                        if _step_consistent(encoder, step, pre, post, env0):
                            found.add(_key(post, program))
                assert found == expected, (body, bits, c_value)


def _key(state, program):
    from repro.rml.interp import _state_key

    return _state_key(state)


def _step_consistent(encoder, step, pre, post, env0):
    """Is there a model of the step formula with these pre/post states?"""
    from repro.core.generalize import _diagram_parts
    from repro.logic.partial import from_structure

    solver = EprSolver(encoder.extended_vocab())
    solver.add(step.formula, name="step")
    hard, facts = _diagram_parts(from_structure(pre), {}, "pre")
    for index, constraint in enumerate(hard):
        solver.add(constraint, name=f"pre_d{index}")
    for index, (_, formula) in enumerate(facts):
        solver.add(formula, name=f"pre_f{index}")
    hard, facts = _diagram_parts(from_structure(post), step.post_env, "post")
    for index, constraint in enumerate(hard):
        solver.add(constraint, name=f"post_d{index}")
    for index, (_, formula) in enumerate(facts):
        solver.add(formula, name=f"post_f{index}")
    # Cap the domain at the two named elements so the diagram pins the
    # whole state.
    from repro.core.minimize import SortSize

    solver.add(SortSize(elem).at_most(2), name="bound")
    return solver.check().satisfiable


class TestProjectState:
    def test_projection_reads_versions(self, leader_bundle):
        from repro.core.bounded import make_unroller

        unroller = make_unroller(leader_bundle.program)
        solver = unroller.solver_at(1)
        vocab = leader_bundle.program.vocab
        goal = parse_formula("exists I:id, N:node. pnd(I, N)", vocab)
        from repro.logic.subst import rename_symbols

        env = unroller.envs[1]
        renamed = rename_symbols(goal, {k: v for k, v in env.items() if k != v})
        solver.add(renamed, name="goal")
        result = solver.check()
        assert result.satisfiable
        state0 = project_state(result.model, leader_bundle.program, unroller.envs[0])
        state1 = project_state(result.model, leader_bundle.program, unroller.envs[1])
        pnd = vocab.relation("pnd")
        assert state0.positive_count(pnd) == 0  # init: no pending messages
        assert state1.positive_count(pnd) >= 1
