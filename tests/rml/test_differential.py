"""Seeded randomized differential testing: encoder vs interpreter.

For randomly generated commands covering every RML command AST form
(``UpdateRel``, ``UpdateFunc``, ``Havoc``, ``Assume``, ``Seq``,
``Choice``), check that the transition-relation encoding and the concrete
interpreter agree on the exact successor set of every pre-state over a
2-element domain.  This generalizes the hand-picked bodies of
``test_encode.py`` and pins the pre-state snapshot convention (canonical
diagram witnesses) against regressions: a permutation-admitting encoding
fails these immediately.
"""

import itertools
import random

import pytest

from repro.core.generalize import _diagram_parts
from repro.core.minimize import SortSize
from repro.logic import (
    FALSE,
    TRUE,
    Elem,
    FuncDecl,
    RelDecl,
    Sort,
    Var,
    make_structure,
    vocabulary,
)
from repro.logic import syntax as s
from repro.logic.partial import from_structure
from repro.rml.ast import (
    Assume,
    Choice,
    Havoc,
    Seq,
    Skip,
    UpdateFunc,
    UpdateRel,
    seq,
)
from repro.rml.encode import TransitionEncoder
from repro.rml.interp import _state_key, execute
from repro.solver import EprSolver

elem = Sort("elem")
p = RelDecl("p", (elem,))
c = FuncDecl("c", (), elem)
d = FuncDecl("d", (), elem)
VOCAB = vocabulary(sorts=[elem], relations=[p], functions=[c, d])
X = Var("X", elem)
E0, E1 = Elem("e0", elem), Elem("e1", elem)

C = s.App(c, ())
D = s.App(d, ())


def _random_term(rng: random.Random) -> s.Term:
    return rng.choice([C, D])


def _random_qf(rng: random.Random, depth: int, free_var: s.Var | None) -> s.Formula:
    """A quantifier-free formula over p/c/d (optionally mentioning a var)."""
    atoms: list[s.Formula] = [
        s.Rel(p, (C,)),
        s.Rel(p, (D,)),
        s.eq(C, D),
        TRUE,
        FALSE,
    ]
    if free_var is not None:
        atoms.extend([s.Rel(p, (free_var,)), s.eq(free_var, C), s.eq(free_var, D)])
    if depth <= 0:
        return rng.choice(atoms)
    shape = rng.randrange(4)
    if shape == 0:
        return s.not_(_random_qf(rng, depth - 1, free_var))
    if shape == 1:
        return s.and_(
            _random_qf(rng, depth - 1, free_var), _random_qf(rng, depth - 1, free_var)
        )
    if shape == 2:
        return s.or_(
            _random_qf(rng, depth - 1, free_var), _random_qf(rng, depth - 1, free_var)
        )
    return rng.choice(atoms)


def _random_assume(rng: random.Random) -> Assume:
    if rng.random() < 0.5:
        return Assume(s.exists((X,), _random_qf(rng, 1, X)))
    return Assume(_random_qf(rng, 1, None))


def _random_command(rng: random.Random, depth: int):
    forms = ["update_rel", "update_func", "havoc", "assume"]
    if depth > 0:
        forms += ["seq", "choice"]
    form = rng.choice(forms)
    if form == "update_rel":
        return UpdateRel(p, (X,), _random_qf(rng, 1, X))
    if form == "update_func":
        return UpdateFunc(rng.choice([c, d]), (), _random_term(rng))
    if form == "havoc":
        return Havoc(rng.choice([c, d]))
    if form == "assume":
        return _random_assume(rng)
    if form == "seq":
        return seq(_random_command(rng, depth - 1), _random_command(rng, depth - 1))
    return Choice(
        (_random_command(rng, depth - 1), _random_command(rng, depth - 1))
    )


def _states():
    """All structures over {e0, e1}: p subset, c and d values."""
    for bits in itertools.product([False, True], repeat=2):
        for c_value in (E0, E1):
            for d_value in (E0, E1):
                yield make_structure(
                    VOCAB,
                    universe={elem: [E0, E1]},
                    rels={"p": [(e,) for e, bit in zip((E0, E1), bits) if bit]},
                    funcs={"c": {(): c_value}, "d": {(): d_value}},
                )


def _step_consistent(encoder, step, pre, post) -> bool:
    """Is there a model of the step formula joining these two states?"""
    solver = EprSolver(encoder.extended_vocab())
    solver.add(step.formula, name="step")
    hard, facts = _diagram_parts(from_structure(pre), {}, "pre")
    for index, constraint in enumerate(hard):
        solver.add(constraint, name=f"pre_d{index}")
    for index, (_, formula) in enumerate(facts):
        solver.add(formula, name=f"pre_f{index}")
    hard, facts = _diagram_parts(from_structure(post), step.post_env, "post")
    for index, constraint in enumerate(hard):
        solver.add(constraint, name=f"post_d{index}")
    for index, (_, formula) in enumerate(facts):
        solver.add(formula, name=f"post_f{index}")
    solver.add(SortSize(elem).at_most(2), name="bound")
    return solver.check().satisfiable


def _check_command(body, pre_states):
    from repro.rml.ast import Program

    program = Program(name="diff", vocab=VOCAB, axioms=(), init=Skip(), body=body)
    encoder = TransitionEncoder(program)
    step = encoder.encode_step(program.body, encoder.base_env(), "s0")
    for pre in pre_states:
        expected = {
            _state_key(o.state)
            for o in execute(program.body, pre, TRUE)
            if o.state is not None
        }
        found = {
            _state_key(post)
            for post in _states()
            if _step_consistent(encoder, step, pre, post)
        }
        assert found == expected, (str(body), _state_key(pre))


class TestDifferentialEncodeInterp:
    """Encoder and interpreter agree on successor sets, exactly."""

    CANONICAL = [
        UpdateRel(p, (X,), s.not_(s.Rel(p, (X,)))),
        UpdateFunc(c, (), D),
        Havoc(c),
        Assume(s.exists((X,), s.Rel(p, (X,)))),
        pytest.param(
            seq(Havoc(d), UpdateRel(p, (X,), s.eq(X, D))),
            marks=pytest.mark.slow,
        ),
        pytest.param(
            Choice((UpdateRel(p, (X,), TRUE), UpdateFunc(d, (), C))),
            marks=pytest.mark.slow,
        ),
    ]

    @pytest.mark.parametrize(
        "body",
        CANONICAL,
        ids=["UpdateRel", "UpdateFunc", "Havoc", "Assume", "Seq", "Choice"],
    )
    def test_each_ast_form_agrees(self, body):
        """One representative per command form, all 16 pre-states."""
        _check_command(body, list(_states()))

    @pytest.mark.parametrize("seed", range(6))
    def test_random_commands_agree(self, seed):
        """Seeded random nested commands, sampled pre-states."""
        rng = random.Random(1000 + seed)
        body = _random_command(rng, depth=2)
        pre_states = rng.sample(list(_states()), 6)
        _check_command(body, pre_states)
