"""Figure 12 sugar expansions and the RML well-formedness checks."""

import pytest

from repro.logic import (
    FALSE,
    TRUE,
    App,
    Elem,
    FuncDecl,
    RelDecl,
    Sort,
    Var,
    make_structure,
    parse_formula,
    parse_term,
    vocabulary,
)
from repro.rml.ast import (
    Abort,
    Assume,
    Axiom,
    Choice,
    Havoc,
    Program,
    Seq,
    Skip,
    UpdateFunc,
    UpdateRel,
    assigned_symbols,
    havocked_symbols,
    seq,
)
from repro.rml.interp import execute
from repro.rml.sugar import (
    SugarError,
    assert_,
    assign,
    clear,
    if_,
    insert,
    insert_where,
    remove,
    remove_where,
)
from repro.rml.typecheck import ProgramError, check_command, check_program

elem = Sort("elem")
p = RelDecl("p", (elem,))
r = RelDecl("r", (elem, elem))
c = FuncDecl("c", (), elem)
f = FuncDecl("f", (elem,), elem)

VOCAB = vocabulary(sorts=[elem], relations=[p, r], functions=[c])
X = Var("X", elem)

e0, e1 = Elem("e0", elem), Elem("e1", elem)


def fml(source, free=None):
    return parse_formula(source, VOCAB, free=free)


@pytest.fixture()
def state():
    return make_structure(
        VOCAB,
        universe={elem: [e0, e1]},
        rels={"p": [(e0,)], "r": []},
        funcs={"c": {(): e1}},
    )


class TestSugarSemantics:
    def test_assert_aborts_on_violation(self, state):
        command = assert_(fml("forall X. p(X)"))
        outcomes = execute(command, state)
        assert any(o.aborted for o in outcomes)

    def test_assert_passes_when_true(self, state):
        command = assert_(fml("exists X. p(X)"))
        outcomes = execute(command, state)
        assert not any(o.aborted for o in outcomes)

    def test_assert_requires_ae(self):
        # exists-forall is outside the assert fragment of Figure 12.
        with pytest.raises(SugarError):
            assert_(fml("exists X. forall Y. r(X, Y)"))

    def test_if_branches(self, state):
        command = if_(
            fml("p(c)"),
            insert(p, parse_term("c", VOCAB)),
            clear(p),
        )
        # c = e1, p(e1) false -> else branch: p cleared.
        outcomes = [o for o in execute(command, state) if o.state]
        assert len(outcomes) == 1
        assert outcomes[0].state.positive_count(p) == 0
        assert outcomes[0].labels == ("else",)

    def test_if_requires_alternation_free(self):
        with pytest.raises(SugarError):
            if_(fml("forall X. exists Y. r(X, Y)"), Skip())

    def test_insert_tuple(self, state):
        command = insert(r, parse_term("c", VOCAB), parse_term("c", VOCAB))
        (outcome,) = execute(command, state)
        assert outcome.state.rel_holds(r, (e1, e1))
        assert outcome.state.positive_count(r) == 1

    def test_remove_tuple(self, state):
        command = remove(p, parse_term("c", VOCAB))
        (outcome,) = execute(command, state)
        assert outcome.state.positive_count(p) == 1  # c=e1, p held only e0

    def test_insert_where(self, state):
        command = insert_where(p, (X,), fml("X ~= c", free={"X": elem}))
        (outcome,) = execute(command, state)
        assert outcome.state.rel_holds(p, (e0,))

    def test_remove_where(self, state):
        command = remove_where(p, (X,), TRUE)
        (outcome,) = execute(command, state)
        assert outcome.state.positive_count(p) == 0

    def test_assign_program_variable(self, state):
        command = assign(c, (), App(c, ()))
        (outcome,) = execute(command, state)
        assert outcome.state.func_value(c) == e1

    def test_assign_point_update(self):
        vocab = vocabulary(sorts=[elem], relations=[p], functions=[c, f])
        st = make_structure(
            vocab,
            universe={elem: [e0, e1]},
            rels={"p": []},
            funcs={"c": {(): e0}, "f": {(e0,): e0, (e1,): e1}},
        )
        command = assign(f, (App(c, ()),), App(c, ()))  # f(c) := c (no-op here)
        (outcome,) = execute(command, st)
        assert outcome.state.func_value(f, (e0,)) == e0
        # now redirect f(e1)... via constant: c stays e0, so f(e0) := e0
        assert outcome.state.func_value(f, (e1,)) == e1  # untouched point


class TestAstHelpers:
    def test_seq_flattens(self):
        command = seq(Skip(), seq(Abort(), Skip()), Skip())
        assert isinstance(command, Abort)

    def test_choice_requires_two(self):
        with pytest.raises(ValueError):
            Choice((Skip(),))

    def test_assigned_symbols(self):
        command = seq(UpdateRel(p, (X,), TRUE), Havoc(c))
        assert assigned_symbols(command) == frozenset({p, c})

    def test_havocked_symbols(self):
        command = seq(UpdateRel(p, (X,), TRUE), Havoc(c))
        assert havocked_symbols(command) == frozenset({c})

    def test_update_params_validated(self):
        with pytest.raises(ValueError):
            UpdateRel(p, (X, X), TRUE)
        with pytest.raises(ValueError):
            UpdateRel(p, (), TRUE)

    def test_program_without_axiom(self, leader_bundle):
        program = leader_bundle.program
        reduced = program.without_axiom("unique_ids")
        assert len(reduced.axioms) == len(program.axioms) - 1
        with pytest.raises(KeyError):
            program.without_axiom("nonexistent")


class TestTypecheck:
    def _program(self, body=Skip(), axioms=(), init=Skip()):
        return Program(name="t", vocab=VOCAB, axioms=tuple(axioms), init=init, body=body)

    def test_valid_program(self, leader_bundle):
        check_program(leader_bundle.program)

    def test_quantified_update_rejected(self):
        body = UpdateRel(p, (X,), fml("exists Y. r(X, Y)", free={"X": elem}))
        with pytest.raises(ProgramError, match="quantifier free"):
            check_program(self._program(body))

    def test_stray_free_variable_rejected(self):
        body = UpdateRel(p, (X,), fml("r(X, Y)", free={"X": elem, "Y": elem}))
        with pytest.raises(ProgramError, match="stray"):
            check_program(self._program(body))

    def test_open_assume_rejected(self):
        body = Assume(fml("p(X)", free={"X": elem}))
        with pytest.raises(ProgramError, match="closed"):
            check_program(self._program(body))

    def test_ae_assume_rejected(self):
        body = Assume(fml("forall X. exists Y. r(X, Y)"))
        with pytest.raises(ProgramError, match="exists\\*forall\\*"):
            check_program(self._program(body))

    def test_ae_axiom_rejected(self):
        axiom = Axiom("bad", fml("forall X. exists Y. r(X, Y)"))
        with pytest.raises(ProgramError):
            check_program(self._program(axioms=[axiom]))

    def test_foreign_symbol_rejected(self):
        other = RelDecl("q", (elem,))
        from repro.logic import Rel

        body = Assume(parse_formula("forall X. p(X)", VOCAB))
        bad = Assume(
            parse_formula(
                "forall X. p(X)",
                vocabulary(sorts=[elem], relations=[p, other], functions=[c]),
            )
        )
        # build an assume over 'q' which VOCAB does not declare
        from repro.logic import forall

        q_formula = forall((X,), Rel(other, (X,)))
        with pytest.raises(ProgramError, match="not in the program vocabulary"):
            check_command(Assume(q_formula), VOCAB)

    def test_unstratified_vocabulary_rejected(self):
        loop = FuncDecl("g", (elem,), elem)
        vocab = vocabulary(sorts=[elem], relations=[p], functions=[loop])
        program = Program(name="bad", vocab=vocab, axioms=())
        with pytest.raises(ProgramError):
            check_program(program)

    def test_all_protocols_typecheck(self):
        from repro.protocols import ALL_PROTOCOLS

        for module in ALL_PROTOCOLS.values():
            check_program(module.build().program)
